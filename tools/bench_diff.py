#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench_micro JSON against the
committed reference (BENCH_micro.json) and fail on hot-path regressions.

The naive cross-run comparison of absolute nanoseconds is hostage to the
machine (and load) the reference was recorded under, so times are
normalized first: the per-benchmark fresh/reference ratio is divided by the
median ratio over the whole suite, cancelling uniform machine-speed shifts
while leaving isolated regressions visible (a genuine slowdown in a few hot
benchmarks barely moves a 25-benchmark median). A hot-path benchmark
regresses when its normalized ratio exceeds 1 + --threshold (default 10%).
Speedups and non-gated benchmarks never fail the gate. --calibrate NAME
switches to single-benchmark calibration; --calibrate none compares raw.

Usage:
  tools/bench_diff.py --reference BENCH_micro.json --fresh fresh.json
  tools/bench_diff.py ... --threshold 0.10 --calibrate median
  tools/bench_diff.py ... --gate BM_Foo --gate 'BM_Bar/.*'   # override set

Exit status: 0 clean, 1 regression, 2 usage/data error. --report-only
prints the same table but never exits 1 (trajectory recording on CI
runners whose reference was captured elsewhere).
"""

import argparse
import json
import re
import sys

# The protocol's hot paths (ISSUE 7): token forwarding, batch distribution
# and delivery, codec encode/decode (owned and zero-copy), metrics incr.
# The bench_obs micros (ISSUE 10) gate instrumentation overhead: the same
# hot paths with span recording off/on, plus the registry and recorder.
DEFAULT_GATES = [
    r"BM_TokenForwardRing",
    r"BM_DistributeBatchDeliver",
    r"BM_DataMsgCodecRoundTrip",
    r"BM_TokenDecodeOwned/.*",
    r"BM_TokenDecodeView/.*",
    r"BM_TokenSerialize/.*",
    r"BM_MetricsIncrInterned",
    r"BM_TokenForwardRing_NoSpans",
    r"BM_TokenForwardRing_Spans",
    r"BM_DistributeBatchDeliver_NoSpans",
    r"BM_DistributeBatchDeliver_Spans",
    r"BM_MetricsIncr",
    r"BM_FlightRecorderRecord",
]


def load_times(path):
    """name -> cpu_time (ns) per benchmark. With --benchmark_repetitions the
    non-aggregate entries share a name; keep the minimum — the least-noise
    estimate of a benchmark's true cost (scheduling jitter only ever adds
    time)."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        t = b.get("cpu_time", b.get("real_time"))
        if name is None or t is None:
            continue
        # google-benchmark emits ns by default; tolerate other units.
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            sys.exit(f"bench_diff: unknown time_unit '{unit}' in {path}")
        ns = t * scale
        times[name] = min(times[name], ns) if name in times else ns
    if not times:
        sys.exit(f"bench_diff: no benchmark entries in {path}")
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--reference", required=True,
                    help="committed baseline JSON (BENCH_micro.json)")
    ap.add_argument("--fresh", required=True,
                    help="freshly generated bench_micro JSON")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed normalized-time growth (default 0.10)")
    ap.add_argument("--calibrate", default="median",
                    help="'median' (default) normalizes by the median "
                         "fresh/ref ratio over the whole suite; a benchmark "
                         "name normalizes by that benchmark; 'none' "
                         "compares raw times")
    ap.add_argument("--gate", action="append", default=None,
                    metavar="REGEX",
                    help="gate these name patterns instead of the built-in "
                         "hot-path set (repeatable, fullmatch)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison table but always exit 0 "
                         "(trajectory recording, e.g. against a reference "
                         "captured on different hardware)")
    args = ap.parse_args()

    ref = load_times(args.reference)
    fresh = load_times(args.fresh)

    if args.calibrate == "none":
        scale = 1.0
    elif args.calibrate == "median":
        common = sorted(set(ref) & set(fresh))
        if not common:
            sys.exit("bench_diff: no benchmark names in common")
        ratios = sorted(fresh[n] / ref[n] for n in common if ref[n] > 0)
        mid = len(ratios) // 2
        scale = (ratios[mid] if len(ratios) % 2
                 else 0.5 * (ratios[mid - 1] + ratios[mid]))
    else:
        for times, path in ((ref, args.reference), (fresh, args.fresh)):
            if not times.get(args.calibrate):
                sys.exit(f"bench_diff: calibration benchmark "
                         f"'{args.calibrate}' missing from {path}")
        scale = fresh[args.calibrate] / ref[args.calibrate]
    if scale <= 0:
        sys.exit("bench_diff: degenerate calibration scale")

    gates = [re.compile(p) for p in (args.gate or DEFAULT_GATES)]
    gated = sorted(n for n in fresh
                   if any(g.fullmatch(n) for g in gates))
    if not gated:
        sys.exit("bench_diff: no fresh benchmark matches any gate pattern")

    missing = [n for n in gated if n not in ref]
    width = max(len(n) for n in gated)
    regressions = []
    print(f"# gate: normalized cpu_time vs {args.reference} "
          f"(calibration: {args.calibrate}, threshold "
          f"{args.threshold:.0%})")
    for name in gated:
        if name in missing:
            print(f"{name:<{width}}  NEW (no reference entry — gated next "
                  f"refresh)")
            continue
        ratio = ((fresh[name] / ref[name]) / scale
                 if ref[name] > 0 else float("inf"))
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:<{width}}  ref {ref[name]:>12.1f}ns  "
              f"fresh {fresh[name]:>12.1f}ns  norm-ratio {ratio:6.3f}  "
              f"{verdict}")

    stale = sorted(n for n in ref
                   if n not in fresh and any(g.fullmatch(n) for g in gates))
    for name in stale:
        print(f"{name:<{width}}  GONE (in reference, not in fresh run)")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} hot-path regression(s) "
              f"beyond {args.threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio - 1.0:+.1%}")
        if args.report_only:
            print("bench_diff: --report-only, not failing the gate")
            return 0
        return 1
    print("\nbench_diff: hot paths within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
