#!/usr/bin/env python3
"""ringnet invariant linter.

Enforces repo-specific invariants that clang-tidy cannot express. Run from
anywhere; the repo root is located relative to this file (override with
--repo). Exit status: 0 clean, 1 violations found, 2 internal error.

Rules
-----
RN001 metrics-string-key
    No string-keyed Metrics mutation (`.incr("...")`, `.gauge_max("...")`)
    in core protocol code (include/core/, src/core/). The hot paths must
    use MetricIds pre-interned at construction; the string overloads
    rehash the name on every event. Cold end-of-run *reads*
    (`.counter("...")`) stay allowed, as does bench code (bench_micro
    measures the string-vs-interned gap on purpose).

RN002 map-in-core-header
    No `std::map` in core/ headers unless the declaration carries a
    `// lint: map-ok` rationale within the three lines above it (or on
    the line itself). Node-based ordered maps are a hot-path liability;
    a rationale must say what the ordering buys (e.g. MessageQueue's
    in-order prune/lower_bound walk).

RN003 raw-rng
    No `rand()`, `srand()`, `std::random_device`, or std::mt19937 outside
    util/rng. Every stochastic draw must flow through util::Rng so a
    (seed, config) pair replays bit-identically across runs, platforms,
    and compilers.

RN004 stdout-in-library
    No `std::cout` / `printf` / `puts` in library code (include/, src/).
    The library reports through Metrics/Trace/Table values; only benches,
    tests, and tools own process output.

RN005 header-self-containment
    Every public header under include/ must compile standalone: a
    generated TU containing only `#include "<header>"` is compiled with
    `-fsyntax-only -std=c++20`. Catches headers that lean on includes
    supplied by whoever included them first.

RN006 raw-wall-clock
    No raw wall-clock reads (`std::chrono::*_clock::now`, `gettimeofday`,
    `clock_gettime`, `::time(`) in library code outside runtime/ and
    util/clock.hpp. Simulation logic must take time as a parameter (the
    event-driven clock is what makes runs replayable); real time enters
    only through util::WallClock and the socket runtime that owns it.

RN007 hardcoded-group
    No hardcoded non-zero `GroupId{N}` literal in core/ or runtime/ code
    unless it carries an `// RN007-ok:` rationale within the three lines
    above it (or on the line itself). Ordering state is per-group now;
    a baked-in group id is the single-group assumption sneaking back.
    The zero sentinel (`GroupId{0}` == unset) stays allowed.

RN008 adhoc-metric-name
    No string-literal metric/span name at a registry call site
    (`intern("...")`, `intern_hist("...")`, `counter("...")`,
    `gauge("...")`, `hist("...")`, `incr("...")`, `gauge_max("...")`,
    `hist_record("...")`) in core, sim, runtime, obs, or baseline code.
    Names must come from the constants in obs/names.hpp so the sim oracle
    and the UDP runtime report one vocabulary — a metric that exists under
    two spellings is worse than no metric. obs/names.hpp itself is the
    one place the spellings live; benches, tests, and tools keep free-form
    names.

Self-test
---------
`--self-test` seeds one violation per rule in a scratch tree and fails
(exit 2) unless every rule fires; it is registered as a ctest case so the
linter cannot silently rot.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

CPP_GLOBS = (".hpp", ".cpp")


def repo_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(CPP_GLOBS):
                    yield os.path.join(dirpath, name)


def rel(root, path):
    return os.path.relpath(path, root)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# RN001: string-keyed Metrics mutation in core/

STRING_METRIC_RE = re.compile(r'\.(incr|gauge_max)\s*\(\s*"')


def check_metrics_string_key(root):
    findings = []
    for path in repo_files(root, ("include/core", "src/core")):
        for i, text in enumerate(open(path, encoding="utf-8"), 1):
            m = STRING_METRIC_RE.search(text)
            if m:
                findings.append(Finding(
                    "RN001", rel(root, path), i,
                    f'string-keyed Metrics::{m.group(1)}() on a core path; '
                    'intern a MetricId at construction instead'))
    return findings


# --------------------------------------------------------------------------
# RN002: std::map in core headers without rationale

MAP_RE = re.compile(r"\bstd::map\s*<")
MAP_OK_RE = re.compile(r"//\s*lint:\s*map-ok")


def check_map_in_core_header(root):
    findings = []
    for path in repo_files(root, ("include/core",)):
        lines = open(path, encoding="utf-8").read().splitlines()
        for i, text in enumerate(lines, 1):
            if not MAP_RE.search(text):
                continue
            window = lines[max(0, i - 4):i]  # the line + three above
            if any(MAP_OK_RE.search(w) for w in window):
                continue
            findings.append(Finding(
                "RN002", rel(root, path), i,
                "std::map in a core header without a '// lint: map-ok' "
                "rationale (ordered node-based maps are hot-path "
                "liabilities; justify the ordering or use a flat/hash "
                "container)"))
    return findings


# --------------------------------------------------------------------------
# RN003: raw randomness outside util/rng

RAW_RNG_RE = re.compile(
    r"\b(?:s?rand)\s*\(|std::random_device|std::mt19937")


def check_raw_rng(root):
    findings = []
    for path in repo_files(root, ("include", "src", "bench", "tests")):
        r = rel(root, path)
        if r.replace(os.sep, "/") == "include/util/rng.hpp":
            continue
        for i, text in enumerate(open(path, encoding="utf-8"), 1):
            m = RAW_RNG_RE.search(text)
            if m:
                findings.append(Finding(
                    "RN003", r, i,
                    f"raw randomness source '{m.group(0).strip()}' outside "
                    "util/rng; draw through util::Rng so replays stay "
                    "deterministic"))
    return findings


# --------------------------------------------------------------------------
# RN004: process output from library code

STDOUT_RE = re.compile(r"std::cout|(?<![A-Za-z_])(?:printf|puts)\s*\(")


def check_stdout_in_library(root):
    findings = []
    for path in repo_files(root, ("include", "src")):
        for i, text in enumerate(open(path, encoding="utf-8"), 1):
            m = STDOUT_RE.search(text)
            if m:
                findings.append(Finding(
                    "RN004", rel(root, path), i,
                    f"'{m.group(0).strip()}' in library code; the library "
                    "reports through Metrics/Trace/Table — process output "
                    "belongs to benches, tests, and tools"))
    return findings


# --------------------------------------------------------------------------
# RN006: raw wall-clock reads outside runtime/ and util/clock

# Clock *reads* only: sleeping or waiting on a duration (sleep_for,
# wait_for_us) is time-consuming, not time-observing, and stays allowed.
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
    r"\s*::\s*now"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|(?<![A-Za-z0-9_])::time\s*\(")

WALL_CLOCK_EXEMPT = ("include/runtime/", "src/runtime/",
                     "include/util/clock.hpp")


def check_raw_wall_clock(root):
    findings = []
    for path in repo_files(root, ("include", "src")):
        r = rel(root, path)
        posix = r.replace(os.sep, "/")
        if posix.startswith(WALL_CLOCK_EXEMPT[:2]) or \
                posix == WALL_CLOCK_EXEMPT[2]:
            continue
        for i, text in enumerate(open(path, encoding="utf-8"), 1):
            m = WALL_CLOCK_RE.search(text)
            if m:
                findings.append(Finding(
                    "RN006", r, i,
                    f"raw wall-clock read '{m.group(0).strip()}' outside "
                    "runtime/; take time as a parameter or go through "
                    "util::WallClock so simulated runs stay replayable"))
    return findings


# --------------------------------------------------------------------------
# RN007: hardcoded non-zero GroupId literal in core/ or runtime/

# Both forms of baking a group in: the inline literal (`GroupId{3}`) and a
# named constant initialized from one (`constexpr GroupId kFoo{3}`).
HARDCODED_GROUP_RE = re.compile(r"\bGroupId\s*(?:\w+\s*)?\{\s*0*[1-9]")
RN007_OK_RE = re.compile(r"//\s*RN007-ok")


def check_hardcoded_group(root):
    findings = []
    for path in repo_files(root, ("include/core", "src/core",
                                  "include/runtime", "src/runtime")):
        lines = open(path, encoding="utf-8").read().splitlines()
        for i, text in enumerate(lines, 1):
            if not HARDCODED_GROUP_RE.search(text):
                continue
            window = lines[max(0, i - 4):i]  # the line + three above
            if any(RN007_OK_RE.search(w) for w in window):
                continue
            findings.append(Finding(
                "RN007", rel(root, path), i,
                "hardcoded non-zero GroupId literal in core/runtime code; "
                "ordering state is per-group — take the gid from the "
                "message/config, or justify with an '// RN007-ok:' "
                "rationale"))
    return findings


# --------------------------------------------------------------------------
# RN008: ad-hoc metric/span name literal at a registry call site

ADHOC_NAME_RE = re.compile(
    r"\.(incr|gauge_max|counter|gauge|intern|intern_hist|hist|hist_record)"
    r'\s*\(\s*"')

RN008_DIRS = ("include/core", "src/core", "include/sim", "src/sim",
              "include/runtime", "src/runtime", "include/obs", "src/obs",
              "include/baseline", "src/baseline")


def check_adhoc_metric_name(root):
    findings = []
    for path in repo_files(root, RN008_DIRS):
        r = rel(root, path)
        if r.replace(os.sep, "/") == "include/obs/names.hpp":
            continue  # the one table the spellings live in
        for i, text in enumerate(open(path, encoding="utf-8"), 1):
            m = ADHOC_NAME_RE.search(text)
            if m:
                findings.append(Finding(
                    "RN008", r, i,
                    f"string-literal metric name at Metrics::{m.group(1)}() "
                    "on a core/runtime path; use a constant from "
                    "obs/names.hpp so sim and runtime share one metric "
                    "vocabulary"))
    return findings


# --------------------------------------------------------------------------
# RN005: header self-containment

def check_header_self_containment(root, cxx):
    findings = []
    include_dir = os.path.join(root, "include")
    headers = []
    for dirpath, _, names in os.walk(include_dir):
        for name in sorted(names):
            if name.endswith(".hpp"):
                headers.append(os.path.join(dirpath, name))
    with tempfile.TemporaryDirectory(prefix="ringnet_lint_") as tmp:
        for hdr in headers:
            hrel = os.path.relpath(hdr, include_dir).replace(os.sep, "/")
            tu = os.path.join(tmp, "tu.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{hrel}"\n')
            proc = subprocess.run(
                [cxx, "-fsyntax-only", "-std=c++20", "-I", include_dir, tu],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = (proc.stderr.strip().splitlines() or ["?"])[0]
                findings.append(Finding(
                    "RN005", rel(root, hdr), 1,
                    f"header is not self-contained ({first})"))
    return findings


# --------------------------------------------------------------------------
# Driver

def run_checks(root, cxx, with_headers=True):
    findings = []
    findings += check_metrics_string_key(root)
    findings += check_map_in_core_header(root)
    findings += check_raw_rng(root)
    findings += check_stdout_in_library(root)
    findings += check_raw_wall_clock(root)
    findings += check_hardcoded_group(root)
    findings += check_adhoc_metric_name(root)
    if with_headers:
        findings += check_header_self_containment(root, cxx)
    return findings


def self_test(cxx):
    """Seed one violation per rule; every rule must fire on its seed."""
    failures = []
    with tempfile.TemporaryDirectory(prefix="ringnet_lint_st_") as tmp:
        for sub in ("include/core", "include/util", "src/core", "bench",
                    "tests"):
            os.makedirs(os.path.join(tmp, sub))

        def write(path, text):
            with open(os.path.join(tmp, path), "w", encoding="utf-8") as f:
                f.write(text)

        # RN001: string-keyed mutation on a core path.
        write("src/core/bad_metrics.cpp",
              'void f(M& m) { m.metrics().incr("token.held"); }\n')
        # Interned mutation and cold string reads must NOT fire.
        write("src/core/good_metrics.cpp",
              "void f(M& m) { m.incr(mid_.held); }\n"
              'void g(M& m) { (void)m.counter("token.held"); }\n')

        # RN002: bare std::map in a core header; annotated one is fine.
        write("include/core/bad_map.hpp",
              "#include <map>\nstd::map<int, int> m;\n")
        write("include/core/good_map.hpp",
              "#include <map>\n// lint: map-ok — ordered prune walk\n"
              "std::map<int, int> m;\n")

        # RN003: raw randomness outside util/rng.
        write("src/core/bad_rng.cpp",
              "#include <cstdlib>\nint f() { return rand(); }\n")
        write("include/util/rng.hpp",
              "#include <random>\ninline std::mt19937 exempt_here;\n")

        # RN004: stdout from library code; bench output is exempt.
        write("src/core/bad_out.cpp",
              '#include <cstdio>\nvoid f() { printf("x"); }\n')
        write("bench/ok_out.cpp",
              '#include <cstdio>\nint main() { printf("x"); }\n')
        # snprintf into a buffer is formatting, not process output.
        write("src/core/ok_snprintf.cpp",
              "#include <cstdio>\nvoid f(char* b) "
              '{ (void)snprintf(b, 4, "x"); }\n')

        # RN005: header leaning on an include it never pulls in.
        write("include/core/bad_header.hpp",
              "#pragma once\ninline std::vector<int> v;\n")

        # RN006: wall-clock read in sim code; runtime/ and util/clock.hpp
        # (plus duration-only waits) are exempt.
        os.makedirs(os.path.join(tmp, "src/runtime"))
        write("src/core/bad_clock.cpp",
              "#include <chrono>\n"
              "long f() { return std::chrono::steady_clock::now()"
              ".time_since_epoch().count(); }\n")
        write("src/runtime/ok_clock.cpp",
              "#include <chrono>\n"
              "long f() { return std::chrono::steady_clock::now()"
              ".time_since_epoch().count(); }\n")
        write("include/util/clock.hpp",
              "#include <chrono>\n"
              "inline auto t0 = std::chrono::steady_clock::now();\n")
        write("src/core/ok_wait.cpp",
              "#include <thread>\nvoid f() { std::this_thread::sleep_for("
              "std::chrono::microseconds(5)); }\n")

        # RN007: hardcoded group id indexing ordering state; the annotated
        # constant and the zero "unset" sentinel must NOT fire.
        write("src/runtime/bad_group.cpp",
              "void f(S& s) { s.slab(GroupId{1}).push(7); }\n")
        write("src/core/good_group.cpp",
              "// RN007-ok: degenerate single-group deployment.\n"
              "constexpr GroupId kG{1};\n"
              "void g(M& m) { m.gid = GroupId{0}; }\n")

        # RN008: ad-hoc name literal at a registry call; the names-constant
        # call and free-form bench names must NOT fire.
        write("src/runtime/bad_name.cpp",
              'void f(M& m) { m.metrics().intern("my.adhoc.name"); }\n')
        write("src/runtime/good_name.cpp",
              "void f(M& m) { m.intern(obs::names::kTokenHeld); }\n"
              "void g(M& m) { (void)m.hist(obs::names::kMhLatencyUs); }\n")
        write("bench/ok_name.cpp",
              'void f(M& m) { m.intern("bench.freeform"); }\n')

        findings = run_checks(tmp, cxx)
        fired = {f.rule for f in findings}
        for rule in ("RN001", "RN002", "RN003", "RN004", "RN005", "RN006",
                     "RN007", "RN008"):
            if rule not in fired:
                failures.append(f"{rule} did not fire on its seeded "
                                "violation")
        by_file = {(f.rule, os.path.basename(f.path)) for f in findings}
        for rule, fname in (("RN001", "good_metrics.cpp"),
                            ("RN002", "good_map.hpp"),
                            ("RN003", "rng.hpp"),
                            ("RN004", "ok_out.cpp"),
                            ("RN004", "ok_snprintf.cpp"),
                            ("RN006", "ok_clock.cpp"),
                            ("RN006", "clock.hpp"),
                            ("RN006", "ok_wait.cpp"),
                            ("RN007", "good_group.cpp"),
                            ("RN008", "good_name.cpp"),
                            ("RN008", "ok_name.cpp")):
            if (rule, fname) in by_file:
                failures.append(f"{rule} false-positive on {fname}")
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 2
    print("ringnet_lint self-test: all rules fire on seeded violations")
    return 0


def main(argv):
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=default_root,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                    help="compiler for header self-containment "
                         "(default: $CXX or c++)")
    ap.add_argument("--no-headers", action="store_true",
                    help="skip the header self-containment compile pass")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on seeded violations")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(args.cxx)

    if shutil.which(args.cxx) is None and not args.no_headers:
        print(f"error: compiler '{args.cxx}' not found (use --no-headers "
              "to skip the self-containment pass)", file=sys.stderr)
        return 2

    findings = run_checks(args.repo, args.cxx,
                          with_headers=not args.no_headers)
    for f in findings:
        print(f)
    if findings:
        print(f"ringnet_lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("ringnet_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
