#include "topo/hierarchy.hpp"

namespace ringnet::topo {

namespace {

void link_ring(Topology& topo, const std::vector<NodeId>& ring,
               LinkKind kind) {
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    NodeDesc& d = topo.desc(ring[i]);
    d.nbrs.next = ring[(i + 1) % n];
    d.nbrs.prev = ring[(i + n - 1) % n];
    d.nbrs.leader = ring.front();
    if (n > 1 || i == 0) {
      // A self-loop link is still recorded for a 1-ring so the ring is
      // visible in the link inventory.
      topo.links.push_back(Link{ring[i], ring[(i + 1) % n], kind});
    }
  }
}

}  // namespace

NodeId Topology::br_of(NodeId id) const {
  NodeId cur = id;
  while (has(cur)) {
    const NodeDesc& d = desc(cur);
    if (d.tier == Tier::BR) return cur;
    if (!d.parent.valid()) break;
    cur = d.parent;
  }
  return NodeId::invalid();
}

std::optional<std::string> Topology::validate() const {
  if (top_ring.empty()) return "empty top ring";
  if (ag_rings.size() != top_ring.size()) {
    return "expected one AG ring per BR";
  }
  // Ring closure on both ring tiers.
  auto check_ring = [this](const std::vector<NodeId>& ring,
                           const char* name) -> std::optional<std::string> {
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!has(ring[i])) return std::string(name) + ": unknown node";
      const NodeDesc& d = desc(ring[i]);
      if (d.nbrs.next != ring[(i + 1) % n]) {
        return std::string(name) + ": broken next link at " +
               to_string(ring[i]);
      }
      if (d.nbrs.prev != ring[(i + n - 1) % n]) {
        return std::string(name) + ": broken prev link at " +
               to_string(ring[i]);
      }
      if (d.nbrs.leader != ring.front()) {
        return std::string(name) + ": inconsistent leader at " +
               to_string(ring[i]);
      }
    }
    return std::nullopt;
  };
  if (auto bad = check_ring(top_ring, "BRT")) return bad;
  for (const auto& ring : ag_rings) {
    if (ring.empty()) return "empty AG ring";
    if (auto bad = check_ring(ring, "AGT")) return bad;
  }
  // Parent/child symmetry across the whole tree.
  for (const auto& [id, d] : nodes) {
    for (NodeId child : d.children) {
      if (!has(child)) return "dangling child of " + to_string(id);
      if (desc(child).parent != id) {
        return "asymmetric parent link at " + to_string(child);
      }
    }
    if (d.parent.valid()) {
      const auto& siblings = desc(d.parent).children;
      bool found = false;
      for (NodeId s : siblings) found = found || s == id;
      if (!found) return "orphan " + to_string(id);
    }
    if (d.tier == Tier::MH || d.tier == Tier::AP || d.tier == Tier::AG) {
      if (!d.parent.valid()) return to_string(id) + " missing parent";
    }
  }
  // Tier inventory matches the generating config.
  const std::size_t want_ags = config.num_brs * config.ags_per_br;
  const std::size_t want_aps = want_ags * config.aps_per_ag;
  const std::size_t want_mhs = want_aps * config.mhs_per_ap;
  if (top_ring.size() != config.num_brs) return "BR count mismatch";
  std::size_t ags = 0;
  for (const auto& ring : ag_rings) ags += ring.size();
  if (ags != want_ags) return "AG count mismatch";
  if (aps.size() != want_aps) return "AP count mismatch";
  if (mhs.size() != want_mhs) return "MH count mismatch";
  if (entity_count() != config.num_brs + want_ags + want_aps + want_mhs) {
    return "entity count mismatch";
  }
  return std::nullopt;
}

Topology build_hierarchy(const HierarchyConfig& config) {
  Topology topo;
  topo.config = config;

  std::uint32_t next_ag = 0, next_ap = 0, next_mh = 0;

  for (std::size_t b = 0; b < config.num_brs; ++b) {
    const NodeId br = NodeId::make(Tier::BR, static_cast<std::uint32_t>(b));
    topo.top_ring.push_back(br);
    NodeDesc bd;
    bd.id = br;
    bd.tier = Tier::BR;
    topo.nodes.emplace(br, bd);
  }

  for (std::size_t b = 0; b < config.num_brs; ++b) {
    const NodeId br = topo.top_ring[b];
    std::vector<NodeId> ag_ring;
    ag_ring.reserve(config.ags_per_br);
    for (std::size_t g = 0; g < config.ags_per_br; ++g) {
      const NodeId ag = NodeId::make(Tier::AG, next_ag++);
      ag_ring.push_back(ag);
      NodeDesc gd;
      gd.id = ag;
      gd.tier = Tier::AG;
      gd.parent = br;
      topo.nodes.emplace(ag, gd);
      topo.desc(br).children.push_back(ag);
      topo.links.push_back(Link{br, ag, LinkKind::LanTree});

      for (std::size_t a = 0; a < config.aps_per_ag; ++a) {
        const NodeId ap = NodeId::make(Tier::AP, next_ap++);
        topo.aps.push_back(ap);
        NodeDesc ad;
        ad.id = ap;
        ad.tier = Tier::AP;
        ad.parent = ag;
        topo.nodes.emplace(ap, ad);
        topo.desc(ag).children.push_back(ap);
        topo.links.push_back(Link{ag, ap, LinkKind::LanTree});

        for (std::size_t m = 0; m < config.mhs_per_ap; ++m) {
          const NodeId mh = NodeId::make(Tier::MH, next_mh++);
          topo.mhs.push_back(mh);
          NodeDesc md;
          md.id = mh;
          md.tier = Tier::MH;
          md.parent = ap;
          topo.nodes.emplace(mh, md);
          topo.desc(ap).children.push_back(mh);
          topo.links.push_back(Link{ap, mh, LinkKind::WirelessCell});
        }
      }
    }
    topo.ag_rings.push_back(std::move(ag_ring));
  }

  link_ring(topo, topo.top_ring, LinkKind::WanRing);
  for (const auto& ring : topo.ag_rings) {
    link_ring(topo, ring, LinkKind::LanTree);
  }
  return topo;
}

}  // namespace ringnet::topo
