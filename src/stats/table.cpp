#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

namespace ringnet::stats {

namespace {

std::string format_double(double v, int precision) {
  char buf[64];
  const int len = std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  if (len < 0) return "nan";  // encoding error: cannot happen for %f
  const auto n = std::min(sizeof(buf) - 1, static_cast<std::size_t>(len));
  return std::string(buf, n);
}

}  // namespace

Table::Row& Table::Row::cell(std::int64_t v) {
  return cell(std::to_string(v));
}

Table::Row& Table::Row::cell(std::uint64_t v) {
  return cell(std::to_string(v));
}

Table::Row& Table::Row::cell(double v, int precision) {
  return cell(format_double(v, precision));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& r : rows_) {
    const auto& cells = r.cells();
    for (std::size_t c = 0; c < cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], cells[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << "  ";
      for (std::size_t pad = s.size(); pad < widths[c]; ++pad) os << ' ';
      os << s;
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 2 * widths.size();
  for (const auto w : widths) total += w;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) emit(r.cells());
  os << '\n';
}

}  // namespace ringnet::stats
