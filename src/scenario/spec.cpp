#include "scenario/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ringnet::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && s[b] == ' ') ++b;
  while (e > b && s[e - 1] == ' ') --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  // Only edge whitespace is forgiven; an interior space stays put so a
  // typo'd value ("rate=1 5") fails parsing instead of silently mutating.
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(trim(cur));
  return out;
}

bool key_value(const std::string& token, std::string& key,
               std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_size(const std::string& s, std::size_t& out) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) return false;
    out = static_cast<std::size_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_secs(const std::string& s, sim::SimTime& out) {
  double v = 0.0;
  if (!parse_double(s, v) || v < 0.0) return false;
  out = sim::secs(v);
  return true;
}

std::string fmt(double v) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%g", v);
  if (len < 0) return "nan";  // encoding error: cannot happen for %g
  const auto n = std::min(sizeof(buf) - 1, static_cast<std::size_t>(len));
  return std::string(buf, n);
}

std::string fmt(sim::SimTime t) { return fmt(t.seconds()); }

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool apply_mobility(const std::vector<std::string>& tokens,
                    const std::string& model, MobilitySpec& out,
                    std::string* error) {
  if (model == "none") {
    out.model = MobilityModel::None;
  } else if (model == "waypoint") {
    out.model = MobilityModel::RandomWaypoint;
  } else if (model == "commuter") {
    out.model = MobilityModel::Commuter;
  } else if (model == "hotspot") {
    out.model = MobilityModel::Hotspot;
  } else {
    return fail(error, "unknown mobility model '" + model + "'");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string k, v;
    if (!key_value(tokens[i], k, v)) {
      return fail(error, "malformed mobility token '" + tokens[i] + "'");
    }
    bool ok = false;
    if (k == "rate") {
      ok = parse_double(v, out.rate_hz) && out.rate_hz > 0.0;
    } else if (k == "period") {
      ok = parse_secs(v, out.commute_period);
    } else if (k == "fraction") {
      ok = parse_double(v, out.hotspot_fraction) &&
           out.hotspot_fraction > 0.0 && out.hotspot_fraction <= 1.0;
    } else if (k == "interval") {
      ok = parse_secs(v, out.hotspot_interval);
    } else if (k == "dwell") {
      ok = parse_secs(v, out.hotspot_dwell);
    } else {
      return fail(error, "unknown mobility key '" + k + "'");
    }
    if (!ok) return fail(error, "bad mobility value '" + tokens[i] + "'");
  }
  return true;
}

bool apply_churn(const std::vector<std::string>& tokens,
                 const std::string& kind, ChurnSpec& out,
                 std::string* error) {
  if (kind != "poisson" && kind != "mass") {
    return fail(error, "unknown churn kind '" + kind + "'");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string k, v;
    if (!key_value(tokens[i], k, v)) {
      return fail(error, "malformed churn token '" + tokens[i] + "'");
    }
    bool ok = false;
    if (k == "leave") {
      ok = parse_double(v, out.leave_rate_hz) && out.leave_rate_hz >= 0.0;
    } else if (k == "absence") {
      ok = parse_secs(v, out.absence_mean);
    } else if (k == "rejoin") {
      out.rejoin = v != "0";
      ok = v == "0" || v == "1";
    } else if (k == "mass_at") {
      ok = parse_secs(v, out.mass_leave_at);
    } else if (k == "mass_frac") {
      ok = parse_double(v, out.mass_leave_fraction);
    } else if (k == "mass_rejoin") {
      ok = parse_secs(v, out.mass_rejoin_after);
    } else {
      return fail(error, "unknown churn key '" + k + "'");
    }
    if (!ok) return fail(error, "bad churn value '" + tokens[i] + "'");
  }
  return true;
}

bool apply_traffic(const std::vector<std::string>& tokens,
                   const std::string& pattern, TrafficSpec& out,
                   std::string* error) {
  if (pattern == "constant") {
    out.pattern = core::TrafficPattern::Constant;
  } else if (pattern == "poisson") {
    out.pattern = core::TrafficPattern::Poisson;
  } else if (pattern == "mmpp") {
    out.pattern = core::TrafficPattern::Mmpp;
  } else if (pattern == "diurnal") {
    out.pattern = core::TrafficPattern::Diurnal;
  } else {
    return fail(error, "unknown traffic pattern '" + pattern + "'");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string k, v;
    if (!key_value(tokens[i], k, v)) {
      return fail(error, "malformed traffic token '" + tokens[i] + "'");
    }
    bool ok = false;
    if (k == "rate") {
      // Rejected at zero: a rate-0 source never ticks, so the scenario
      // would "pass" every ordering gate vacuously.
      ok = parse_double(v, out.rate_hz) && out.rate_hz > 0.0;
    } else if (k == "burst") {
      ok = parse_double(v, out.burst_rate_hz) && out.burst_rate_hz >= 0.0;
    } else if (k == "on") {
      ok = parse_secs(v, out.on_mean) && out.on_mean > sim::SimTime::zero();
    } else if (k == "off") {
      ok = parse_secs(v, out.off_mean) &&
           out.off_mean > sim::SimTime::zero();
    } else if (k == "period") {
      ok = parse_secs(v, out.diurnal_period) &&
           out.diurnal_period > sim::SimTime::zero();
    } else if (k == "skew") {
      ok = parse_double(v, out.sender_skew) && out.sender_skew >= 0.0;
    } else {
      return fail(error, "unknown traffic key '" + k + "'");
    }
    if (!ok) return fail(error, "bad traffic value '" + tokens[i] + "'");
  }
  return true;
}

bool apply_groups(const std::vector<std::string>& tokens,
                  const std::string& count, GroupSpec& out,
                  std::string* error) {
  // Two groups minimum: count=1 is the degenerate deployment, which is
  // spelled by omitting the section entirely.
  if (!parse_size(count, out.count) || out.count < 2) {
    return fail(error, "bad group count '" + count + "'");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string k, v;
    if (!key_value(tokens[i], k, v)) {
      return fail(error, "malformed groups token '" + tokens[i] + "'");
    }
    bool ok = false;
    if (k == "per_mh") {
      ok = parse_size(v, out.groups_per_mh) && out.groups_per_mh >= 1;
    } else if (k == "dest") {
      ok = parse_size(v, out.dest_groups) && out.dest_groups >= 1;
    } else if (k == "churn") {
      ok = parse_double(v, out.churn_rate_hz) && out.churn_rate_hz >= 0.0;
    } else if (k == "boost") {
      ok = parse_double(v, out.flash_boost) && out.flash_boost >= 1.0;
    } else if (k == "flash") {
      ok = parse_secs(v, out.flash_interval) &&
           out.flash_interval > sim::SimTime::zero();
    } else {
      return fail(error, "unknown groups key '" + k + "'");
    }
    if (!ok) return fail(error, "bad groups value '" + tokens[i] + "'");
  }
  return true;
}

bool apply_fault(const std::vector<std::string>& tokens,
                 const std::string& kind, std::vector<FaultEvent>& out,
                 std::string* error) {
  FaultEvent ev;
  if (kind == "crash") {
    ev.kind = FaultEvent::Kind::BrCrash;
  } else if (kind == "eject") {
    ev.kind = FaultEvent::Kind::EjectBr;
  } else if (kind == "tokenloss") {
    ev.kind = FaultEvent::Kind::TokenLoss;
  } else if (kind == "blackout") {
    ev.kind = FaultEvent::Kind::CellBlackout;
  } else {
    return fail(error, "unknown fault kind '" + kind + "'");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string k, v;
    if (!key_value(tokens[i], k, v)) {
      return fail(error, "malformed fault token '" + tokens[i] + "'");
    }
    bool ok = false;
    if (k == "br" || k == "ap") {
      ok = parse_size(v, ev.index);
    } else if (k == "at") {
      ok = parse_secs(v, ev.at);
    } else if (k == "dur") {
      ok = parse_secs(v, ev.duration);
    } else {
      return fail(error, "unknown fault key '" + k + "'");
    }
    if (!ok) return fail(error, "bad fault value '" + tokens[i] + "'");
  }
  out.push_back(ev);
  return true;
}

}  // namespace

std::optional<ScenarioSpec> parse_scenario(const std::string& text,
                                           std::string* error) {
  ScenarioSpec spec;
  for (const std::string& section : split(text, ';')) {
    if (section.empty()) continue;
    const auto tokens = split(section, ',');
    std::string key, value;
    if (!key_value(tokens[0], key, value)) {
      if (error != nullptr) *error = "malformed section '" + section + "'";
      return std::nullopt;
    }
    bool ok = false;
    if (key == "name") {
      spec.name = value;
      ok = tokens.size() == 1;
      if (!ok && error != nullptr) *error = "name takes no extra keys";
    } else if (key == "mobility") {
      ok = apply_mobility(tokens, value, spec.mobility, error);
    } else if (key == "churn") {
      ok = apply_churn(tokens, value, spec.churn, error);
    } else if (key == "traffic") {
      spec.has_traffic = true;
      ok = apply_traffic(tokens, value, spec.traffic, error);
    } else if (key == "groups") {
      GroupSpec g;
      ok = apply_groups(tokens, value, g, error);
      if (ok) spec.groups = g;
    } else if (key == "fault") {
      ok = apply_fault(tokens, value, spec.faults, error);
    } else if (key == "mq_retention") {
      std::size_t n = 0;
      ok = parse_size(value, n) && tokens.size() == 1;
      if (ok) spec.mq_retention = n;
      if (!ok && error != nullptr) {
        *error = "bad mq_retention '" + value + "'";
      }
    } else {
      if (error != nullptr) *error = "unknown section '" + key + "'";
    }
    if (!ok) return std::nullopt;
  }
  return spec;
}

std::string describe_scenario(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "name=" << spec.name;
  const MobilitySpec& m = spec.mobility;
  switch (m.model) {
    case MobilityModel::None:
      break;
    case MobilityModel::RandomWaypoint:
      os << ";mobility=waypoint,rate=" << fmt(m.rate_hz);
      break;
    case MobilityModel::Commuter:
      os << ";mobility=commuter,period=" << fmt(m.commute_period);
      break;
    case MobilityModel::Hotspot:
      os << ";mobility=hotspot,fraction=" << fmt(m.hotspot_fraction)
         << ",interval=" << fmt(m.hotspot_interval)
         << ",dwell=" << fmt(m.hotspot_dwell);
      break;
  }
  const ChurnSpec& c = spec.churn;
  if (c.leave_rate_hz > 0.0) {
    os << ";churn=poisson,leave=" << fmt(c.leave_rate_hz)
       << ",absence=" << fmt(c.absence_mean)
       << ",rejoin=" << (c.rejoin ? 1 : 0);
  }
  if (c.mass_leave_at > sim::SimTime::zero()) {
    os << ";churn=mass,mass_at=" << fmt(c.mass_leave_at)
       << ",mass_frac=" << fmt(c.mass_leave_fraction)
       << ",mass_rejoin=" << fmt(c.mass_rejoin_after);
  }
  if (spec.has_traffic) {
    const TrafficSpec& t = spec.traffic;
    switch (t.pattern) {
      case core::TrafficPattern::Constant:
        os << ";traffic=constant,rate=" << fmt(t.rate_hz);
        break;
      case core::TrafficPattern::Poisson:
        os << ";traffic=poisson,rate=" << fmt(t.rate_hz);
        break;
      case core::TrafficPattern::Mmpp:
        os << ";traffic=mmpp,rate=" << fmt(t.rate_hz)
           << ",burst=" << fmt(t.burst_rate_hz) << ",on=" << fmt(t.on_mean)
           << ",off=" << fmt(t.off_mean);
        break;
      case core::TrafficPattern::Diurnal:
        os << ";traffic=diurnal,rate=" << fmt(t.rate_hz)
           << ",period=" << fmt(t.diurnal_period);
        break;
    }
    if (t.sender_skew > 0.0) os << ",skew=" << fmt(t.sender_skew);
  }
  if (spec.groups) {
    const GroupSpec& g = *spec.groups;
    os << ";groups=" << g.count << ",per_mh=" << g.groups_per_mh
       << ",dest=" << g.dest_groups;
    if (g.churn_rate_hz > 0.0) os << ",churn=" << fmt(g.churn_rate_hz);
    if (g.flash_boost > 1.0) {
      os << ",boost=" << fmt(g.flash_boost)
         << ",flash=" << fmt(g.flash_interval);
    }
  }
  for (const FaultEvent& ev : spec.faults) {
    switch (ev.kind) {
      case FaultEvent::Kind::BrCrash:
        os << ";fault=crash,br=" << ev.index << ",at=" << fmt(ev.at);
        break;
      case FaultEvent::Kind::EjectBr:
        os << ";fault=eject,br=" << ev.index << ",at=" << fmt(ev.at);
        break;
      case FaultEvent::Kind::TokenLoss:
        os << ";fault=tokenloss,at=" << fmt(ev.at);
        break;
      case FaultEvent::Kind::CellBlackout:
        os << ";fault=blackout,ap=" << ev.index << ",at=" << fmt(ev.at)
           << ",dur=" << fmt(ev.duration);
        break;
    }
  }
  if (spec.mq_retention) os << ";mq_retention=" << *spec.mq_retention;
  return os.str();
}

}  // namespace ringnet::scenario
