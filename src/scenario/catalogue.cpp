#include "scenario/catalogue.hpp"

namespace ringnet::scenario {

const std::vector<CannedScenario>& catalogue() {
  static const std::vector<CannedScenario> canned = {
      {"steady", "control: static membership, constant-rate sources",
       "name=steady;traffic=constant,rate=150"},
      {"waypoint-roam",
       "random-waypoint mobility over the cell grid, Poisson traffic",
       "name=waypoint-roam;mobility=waypoint,rate=2;"
       "traffic=poisson,rate=150"},
      {"commuter-rush",
       "periodic home<->work shuttling with a diurnal ramp and sender skew",
       "name=commuter-rush;mobility=commuter,period=0.6;"
       "traffic=diurnal,rate=150,period=1.5,skew=0.8"},
      {"flash-crowd",
       "hotspot flash crowds under MMPP on/off traffic bursts",
       "name=flash-crowd;mobility=hotspot,fraction=0.6,interval=0.8,"
       "dwell=0.3;traffic=mmpp,rate=40,burst=600,on=0.1,off=0.4"},
      {"churn-mill",
       "Poisson leave/rejoin churn with short absences (MQ-covered resync)",
       "name=churn-mill;churn=poisson,leave=0.5,absence=0.3;"
       "traffic=poisson,rate=150"},
      {"long-absence",
       "churn past MQ retention: rejoiners gap-skip, missed range is lost",
       "name=long-absence;churn=poisson,leave=0.3,absence=1.2;"
       "traffic=poisson,rate=300;mq_retention=64"},
      {"br-failover",
       "scripted BR crash mid-run: ring repair + Token-Regeneration",
       "name=br-failover;fault=crash,br=1,at=1.0;traffic=poisson,rate=150"},
      {"token-storm",
       "token frames lost in transit plus a false-positive BR ejection",
       "name=token-storm;fault=tokenloss,at=0.7;fault=tokenloss,at=1.5;"
       "fault=eject,br=2,at=1.1;traffic=poisson,rate=150"},
      {"dark-cells",
       "wireless cell blackout windows under bursty MMPP traffic",
       "name=dark-cells;fault=blackout,ap=0,at=0.6,dur=0.35;"
       "fault=blackout,ap=1,at=1.3,dur=0.35;"
       "traffic=mmpp,rate=50,burst=500,on=0.1,off=0.4"},
      {"mass-exodus",
       "a majority detaches at once and floods back shortly after",
       "name=mass-exodus;churn=mass,mass_at=0.9,mass_frac=0.6,"
       "mass_rejoin=0.8;traffic=poisson,rate=150"},
      {"group-mesh",
       "static multi-group mesh: overlapping memberships, genuine relay",
       "name=group-mesh;groups=8,per_mh=2,dest=2;traffic=poisson,rate=150"},
      {"group-churn",
       "members swap group memberships mid-run (chain resync per swap)",
       "name=group-churn;groups=8,per_mh=2,dest=2,churn=0.5;"
       "traffic=poisson,rate=150"},
      {"group-flash",
       "a rotating hot group draws boosted traffic every half second",
       "name=group-flash;groups=8,per_mh=2,dest=1,boost=4,flash=0.5;"
       "traffic=poisson,rate=60"},
  };
  return canned;
}

std::optional<ScenarioSpec> find_scenario(const std::string& name,
                                          std::string* error) {
  for (const CannedScenario& c : catalogue()) {
    if (c.name == name) return parse_scenario(c.text, error);
  }
  // Not a canned name: accept ad-hoc scenario text directly, surfacing the
  // parser's own diagnostic so a typo'd key in a long spec is locatable.
  if (name.find('=') == std::string::npos) {
    if (error != nullptr) *error = "no canned scenario named '" + name + "'";
    return std::nullopt;
  }
  return parse_scenario(name, error);
}

}  // namespace ringnet::scenario
