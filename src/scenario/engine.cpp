#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace ringnet::scenario {

namespace {

// XORed into the simulation seed so the engine draws from its own stream:
// adding a scenario never perturbs the protocol's random sequence.
constexpr std::uint64_t kStreamTag = 0x5CE9A210F00DULL;

// Floors for self-rescheduling processes. A zero (or microsecond-rounding-
// to-zero) interval would reschedule at the same timestamp forever and
// livelock the scheduler's run_until loop; clamping guarantees time always
// advances.
sim::SimTime at_least_step(double dt_secs) {
  const sim::SimTime dt = sim::secs(dt_secs);
  return dt > sim::SimTime::zero() ? dt : sim::usecs(1);
}

sim::SimTime at_least_period(sim::SimTime t) {
  return t > sim::SimTime::zero() ? t : sim::msecs(1);
}

}  // namespace

Engine::Engine(ScenarioSpec spec, core::RingNetProtocol& proto,
               sim::Simulation& sim)
    : spec_(std::move(spec)),
      proto_(proto),
      sim_(sim),
      rng_(sim.seed() ^ kStreamTag),
      aps_(proto.topology().aps) {
  grid_w_ = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(std::max<std::size_t>(aps_.size(), 1)))));
  const std::size_t n_mh = proto_.mhs().size();
  waypoint_.resize(n_mh, 0);
  home_.resize(n_mh, 0);
  work_.resize(n_mh, 0);
}

std::size_t Engine::ap_index(NodeId ap) const {
  // AP NodeIds are assigned sequentially by build_hierarchy, so the
  // tier-local index is the position in topology().aps.
  return ap.index();
}

NodeId Engine::mh_id(std::size_t mh) const { return proto_.mhs()[mh].id(); }

void Engine::arm() {
  running_ = true;
  const std::size_t n_mh = proto_.mhs().size();
  const bool can_move = aps_.size() > 1 && n_mh > 0;
  switch (spec_.mobility.model) {
    case MobilityModel::None:
      break;
    case MobilityModel::RandomWaypoint:
      if (can_move) {
        for (std::size_t i = 0; i < n_mh; ++i) {
          waypoint_[i] = rng_.bounded(aps_.size());
          schedule_waypoint_step(i);
        }
      }
      break;
    case MobilityModel::Commuter:
      if (can_move) {
        for (std::size_t i = 0; i < n_mh; ++i) {
          home_[i] = ap_index(proto_.mhs()[i].ap());
          // The far side of the grid, so commutes cross cells (and in
          // multi-BR deployments usually BR domains).
          work_[i] = (home_[i] + aps_.size() / 2) % aps_.size();
          if (work_[i] == home_[i]) work_[i] = (home_[i] + 1) % aps_.size();
          // Stagger first departures across the period: rush, not a tick.
          const sim::SimTime phase{spec_.mobility.commute_period.us *
                                   static_cast<std::int64_t>(i + 1) /
                                   static_cast<std::int64_t>(n_mh + 1)};
          sim_.after(phase, [this, i] { commuter_trip(i); });
        }
      }
      break;
    case MobilityModel::Hotspot:
      if (can_move) {
        sim_.after(spec_.mobility.hotspot_interval,
                   [this] { hotspot_flash(); });
      }
      break;
  }

  if (spec_.churn.leave_rate_hz > 0.0) {
    for (std::size_t i = 0; i < n_mh; ++i) schedule_leave(i);
  }
  if (spec_.groups && proto_.multi_group()) {
    if (spec_.groups->churn_rate_hz > 0.0) {
      for (std::size_t i = 0; i < n_mh; ++i) schedule_group_churn(i);
    }
    if (spec_.groups->flash_boost > 1.0) {
      sim_.after(at_least_period(spec_.groups->flash_interval),
                 [this] { group_flash(); });
    }
  }
  if (spec_.churn.mass_leave_at > sim::SimTime::zero()) {
    sim_.after(spec_.churn.mass_leave_at, [this] { mass_leave(); });
  }
  for (const FaultEvent& ev : spec_.faults) schedule_fault(ev);
}

// ---------------------------------------------------------------------------
// Mobility

void Engine::schedule_waypoint_step(std::size_t mh) {
  if (!running_) return;
  const double dt =
      rng_.exponential(std::max(spec_.mobility.rate_hz, 1e-9));
  sim_.after(at_least_step(dt), [this, mh] { waypoint_step(mh); });
}

void Engine::waypoint_step(std::size_t mh) {
  if (!running_) return;
  const auto& node = proto_.mhs()[mh];
  if (node.attached()) {
    const std::size_t cur = ap_index(node.ap());
    if (cur == waypoint_[mh]) waypoint_[mh] = rng_.bounded(aps_.size());
    if (cur != waypoint_[mh]) {
      proto_.force_handoff(node.id(),
                           aps_[step_toward(cur, waypoint_[mh])]);
    }
  }
  schedule_waypoint_step(mh);
}

std::size_t Engine::step_toward(std::size_t from, std::size_t to) const {
  // One king-move on the cell grid toward the waypoint (x, then y). Any
  // fixed rule works — determinism is what matters.
  const std::ptrdiff_t w = static_cast<std::ptrdiff_t>(grid_w_);
  std::ptrdiff_t x = static_cast<std::ptrdiff_t>(from) % w;
  std::ptrdiff_t y = static_cast<std::ptrdiff_t>(from) / w;
  const std::ptrdiff_t tx = static_cast<std::ptrdiff_t>(to) % w;
  const std::ptrdiff_t ty = static_cast<std::ptrdiff_t>(to) / w;
  if (x < tx) {
    ++x;
  } else if (x > tx) {
    --x;
  }
  if (y < ty) {
    ++y;
  } else if (y > ty) {
    --y;
  }
  const std::size_t next = static_cast<std::size_t>(y * w + x);
  // The last grid row may be ragged: jump stragglers straight home.
  return next < aps_.size() ? next : to;
}

void Engine::commuter_trip(std::size_t mh) {
  if (!running_) return;
  const auto& node = proto_.mhs()[mh];
  if (node.attached()) {
    const std::size_t cur = ap_index(node.ap());
    const std::size_t target = cur == work_[mh] ? home_[mh] : work_[mh];
    if (target != cur) proto_.force_handoff(node.id(), aps_[target]);
  }
  sim_.after(at_least_period(spec_.mobility.commute_period),
             [this, mh] { commuter_trip(mh); });
}

void Engine::hotspot_flash() {
  if (!running_) return;
  // Flashes rotate over the grid deterministically; the crowd is sampled.
  const std::size_t hotspot = hotspot_cursor_++ % aps_.size();
  auto displaced = std::make_shared<std::vector<std::size_t>>();
  for (std::size_t i = 0; i < proto_.mhs().size(); ++i) {
    const auto& node = proto_.mhs()[i];
    if (!node.attached() || ap_index(node.ap()) == hotspot) continue;
    if (!rng_.chance(spec_.mobility.hotspot_fraction)) continue;
    proto_.force_handoff(node.id(), aps_[hotspot]);
    displaced->push_back(i);
  }
  sim_.after(spec_.mobility.hotspot_dwell, [this, displaced] {
    // Dispersal runs even after stop(): the crowd drains home.
    for (const std::size_t i : *displaced) {
      const auto& node = proto_.mhs()[i];
      if (!node.attached()) continue;
      NodeId target = node.ap();
      while (target == node.ap()) target = random_ap();
      proto_.force_handoff(node.id(), target);
    }
  });
  sim_.after(at_least_period(spec_.mobility.hotspot_interval),
             [this] { hotspot_flash(); });
}

// ---------------------------------------------------------------------------
// Churn

void Engine::schedule_leave(std::size_t mh) {
  if (!running_) return;
  const double dt =
      rng_.exponential(std::max(spec_.churn.leave_rate_hz, 1e-9));
  sim_.after(at_least_step(dt), [this, mh] { leave(mh); });
}

void Engine::leave(std::size_t mh) {
  if (!running_) return;
  const auto& node = proto_.mhs()[mh];
  if (node.attached()) {
    proto_.detach_mh(node.id());
    if (spec_.churn.rejoin) {
      const double mean = std::max(spec_.churn.absence_mean.seconds(), 1e-6);
      const NodeId back = random_ap();
      // Rejoins complete even after stop() so the drain phase reattaches
      // (and resynchronizes) everyone who is coming back.
      sim_.after(sim::secs(rng_.exponential(1.0 / mean)),
                 [this, mh, back] { proto_.reattach_mh(mh_id(mh), back); });
    }
  }
  schedule_leave(mh);
}

void Engine::mass_leave() {
  if (!running_) return;  // a short run ended before the scripted exodus
  auto gone = std::make_shared<std::vector<std::size_t>>();
  for (std::size_t i = 0; i < proto_.mhs().size(); ++i) {
    const auto& node = proto_.mhs()[i];
    if (node.attached() && rng_.chance(spec_.churn.mass_leave_fraction)) {
      proto_.detach_mh(node.id());
      gone->push_back(i);
    }
  }
  sim_.after(spec_.churn.mass_rejoin_after, [this, gone] {
    for (const std::size_t i : *gone) {
      proto_.reattach_mh(mh_id(i), random_ap());
    }
  });
}

// ---------------------------------------------------------------------------
// Group dynamics

void Engine::schedule_group_churn(std::size_t mh) {
  if (!running_) return;
  const double dt =
      rng_.exponential(std::max(spec_.groups->churn_rate_hz, 1e-9));
  sim_.after(at_least_step(dt), [this, mh] { group_churn(mh); });
}

void Engine::group_churn(std::size_t mh) {
  if (!running_) return;
  const std::size_t count = proto_.config().groups.count;
  const auto& mine = proto_.groups_of(mh_id(mh));
  if (count > 1 && mine.size() > 0 && mine.size() < count) {
    const GroupId old = mine[rng_.bounded(mine.size())];
    // Rejection-sample a group the member is not already in; size < count
    // guarantees one exists. Join before leave so membership never dips to
    // empty (leave_group would refuse the last group anyway).
    GroupId next{0};
    for (int tries = 0; tries < 64; ++tries) {
      const GroupId cand{static_cast<std::uint32_t>(rng_.bounded(count) + 1)};
      if (!mine.contains(cand)) {
        next = cand;
        break;
      }
    }
    if (next.v != 0) {
      proto_.join_group(mh_id(mh), next);
      proto_.leave_group(mh_id(mh), old);
    }
  }
  schedule_group_churn(mh);
}

void Engine::group_flash() {
  // The rotation respects stop() like every disruptive process, and its
  // final act is to clear the boost so the drain phase runs at base rate.
  if (!running_) {
    proto_.set_group_rate_boost(GroupId{0}, 1.0);
    return;
  }
  const std::size_t count = proto_.config().groups.count;
  const GroupId hot{static_cast<std::uint32_t>(flash_cursor_++ % count + 1)};
  proto_.set_group_rate_boost(hot, spec_.groups->flash_boost);
  sim_.after(at_least_period(spec_.groups->flash_interval),
             [this] { group_flash(); });
}

// ---------------------------------------------------------------------------
// Faults

void Engine::schedule_fault(const FaultEvent& ev) {
  // Like every disruptive process, scripted faults respect stop(): a fault
  // timestamped past a shortened run window must not fire mid-drain and
  // distort the completion measurement. Only a blackout's *end* is
  // unconditional, so an in-progress window always lifts.
  const auto& ring = proto_.topology().top_ring;
  switch (ev.kind) {
    case FaultEvent::Kind::BrCrash: {
      const NodeId br = ring[ev.index % ring.size()];
      sim_.after(ev.at, [this, br] {
        if (running_) proto_.crash_node(br);
      });
      break;
    }
    case FaultEvent::Kind::EjectBr: {
      const NodeId br = ring[ev.index % ring.size()];
      sim_.after(ev.at, [this, br] {
        if (running_) proto_.eject_br(br);
      });
      break;
    }
    case FaultEvent::Kind::TokenLoss:
      sim_.after(ev.at, [this] {
        if (running_) proto_.lose_token();
      });
      break;
    case FaultEvent::Kind::CellBlackout: {
      const NodeId ap = aps_[ev.index % aps_.size()];
      sim_.after(ev.at, [this, ap] {
        if (running_) proto_.set_cell_blackout(ap, true);
      });
      sim_.after(ev.at + ev.duration,
                 [this, ap] { proto_.set_cell_blackout(ap, false); });
      break;
    }
  }
}

}  // namespace ringnet::scenario
