#include "core/protocol.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/groups.hpp"
#include "obs/names.hpp"

namespace ringnet::core {

namespace {

// RN007-ok: the degenerate single-group deployment's one ring-wide group;
// multi-group state is always reached through a message's GroupSet instead.
constexpr GroupId kGroup{1};
constexpr std::uint32_t kAckBytes = 17;
constexpr std::uint32_t kHeartbeatBytes = 13;
// Resends per ack processed; bounds the catch-up burst after a handoff.
constexpr std::size_t kResendWindow = 128;

}  // namespace

// ---------------------------------------------------------------------------
// DeliveryLog

std::optional<std::string> DeliveryLog::check_total_order() const {
  std::unordered_map<GlobalSeq, std::pair<NodeId, LocalSeq>> binding;
  for (std::size_t i = 0; i < per_mh_.size(); ++i) {
    bool first = true;
    GlobalSeq prev = 0;
    for (const auto& r : per_mh_[i]) {
      if (!first && r.gseq <= prev) {
        return "non-increasing gseq " + std::to_string(r.gseq) + " after " +
               std::to_string(prev) + " at " + to_string(ids_[i]);
      }
      first = false;
      prev = r.gseq;
      const auto [it, inserted] =
          binding.emplace(r.gseq, std::make_pair(r.source, r.lseq));
      if (!inserted &&
          (it->second.first != r.source || it->second.second != r.lseq)) {
        return "gseq " + std::to_string(r.gseq) +
               " bound to two different messages (seen at " +
               to_string(ids_[i]) + ")";
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Construction

RingNetProtocol::RingNetProtocol(sim::Simulation& sim, ProtocolConfig config)
    : sim_(sim),
      config_(std::move(config)),
      topo_(topo::build_hierarchy(config_.hierarchy)),
      migrate_(sim.domain_count() > 0) {
  // build_hierarchy assigns tier indices in emission order, so top_ring,
  // aps and mhs are index-ordered and every per-tier table below can be a
  // plain vector addressed by NodeId::index().
  const std::size_t n_br = topo_.top_ring.size();
  const std::size_t n_ap = topo_.aps.size();
  const std::size_t n_mh = topo_.mhs.size();
  const std::size_t n_ctx =
      static_cast<std::size_t>(sim_.global_domain()) + 1;

  brs_.reserve(n_br);
  for (NodeId br : topo_.top_ring) {
    brs_.emplace_back(br, config_.options.mq_retention);
  }
  br_members_.assign(n_br, {});
  alive_ring_ = topo_.top_ring;
  rebuild_ring_index();

  ap_occupancy_.assign(n_ap, 0);
  cell_blackout_.assign(n_ap, 0);
  ap_ag_.assign(n_ap, NodeId::invalid());
  ap_br_.assign(n_ap, NodeId::invalid());
  for (NodeId ap : topo_.aps) {
    const NodeId ag = topo_.desc(ap).parent;
    ap_ag_[ap.index()] = ag;
    ap_br_[ap.index()] = topo_.br_of(ap);
    if (ag.index() >= ag_br_.size()) {
      ag_br_.resize(ag.index() + 1, NodeId::invalid());
    }
    ag_br_[ag.index()] = topo_.desc(ag).parent;
  }

  mhs_.reserve(n_mh);
  member_wm_.assign(n_mh, 0);
  member_br_.assign(n_mh, NodeId::invalid());
  multi_ = config_.groups.multi();
  mh_groups_.assign(n_mh, {});
  if (multi_) {
    group_members_.assign(
        n_br, std::vector<std::vector<NodeId>>(config_.groups.count));
    member_fwd_tail_.assign(n_mh, 0);
    member_fwd_log_.assign(n_mh, {});
    member_seen_stamp_.assign(n_mh, 0);
    group_seq_high_.assign(config_.groups.count, 0);
    for (std::size_t i = 0; i < n_mh; ++i) {
      mh_groups_[i] = member_groups(i, config_.groups);
    }
  }
  mh_domain_.assign(n_mh, gdom());
  sources_on_mh_.assign(n_mh, {});
  membership_seq_.assign(n_mh, 0);
  for (NodeId mh : topo_.mhs) {
    const NodeId ap = topo_.desc(mh).parent;
    mhs_.emplace_back(mh, ap);
    const NodeId br = topo_.br_of(ap);
    br_members_[br.index()].push_back(mh);
    member_br_[mh.index()] = br;
    mh_domain_[mh.index()] = br_domain(br);
    ++ap_occupancy_[ap.index()];
    if (multi_) {
      for (GroupId g : mh_groups_[mh.index()]) {
        group_members_[br.index()][group_index(g)].push_back(mh);
      }
    }
  }
  deliveries_.reset(topo_.mhs);
  lat_hists_.resize(n_ctx);
  span_breakdowns_.resize(n_ctx);
  loss_.resize(n_ctx);

  // Every BR starts with a converged view: all MHs at their home AP.
  for (auto& br : brs_) {
    br.view_.reset(n_mh);
    for (NodeId mh : topo_.mhs) {
      br.view_.apply(mh, topo_.desc(mh).parent, 0);
    }
  }

  // Sources live on MHs, spread evenly across the population.
  sources_.reserve(config_.num_sources);
  for (std::size_t i = 0; i < config_.num_sources; ++i) {
    SourceState s;
    s.index = static_cast<std::uint32_t>(i);
    s.source_id = NodeId{static_cast<std::uint32_t>(i)};
    s.mh = topo_.mhs[(i * n_mh) / std::max<std::size_t>(config_.num_sources,
                                                        1)];
    sources_on_mh_[s.mh.index()].push_back(static_cast<std::uint32_t>(i));
    sources_.push_back(std::move(s));
  }

  // Sender skew: source i carries weight (i+1)^-skew, normalized to mean 1
  // so the aggregate submit rate stays num_sources * rate_hz.
  if (config_.source.sender_skew > 0.0 && !sources_.empty()) {
    double sum = 0.0;
    for (auto& s : sources_) {
      s.weight = std::pow(static_cast<double>(s.index) + 1.0,
                          -config_.source.sender_skew);
      sum += s.weight;
    }
    const double norm = static_cast<double>(sources_.size()) / sum;
    for (auto& s : sources_) s.weight *= norm;
  }

  auto& mx = sim_.metrics();
  namespace names = obs::names;
  mid_.mh_delivered = mx.intern(names::kMhDelivered);
  mid_.acks_sent = mx.intern(names::kAcksSent);
  mid_.retransmits = mx.intern(names::kRetransmits);
  mid_.token_held = mx.intern(names::kTokenHeld);
  mid_.token_dup_destroyed = mx.intern(names::kTokenDupDestroyed);
  mid_.token_regenerated = mx.intern(names::kTokenRegenerated);
  mid_.token_dropped = mx.intern(names::kTokenDropped);
  mid_.wq_dropped = mx.intern(names::kWqDropped);
  mid_.gaps_skipped = mx.intern(names::kGapsSkipped);
  mid_.gap_skipped_msgs = mx.intern(names::kGapSkippedMsgs);
  mid_.membership_applied = mx.intern(names::kMembershipApplied);
  mid_.membership_relayed = mx.intern(names::kMembershipRelayed);
  mid_.ring_repairs = mx.intern(names::kRingRepairs);
  mid_.ring_rejoins = mx.intern(names::kRingRejoins);
  mid_.handoff_count = mx.intern(names::kHandoffCount);
  mid_.handoff_hot = mx.intern(names::kHandoffHot);
  mid_.handoff_cold = mx.intern(names::kHandoffCold);
  mid_.archive_pruned = mx.intern(names::kArchivePruned);
  mid_.churn_leaves = mx.intern(names::kChurnLeaves);
  mid_.churn_rejoins = mx.intern(names::kChurnRejoins);
  mid_.blackout_dropped = mx.intern(names::kBlackoutDropped);
  mid_.blackout_uplink_lost = mx.intern(names::kBlackoutUplinkLost);
  mid_.park_dropped = mx.intern(names::kParkDropped);
  mid_.buf_wq_peak = mx.intern(names::kBufWqPeak);
  mid_.buf_mq_peak = mx.intern(names::kBufMqPeak);
  mid_.buf_archive_peak = mx.intern(names::kBufArchivePeak);
  mid_.buf_submitlog_peak = mx.intern(names::kBufSubmitlogPeak);
}

// ---------------------------------------------------------------------------
// Lifecycle

void RingNetProtocol::start() {
  assert(!started_);
  started_ = true;
  const auto& opt = config_.options;

  for (NodeId br : topo_.top_ring) {
    brs_[br.index()].last_hb_from_prev_ = sim_.now();
    if (opt.tau > sim::SimTime::zero()) {
      sim_.after(br_domain(br), opt.tau, [this, br] { tau_tick(br); });
    }
    sim_.after(gdom(), opt.membership_batch,
               [this, br] { membership_flush_tick(br); });
    sim_.after(gdom(), opt.heartbeat_period,
               [this, br] { heartbeat_tick(br); });
  }

  if (opt.ordered) {
    std::uint32_t stagger = 0;
    for (NodeId mh : topo_.mhs) {
      const sim::SimTime phase{(opt.ack_period.us * (stagger % 8)) / 8};
      ++stagger;
      spawn_ack_chain(mh, opt.ack_period + phase);
    }
    proto::OrderingToken token(kGroup, current_epoch_);
    token.set_serial(active_token_serial_);
    token_custodian_ = topo_.top_ring.front();
    sim_.after(gdom(), sim::usecs(1),
               [this, token = std::move(token)]() mutable {
                 token_arrive(token_custodian_, std::move(token));
               });
  }

  start_sources();

  if (config_.mobility.handoff_rate_hz > 0.0 && topo_.aps.size() > 1) {
    mobility_.running_ = true;
    for (NodeId mh : topo_.mhs) schedule_next_handoff(mh);
  }
}

void RingNetProtocol::start_sources() {
  sources_running_ = true;
  const double rate = config_.source.rate_hz;
  if (rate <= 0.0 || sources_.empty()) return;
  const sim::SimTime period = sim::secs(1.0 / rate);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const sim::SimTime phase{
        (period.us * static_cast<std::int64_t>(i + 1)) /
        static_cast<std::int64_t>(sources_.size() + 1)};
    spawn_source_chain(i, phase);
  }
}

void RingNetProtocol::stop_sources() { sources_running_ = false; }

void RingNetProtocol::spawn_source_chain(std::size_t idx, sim::SimTime delay) {
  // The chain is pinned to the domain owning the source's MH at spawn time;
  // a migration bumps the generation, killing the old chain at its next
  // tick, and respawns into the new owner.
  SourceState& src = sources_[idx];
  const std::uint64_t gen = src.gen;
  sim_.after(mh_domain_[src.mh.index()], delay,
             [this, idx, gen] { source_tick(idx, gen); });
}

void RingNetProtocol::source_tick(std::size_t idx, std::uint64_t gen) {
  SourceState& src = sources_[idx];
  if (gen != src.gen) return;  // superseded by a migration respawn
  if (!sources_running_) return;
  if (config_.source.max_messages > 0 &&
      src.next_lseq >= config_.source.max_messages) {
    return;  // count-bounded source exhausted (no reschedule)
  }
  proto::DataMsg msg;
  msg.gid = kGroup;
  msg.source = src.source_id;
  msg.lseq = src.next_lseq++;
  msg.payload_size = config_.source.payload_size;
  if (multi_) {
    msg.groups = dest_groups(src.source_id, msg.lseq, config_.groups);
    msg.gid = msg.groups[0];
  }
  submit(src, msg);
  sim::SimTime dt = next_submit_interval(src);
  if (multi_ && group_boost_ != 1.0 && boost_group_.v != 0 &&
      dest_groups(src.source_id, src.next_lseq, config_.groups)
          .contains(boost_group_)) {
    // Flash crowd: the upcoming message targets the hot group, so this
    // source submits it boost-x sooner. Pure function of (source, lseq) —
    // no extra RNG draws, so the schedule stays replayable.
    dt = sim::secs(dt.seconds() / group_boost_);
  }
  // Floor at one tick: a zero interval (microsecond rounding at extreme
  // rates) would reschedule at the same timestamp forever.
  if (dt <= sim::SimTime::zero()) dt = sim::usecs(1);
  sim_.after(dt, [this, idx, gen] { source_tick(idx, gen); });
}

sim::SimTime RingNetProtocol::next_submit_interval(SourceState& src) {
  const SourceConfig& sc = config_.source;
  const double base = sc.rate_hz * src.weight;
  switch (sc.pattern) {
    case TrafficPattern::Constant:
      return sim::secs(1.0 / base);
    case TrafficPattern::Poisson:
      return sim::secs(sim_.rng().exponential(base));
    case TrafficPattern::Mmpp: {
      // Competing exponentials: draw the gap at the current state's rate,
      // but a gap crossing the next state transition is truncated there
      // and re-drawn at the new state's rate — otherwise an OFF-scale
      // residual would front-clip every burst onset.
      const double burst =
          sc.burst_rate_hz > 0.0 ? sc.burst_rate_hz * src.weight : 10.0 * base;
      sim::SimTime t = sim_.now();
      while (true) {
        while (src.mmpp_until <= t) {
          src.mmpp_on = !src.mmpp_on;
          const double mean_s = std::max(
              (src.mmpp_on ? sc.on_mean : sc.off_mean).seconds(), 1e-6);
          src.mmpp_until += sim::secs(sim_.rng().exponential(1.0 / mean_s));
        }
        const sim::SimTime gap =
            sim::secs(sim_.rng().exponential(src.mmpp_on ? burst : base));
        if (t + gap <= src.mmpp_until) return t + gap - sim_.now();
        t = src.mmpp_until;
      }
    }
    case TrafficPattern::Diurnal: {
      // Nonhomogeneous Poisson: the instantaneous rate rides a sinusoid
      // between 0.1x and 1.9x the base over one diurnal_period.
      constexpr double kTwoPi = 6.283185307179586;
      const double period_s = std::max(sc.diurnal_period.seconds(), 1e-6);
      const double rate =
          base * (1.0 + 0.9 * std::sin(kTwoPi * sim_.now().seconds() /
                                       period_s));
      return sim::secs(sim_.rng().exponential(rate));
    }
  }
  return sim::secs(1.0 / base);
}

void RingNetProtocol::submit(SourceState& src, proto::DataMsg msg) {
  msg.submit_at = sim_.now();
  src.submit_log.push(sim_.now());
  note_submit_log_depth(src.submit_log.retained());
  total_sent_.fetch_add(1, std::memory_order_relaxed);
  MhNode& m = mhs_[src.mh.index()];
  if (!m.attached_) {
    src.parked.push_back(msg);
    if (src.parked.size() > config_.options.source_park_cap) {
      release_submit(src.parked.front());
      src.parked.pop_front();
      sim_.metrics().incr(mid_.park_dropped);
    }
    return;
  }
  uplink_to_br(msg, src.mh);
}

void RingNetProtocol::uplink_to_br(const proto::DataMsg& msg, NodeId mh) {
  MhNode& m = mhs_[mh.index()];
  if (cell_blacked_out(m.ap_)) {
    // The radio cannot reach the AP and there is no end-to-end source ARQ:
    // the submission is lost outright — unlike downlink drops, nothing
    // ever repairs it, so it is counted separately from blackout.dropped.
    sim_.metrics().incr(mid_.blackout_uplink_lost);
    release_submit(msg);
    return;
  }
  const NodeId br = ap_br_[m.ap_.index()];
  if (!br.valid()) {
    release_submit(msg);  // dropped before assignment: never archived
    return;
  }
  const sim::SimTime delay = uplink_delay(mh, data_bytes(msg));
  if (config_.options.ordered) {
    sim_.after(br_domain(br), delay, [this, br, msg = msg]() mutable {
      BrNode& b = brs_[br.index()];
      if (!b.alive_) {
        release_submit(msg);  // lost at a dead BR: never archived
        return;
      }
      msg.uplink_rx_at = sim_.now();
      if (config_.options.tau > sim::SimTime::zero()) {
        b.staging_.push_back(msg);
      } else {
        b.wq_.add(msg);
      }
      note_wq_depth(b);
    });
  } else {
    // Remark 3 variant: no ordering pass — fan straight out of the BR tier.
    sim_.after(br_domain(br), delay, [this, br, msg = msg]() mutable {
      if (!brs_[br.index()].alive_) return;
      msg.uplink_rx_at = sim_.now();
      std::vector<proto::DataMsg> batch{msg};
      distribute(br, batch);
    });
  }
}

// ---------------------------------------------------------------------------
// Ordering

void RingNetProtocol::tau_tick(NodeId br) {
  BrNode& b = brs_[br.index()];
  if (b.alive_) {
    while (!b.staging_.empty()) {
      b.wq_.add(b.staging_.front());
      b.staging_.pop_front();
    }
    note_wq_depth(b);
  }
  sim_.after(config_.options.tau, [this, br] { tau_tick(br); });
}

void RingNetProtocol::token_arrive(NodeId br, proto::OrderingToken token) {
  if (!lost_serials_.empty() && lost_serials_.count(token.serial()) != 0) {
    // The frame carrying this token was declared lost in transit
    // (lose_token): it never arrives anywhere.
    sim_.metrics().incr(mid_.token_dropped);
    return;
  }
  BrNode& b = brs_[br.index()];
  if (!b.alive_) {
    // The token reached a crashed node and is gone; topology maintenance
    // will notice via heartbeats and signal Token-Loss.
    if (token.serial() == active_token_serial_) token_lost_ = true;
    return;
  }
  if (token.serial() != active_token_serial_) {
    // Multiple-Token elimination: only the live lineage survives.
    sim_.metrics().incr(mid_.token_dup_destroyed);
    sim_.trace().record(sim::TraceKind::TokenDestroy, sim_.now(), br,
                        token.epoch());
    return;
  }

  token_custodian_ = br;
  if (br == alive_ring_.front()) token.bump_rotation();
  sim_.trace().record(sim::TraceKind::TokenPass, sim_.now(), br, token.epoch(),
                      token.rotation());
  sim_.metrics().incr(mid_.token_held);

  // WTSNP recycling: our previous entries have completed a full rotation.
  token.prune_entries_of(br);

  std::size_t dropped = 0;
  auto batch = b.wq_.assign(
      [&](proto::DataMsg& m) {
        m.gseq = token.append_range(br, m.source, m.lseq, m.lseq);
        m.ordering_node = br;
        m.epoch = token.epoch();
        m.assigned_at = sim_.now();
        if (multi_ && !m.groups.empty()) {
          // Per-destination-group dense sequence, drawn from the token's
          // group counters so it is totally ordered ring-wide. With the
          // one shared ring the cross-group timestamp merge collapses to
          // gseq itself; the per-group seqs feed traces and accounting.
          for (std::size_t i = 0; i < m.groups.size(); ++i) {
            m.group_seqs[i] = token.bump_group_seq(m.groups[i]);
            group_seq_high_[group_index(m.groups[i])] = m.group_seqs[i] + 1;
          }
        }
        return true;
      },
      dropped);
  if (dropped > 0) sim_.metrics().incr(mid_.wq_dropped, dropped);

  for (const auto& m : batch) {
    if (m.source.index() < sources_.size()) {
      // Token hops are barrier points: every earlier submit has run, so
      // the (domain-owned) submit log is safe to read here in both modes.
      const auto at = sources_[m.source.index()].submit_log.get(m.lseq);
      if (at) {
        assign_hist_.record(static_cast<std::uint64_t>((sim_.now() - *at).us));
      }
    }
    if (!any_assigned_) archive_base_ = m.gseq;
    max_assigned_gseq_ = m.gseq;
    any_assigned_ = true;
    assert(m.gseq == archive_base_ + assigned_archive_.size());
    assigned_archive_.push_back(ArchiveEntry{m, sim_.now()});
  }
  if (!batch.empty()) {
    archive_peak_ = std::max(archive_peak_, assigned_archive_.size());
    sim_.metrics().gauge_max(mid_.buf_archive_peak,
                             static_cast<double>(assigned_archive_.size()));
    sim_.metrics().gauge_max(
        mid_.buf_submitlog_peak,
        static_cast<double>(
            submit_log_peak_.load(std::memory_order_relaxed)));
    distribute(br, batch);
  }

  // Under domain sharding the subtree-acked floors advance inside their
  // domains; fold them into the global watermark at this serialization
  // point instead of on every ack.
  if (migrate_) advance_global_floor();

  const NodeId next = next_alive_br(br);
  if (!next.valid()) return;  // ring fully gone
  const std::uint32_t token_bytes = static_cast<std::uint32_t>(
      41 + 32 * token.entries().size() +
      12 * token.group_counters().size());
  sim::SimTime delay = config_.options.token_hold;
  if (next == br) {
    delay += sim::msecs(1);  // 1-ring (sequencer): pace the self-visit
  } else {
    delay += hop_delay(config_.hierarchy.wan, net::link_key(br, next),
                       token_bytes);
  }
  token_custodian_ = next;
  // Move the token into the hop event: its WTSNP entry vector would
  // otherwise be copied on every pass of the ring's hottest path.
  sim_.after(delay, [this, next, token = std::move(token)]() mutable {
    token_arrive(next, std::move(token));
  });
}

void RingNetProtocol::distribute(NodeId origin,
                                 const std::vector<proto::DataMsg>& batch) {
  // Self-delivery is unconditional: the origin has the batch in hand even
  // if a false-positive ejection removed it from alive_ring_.
  for (const auto& m : batch) br_receive_ordered(origin, m);
  if (alive_ring_.empty() ||
      (alive_ring_.size() == 1 && ring_pos_[origin.index()] != kNoRingPos)) {
    return;
  }
  // One frame (and one scheduled event) per destination carries the whole
  // batch; each (origin, destination) link runs its own loss/ARQ process.
  const auto frame =
      std::make_shared<const std::vector<proto::DataMsg>>(batch);
  std::uint32_t frame_bytes = 0;
  for (const auto& m : batch) frame_bytes += data_bytes(m);
  for (NodeId br : alive_ring_) {
    if (br == origin) continue;
    const sim::SimTime delay = hop_delay(
        config_.hierarchy.wan, net::link_key(origin, br), frame_bytes);
    sim_.after(br_domain(br), delay, [this, br, frame] {
      for (const auto& m : *frame) br_receive_ordered(br, m);
    });
  }
}

void RingNetProtocol::br_receive_ordered(NodeId br, const proto::DataMsg& msg) {
  BrNode& b = brs_[br.index()];
  if (!b.alive_) return;
  if (config_.options.ordered) {
    if (!b.mq_.store(msg, sim_.now())) return;  // duplicate
    sim_.metrics().gauge_max(mid_.buf_mq_peak,
                             static_cast<double>(b.mq_.size()));
    // With no members there are no acks to drive pruning: advance the
    // retention window once enough arrivals pile up (amortized, so the
    // per-message path stays O(1)) to keep an empty BR's MQ bounded.
    if (br_members_[br.index()].empty() &&
        b.mq_.size() > 2 * config_.options.mq_retention + 64) {
      mark_acked(b);
    }
  }
  forward_down(br, msg);
}

void RingNetProtocol::forward_down(NodeId br, const proto::DataMsg& msg) {
  if (multi_ && !msg.groups.empty()) {
    forward_down_multi(br, msg);
    return;
  }
  const sim::Domain dom = br_domain(br);
  const auto& members = br_members_[br.index()];
  if (members.empty()) return;
  // One refcounted copy carries the frame to every member; the per-member
  // fan-out is the hottest loop in the deployment and must not copy the
  // full DataMsg per destination (same idiom as distribute()'s ring frame).
  auto stamped = std::make_shared<proto::DataMsg>(msg);
  stamped->relay_rx_at = sim_.now();
  const std::shared_ptr<const proto::DataMsg> frame = std::move(stamped);
  for (NodeId mh : members) {
    MhNode& m = mhs_[mh.index()];
    if (!m.attached_) continue;
    if (cell_blacked_out(m.ap_)) {
      // The AP's radio is dark: the frame is dropped at the cell edge and
      // the member catches up via ack-driven resync after the window.
      sim_.metrics().incr(mid_.blackout_dropped);
      continue;
    }
    const sim::SimTime delay = downlink_delay(mh, data_bytes());
    sim_.after(dom, delay,
               [this, mh, frame] { mh_receive(mh, *frame, false); });
  }
}

void RingNetProtocol::forward_down_multi(NodeId br, const proto::DataMsg& msg) {
  // Genuine relay: walk only the destination groups' member slabs. A BR
  // whose subtree holds no member of any destination group does zero work
  // here — per-message downlink cost scales with the destination
  // membership, not the deployment's group count or MH population.
  const sim::Domain dom = br_domain(br);
  auto& slabs = group_members_[br.index()];
  const GlobalSeq stamp = msg.gseq + 1;  // chain coordinate of this frame
  for (GroupId g : msg.groups) {
    for (NodeId mh : slabs[group_index(g)]) {
      const std::size_t i = mh.index();
      if (member_seen_stamp_[i] == stamp) continue;  // overlapping groups
      member_seen_stamp_[i] = stamp;
      MhNode& m = mhs_[i];
      proto::DataMsg copy = msg;
      copy.relay_rx_at = sim_.now();
      if (config_.options.ordered) {
        // Chain the frame to the previous one forwarded to this member,
        // and log it for ack-driven resends, even when the radio is dark:
        // the chain must name every destined message or the member could
        // not tell a loss from a non-destination gseq hole.
        copy.prev_chain = member_fwd_tail_[i];
        member_fwd_tail_[i] = stamp;
        auto& log = member_fwd_log_[i];
        log.push_back(FwdEntry{msg.gseq, copy.prev_chain});
        if (log.size() > config_.options.mq_retention + kResendWindow) {
          // A member that never acks (crashed radio, endless blackout)
          // must not grow O(total sent) state: drop the oldest unacked
          // forward — the ack-driven resync splices the chain over it.
          log.pop_front();
        }
      }
      if (!m.attached_) continue;  // repaired via the forward-log resend
      if (cell_blacked_out(m.ap_)) {
        sim_.metrics().incr(mid_.blackout_dropped);
        continue;
      }
      const sim::SimTime delay = downlink_delay(mh, data_bytes(copy));
      sim_.after(dom, delay,
                 [this, mh, copy] { mh_receive(mh, copy, false); });
    }
  }
}

void RingNetProtocol::mh_receive(NodeId mh, const proto::DataMsg& msg,
                                 bool retransmission) {
  (void)retransmission;
  MhNode& m = mhs_[mh.index()];
  // Ownership guard: a frame scheduled before the MH migrated to another
  // subtree arrives in the old domain; it missed (resync repairs it).
  // Trivially true without sharding (both sides are context 0).
  if (sim_.current_ctx() != mh_domain_[mh.index()]) return;
  if (!m.attached_) return;  // missed; recovered via ack-driven resend
  if (cell_blacked_out(m.ap_)) {
    // Covers frames (and ARQ resends) already in flight when the window
    // started, so blackout.dropped counts every frame the cell ate.
    sim_.metrics().incr(mid_.blackout_dropped);
    return;
  }
  if (!config_.options.ordered) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(msg.source.v) << 40) ^ msg.lseq;
    if (!m.seen_unordered_.insert(key).second) return;
    deliver_at_mh(m, msg);
    return;
  }
  if (multi_ && !msg.groups.empty()) {
    mh_receive_multi(m, msg);
    return;
  }
  if (!m.mq_.store(msg, sim_.now())) return;
  for (const auto& d : m.mq_.deliverable()) {
    m.mq_.mark_delivered(d.gseq);
    deliver_at_mh(m, d);
  }
}

void RingNetProtocol::mh_receive_multi(MhNode& m, const proto::DataMsg& msg) {
  // Chain-order delivery: a frame is deliverable once its predecessor in
  // the member's chain (prev_chain) has been delivered or settled
  // (coordinate <= multi_tail_). Held frames wait keyed by their own
  // coordinate; coordinates rise along the chain, so draining the smallest
  // held frame while its link is satisfied replays the chain in order.
  const GlobalSeq coord = msg.gseq + 1;
  if (coord <= m.multi_tail_) return;  // duplicate (already delivered)
  const auto [held, inserted] = m.multi_held_.emplace(coord, msg);
  if (!inserted) {
    // Same coordinate already held. A resend after the BR spliced an
    // unrecoverable predecessor out of the chain carries a repaired
    // (lower) link; keeping the stale held link would wait forever on a
    // frame that can no longer arrive. Merge the lower link and re-drain;
    // a byte-identical duplicate merges to a no-op and drains nothing.
    if (msg.prev_chain >= held->second.prev_chain) return;  // duplicate
    held->second.prev_chain = msg.prev_chain;
  }
  while (!m.multi_held_.empty()) {
    auto it = m.multi_held_.begin();
    if (it->second.prev_chain > m.multi_tail_) break;  // link missing
    m.multi_tail_ = it->first;
    deliver_at_mh(m, it->second);
    m.multi_held_.erase(it);
  }
}

void RingNetProtocol::deliver_at_mh(MhNode& node, const proto::DataMsg& msg) {
  ++node.delivered_;
  node.last_delivery_ = sim_.now();
  sim_.metrics().incr(mid_.mh_delivered);
  sim_.trace().record(sim::TraceKind::Deliver, sim_.now(), node.id_, msg.gseq);
  if (migrate_) {
    // The submit stamp rides the message, so cross-domain deliveries never
    // read another domain's (live) submit log.
    lat_hists_[sim_.current_ctx()].record(
        static_cast<std::uint64_t>((sim_.now() - msg.submit_at).us));
  } else if (msg.source.index() < sources_.size()) {
    const auto at = sources_[msg.source.index()].submit_log.get(msg.lseq);
    if (at) {
      lat_hists_[0].record(
          static_cast<std::uint64_t>((sim_.now() - *at).us));
    }
  }
  if (config_.record_spans) record_span(msg);
  if (config_.record_deliveries && config_.options.ordered) {
    GroupId gid = msg.gid;
    if (multi_ && !msg.groups.empty()) {
      // Credit the delivery to the smallest destination group this member
      // belongs to — deterministic, so serial and sharded runs agree.
      const proto::GroupSet& mine = mh_groups_[node.id_.index()];
      for (GroupId g : msg.groups) {
        if (mine.contains(g)) {
          gid = g;
          break;
        }
      }
    }
    deliveries_.record(node.id_, msg.gseq, msg.source, msg.lseq, gid);
  }
}

stats::Histogram RingNetProtocol::lat_hist() const {
  stats::Histogram merged;
  for (const auto& h : lat_hists_) merged.merge_from(h);
  return merged;
}

obs::SpanBreakdown RingNetProtocol::span_breakdown() const {
  obs::SpanBreakdown merged;
  for (const auto& s : span_breakdowns_) merged.merge_from(s);
  return merged;
}

void RingNetProtocol::record_span(const proto::DataMsg& msg) {
  // Every stage stamp must be monotone from the previous one; a stage the
  // message never passed (e.g. no assignment in the unordered variant)
  // leaves its stamp at zero and disqualifies the whole span rather than
  // crediting a nonsense duration.
  const sim::SimTime now = sim_.now();
  if (msg.uplink_rx_at < msg.submit_at || msg.assigned_at < msg.uplink_rx_at ||
      msg.relay_rx_at < msg.assigned_at || now < msg.relay_rx_at) {
    return;
  }
  obs::SpanBreakdown& sb = span_breakdowns_[sim_.current_ctx()];
  sb.record(obs::SpanStage::Submit,
            static_cast<std::uint64_t>((msg.uplink_rx_at - msg.submit_at).us));
  sb.record(obs::SpanStage::Assign,
            static_cast<std::uint64_t>((msg.assigned_at - msg.uplink_rx_at).us));
  sb.record(obs::SpanStage::Relay,
            static_cast<std::uint64_t>((msg.relay_rx_at - msg.assigned_at).us));
  sb.record(obs::SpanStage::Deliver,
            static_cast<std::uint64_t>((now - msg.relay_rx_at).us));
  sb.record_total(static_cast<std::uint64_t>((now - msg.submit_at).us));
}

// ---------------------------------------------------------------------------
// Acks, pruning, resynchronization

void RingNetProtocol::spawn_ack_chain(NodeId mh, sim::SimTime delay) {
  MhNode& m = mhs_[mh.index()];
  const std::uint64_t gen = m.ack_gen_;
  sim_.after(mh_domain_[mh.index()], delay,
             [this, mh, gen] { ack_tick(mh, gen); });
}

void RingNetProtocol::ack_tick(NodeId mh, std::uint64_t gen) {
  MhNode& m = mhs_[mh.index()];
  if (gen != m.ack_gen_) return;  // superseded by a migration respawn
  sim_.after(config_.options.ack_period,
             [this, mh, gen] { ack_tick(mh, gen); });
  if (!m.attached_) return;
  if (cell_blacked_out(m.ap_)) return;  // the ack cannot leave the cell
  const NodeId br = ap_br_[m.ap_.index()];
  if (!br.valid() || !brs_[br.index()].alive_) return;
  sim_.metrics().incr(mid_.acks_sent);
  // Multi-group members ack their chain tail instead of the MQ cursor —
  // same coordinate space (a gseq+1 frontier), so the BR-side watermark,
  // floor and pruning math is shared between the modes.
  const GlobalSeq wm = multi_ ? m.multi_tail_ : m.mq_.next_expected();
  const sim::SimTime delay = uplink_delay(mh, kAckBytes);
  sim_.after(delay, [this, br, mh, wm] { br_receive_ack(br, mh, wm); });
}

void RingNetProtocol::br_receive_ack(NodeId br, NodeId mh,
                                     GlobalSeq next_expected) {
  BrNode& b = brs_[br.index()];
  if (!b.alive_) return;
  if (member_br_[mh.index()] != br) return;  // moved away meanwhile
  if (next_expected > member_wm_[mh.index()]) {
    member_wm_[mh.index()] = next_expected;
  }
  mark_acked(b);
  if (multi_) {
    br_receive_ack_multi(br, mh, next_expected);
    return;
  }

  // Resynchronize the member from the MQ. Anything older than the MQ's
  // ValidFront is unrecoverable from here: tell the member to skip the gap.
  const GlobalSeq vf = b.mq_.valid_front();
  GlobalSeq cursor = next_expected;
  if (cursor < vf) {
    const GlobalSeq skipped = vf - cursor;
    const sim::SimTime delay = downlink_delay(mh, kAckBytes);
    sim_.after(delay, [this, mh, vf, skipped] {
      MhNode& m = mhs_[mh.index()];
      if (sim_.current_ctx() != mh_domain_[mh.index()]) return;
      if (!m.attached_ || m.mq_.next_expected() >= vf) return;
      m.mq_.skip_to(vf);
      sim_.metrics().incr(mid_.gaps_skipped);
      sim_.metrics().incr(mid_.gap_skipped_msgs, skipped);
      sim_.trace().record(sim::TraceKind::GapSkip, sim_.now(), mh, skipped);
      for (const auto& d : m.mq_.deliverable()) {
        m.mq_.mark_delivered(d.gseq);
        deliver_at_mh(m, d);
      }
    });
    cursor = vf;
  }
  // Resend stale entries the member still lacks. The grace window keeps
  // normally-in-flight messages from being duplicated.
  const sim::SimTime grace =
      config_.options.ack_period + config_.options.retx_timeout;
  const GlobalSeq horizon =
      any_assigned_ ? std::min(max_assigned_gseq_, cursor + kResendWindow)
                    : cursor;
  std::size_t resent = 0;
  for (GlobalSeq g = cursor; g <= horizon && any_assigned_; ++g) {
    const auto stored = b.mq_.stored_at(g);
    if (!stored) {
      // Hole in this BR's own MQ (it missed the multicast, e.g. while
      // wrongly ejected from the ring): once the copy is overdue, fetch
      // it from a peer ordering node, which stores it here and
      // re-forwards down-tree.
      const proto::DataMsg* arch = archive_lookup(g);
      if (!arch) continue;
      if (archive_stored_at(g) + grace > sim_.now()) continue;  // in flight
      sim_.metrics().incr(mid_.retransmits);
      const sim::SimTime delay =
          hop_delay(config_.hierarchy.wan,
                    net::link_key(arch->ordering_node, br), data_bytes());
      sim_.after(delay, [this, br, mh, m = *arch] {
        BrNode& bb = brs_[br.index()];
        if (!bb.alive_) return;
        br_receive_ordered(br, m);
        if (!bb.mq_.contains(m.gseq)) {
          // Below this MQ's delivered watermark (the hole was skipped
          // while the BR sat memberless): serve the requesting member
          // directly so it is not wedged behind an unfillable gap.
          const sim::SimTime down = downlink_delay(mh, data_bytes());
          sim_.after(down, [this, mh, m] { mh_receive(mh, m, true); });
        }
      });
      if (++resent >= kResendWindow) break;
      continue;
    }
    if (*stored + grace > sim_.now()) continue;
    const auto msg = b.mq_.fetch(g);
    if (!msg) continue;
    const sim::SimTime delay = downlink_delay(mh, data_bytes());
    sim_.metrics().incr(mid_.retransmits);
    sim_.after(delay, [this, mh, m = *msg] { mh_receive(mh, m, true); });
    if (++resent >= kResendWindow) break;
  }
}

void RingNetProtocol::br_receive_ack_multi(NodeId br, NodeId mh,
                                           GlobalSeq tail) {
  // Resynchronize a multi-group member from its forward log: every unacked
  // frame the BR chained to this member, with its original chain link, so
  // a resend slots into the exact hole the member is waiting on. Entries
  // whose payload has left both the MQ and the archive are spliced out of
  // the chain (the successor inherits their link) and counted as really
  // lost — the multi-mode analogue of the legacy gap skip.
  BrNode& b = brs_[br.index()];
  const sim::SimTime grace =
      config_.options.ack_period + config_.options.retx_timeout;
  // Store-only peer repair for holes in this BR's own MQ (it missed a
  // multicast, e.g. while wrongly ejected from the ring): fetch overdue
  // copies from the archive so the subtree-acked floor keeps advancing.
  // Unlike the legacy path this must NOT re-forward — the subtree's
  // members never had these frames chained, and chaining an old gseq
  // behind newer ones would corrupt their delivery chains.
  if (any_assigned_) {
    const GlobalSeq from = b.mq_.next_expected();
    const GlobalSeq stop =
        std::min(max_assigned_gseq_, from + kResendWindow);
    for (GlobalSeq g = from; g <= stop; ++g) {
      if (b.mq_.stored_at(g)) continue;
      const proto::DataMsg* arch = archive_lookup(g);
      if (!arch || archive_stored_at(g) + grace > sim_.now()) continue;
      sim_.metrics().incr(mid_.retransmits);
      const sim::SimTime d =
          hop_delay(config_.hierarchy.wan,
                    net::link_key(arch->ordering_node, br), data_bytes(*arch));
      sim_.after(d, [this, br, m = *arch] {
        BrNode& bb = brs_[br.index()];
        if (!bb.alive_) return;
        bb.mq_.store(m, sim_.now());
      });
    }
  }
  auto& log = member_fwd_log_[mh.index()];
  while (!log.empty() && log.front().gseq + 1 <= tail) log.pop_front();
  if (log.empty()) return;
  // The front's predecessor is no longer in the log; if the member has not
  // settled it (link above the tail), it was dropped beyond recovery —
  // reconnect the chain at the member's tail so it can advance.
  if (log.front().prev > tail) {
    log.front().prev = tail;
    sim_.metrics().incr(mid_.gaps_skipped);
    sim_.trace().record(sim::TraceKind::GapSkip, sim_.now(), mh, 1);
  }
  std::size_t resent = 0;
  for (auto it = log.begin(); it != log.end() && resent < kResendWindow;) {
    const proto::DataMsg* stored = nullptr;
    auto from_mq = b.mq_.fetch(it->gseq);
    if (from_mq) {
      stored = &*from_mq;
    } else {
      stored = archive_lookup(it->gseq);
    }
    if (!stored) {
      // Payload unrecoverable: splice this frame out of the member's chain.
      // The successor inherits the link — or, when the spliced entry was
      // the newest forward, the chain head rolls back so the next forward
      // is not chained behind a coordinate the member will never settle.
      const FwdEntry dead = *it;
      it = log.erase(it);
      if (it != log.end()) {
        it->prev = dead.prev;
      } else if (member_fwd_tail_[mh.index()] == dead.gseq + 1) {
        member_fwd_tail_[mh.index()] = dead.prev;
      }
      sim_.metrics().incr(mid_.gap_skipped_msgs);
      continue;
    }
    const sim::SimTime at =
        from_mq ? b.mq_.stored_at(it->gseq).value_or(sim::SimTime::zero())
                : archive_stored_at(it->gseq);
    if (at + grace > sim_.now()) {
      ++it;
      continue;  // normally in flight; do not duplicate it
    }
    proto::DataMsg copy = *stored;
    copy.prev_chain = it->prev;
    sim_.metrics().incr(mid_.retransmits);
    const sim::SimTime delay = downlink_delay(mh, data_bytes(copy));
    sim_.after(delay, [this, mh, copy] { mh_receive(mh, copy, true); });
    ++resent;
    ++it;
  }
}

void RingNetProtocol::resync_member_multi(NodeId /*br*/, NodeId mh) {
  // Chain restart after a (re)attach: the new BR knows nothing about the
  // member's old chain, so it restarts one at the member's delivered tail
  // and replays every archived message destined to the member from there
  // up, in gseq order. Stragglers still in flight from the previous BR
  // arrive as duplicates (their coordinate is at or below the tail, or
  // collides with a replayed frame) and are dropped at the member.
  const std::size_t i = mh.index();
  MhNode& m = mhs_[i];
  const GlobalSeq tail = m.multi_tail_;
  member_fwd_tail_[i] = tail;
  member_fwd_log_[i].clear();
  m.multi_held_.clear();  // old-chain holds can never link up again
  if (!any_assigned_) return;
  if (tail < archive_base_) {
    // Messages between the tail and the archive's base fell out of
    // retention while the member was away: they are really lost. The
    // count is in gseqs, an overestimate of destined messages (holes for
    // other groups are counted too) — exact accounting would need the
    // pruned payloads back.
    sim_.metrics().incr(mid_.gaps_skipped);
    sim_.metrics().incr(mid_.gap_skipped_msgs, archive_base_ - tail);
    sim_.trace().record(sim::TraceKind::GapSkip, sim_.now(), mh,
                        archive_base_ - tail);
  }
  const proto::GroupSet& mine = mh_groups_[i];
  const GlobalSeq from = tail > archive_base_ ? tail : archive_base_;
  for (GlobalSeq g = from; g <= max_assigned_gseq_; ++g) {
    const proto::DataMsg* arch = archive_lookup(g);
    if (!arch || !arch->groups.intersects(mine)) continue;
    proto::DataMsg copy = *arch;
    copy.prev_chain = member_fwd_tail_[i];
    member_fwd_tail_[i] = g + 1;
    member_fwd_log_[i].push_back(FwdEntry{g, copy.prev_chain});
    if (!m.attached_ || cell_blacked_out(m.ap_)) continue;
    sim_.metrics().incr(mid_.retransmits);
    const sim::SimTime delay = downlink_delay(mh, data_bytes(copy));
    sim_.after(mh_domain_[i], delay,
               [this, mh, copy] { mh_receive(mh, copy, true); });
  }
}

void RingNetProtocol::mark_acked(BrNode& b) {
  const auto& members = br_members_[b.id_.index()];
  GlobalSeq floor;
  if (members.empty()) {
    if (!b.mq_.max_seen() && b.mq_.empty()) return;
    // Nobody to serve right now — but an MH may re-attach moments after
    // the last one left, and marking everything up to max_seen delivered
    // would poison the MQ against in-flight stragglers (store() rejects
    // gseqs at or below the delivered watermark) and leave the returnee
    // only a gap-skip. Ack only what falls out of the retention window.
    const GlobalSeq newest = b.mq_.max_seen() + 1;
    const GlobalSeq keep =
        static_cast<GlobalSeq>(config_.options.mq_retention);
    floor = newest > keep ? newest - keep : 0;
    // With no member acks there is no repair path for multicast holes
    // (e.g. from a false ejection): jump the cursor over anything that
    // falls out of the retention window, or this BR would wedge the
    // global acked floor — and archive/submit-log pruning — ring-wide.
    if (b.mq_.next_expected() < floor) b.mq_.skip_to(floor);
  } else {
    floor = member_wm_[members.front().index()];
    for (NodeId mh : members) {
      floor = std::min(floor, member_wm_[mh.index()]);
    }
  }
  b.acked_floor_ = std::max(b.acked_floor_, b.mq_.next_expected());
  while (b.acked_floor_ < floor && b.mq_.contains(b.acked_floor_)) {
    b.mq_.mark_delivered(b.acked_floor_);
    ++b.acked_floor_;
  }
  // Under sharding this runs inside a BR domain, where peer floors are not
  // readable; the global fold happens at the next token hop instead.
  if (!migrate_) advance_global_floor();
}

void RingNetProtocol::advance_global_floor() {
  // Theorem 5.1 watermark: everything below the minimum subtree-acked
  // floor over live ordering nodes has been delivered ring-wide, so the
  // archive (and each source's submit log) only retains a bounded window
  // behind it.
  GlobalSeq floor = 0;
  bool any = false;
  for (const auto& br : brs_) {
    if (!br.alive_) continue;
    floor = any ? std::min(floor, br.acked_floor_) : br.acked_floor_;
    any = true;
  }
  if (!any || floor <= global_acked_floor_) return;
  global_acked_floor_ = floor;
  prune_archive();
}

void RingNetProtocol::prune_archive() {
  const GlobalSeq keep =
      static_cast<GlobalSeq>(config_.options.archive_retention);
  const GlobalSeq cut =
      global_acked_floor_ > keep ? global_acked_floor_ - keep : 0;
  std::size_t pruned = 0;
  while (archive_base_ < cut && !assigned_archive_.empty()) {
    release_submit(assigned_archive_.front().msg);
    assigned_archive_.pop_front();
    ++archive_base_;
    ++pruned;
  }
  if (pruned > 0) sim_.metrics().incr(mid_.archive_pruned, pruned);
}

void RingNetProtocol::release_submit(const proto::DataMsg& msg) {
  if (msg.source.index() >= sources_.size()) return;
  SourceState& src = sources_[msg.source.index()];
  if (migrate_) {
    const sim::Domain ctx = sim_.current_ctx();
    if (ctx != gdom() && ctx != mh_domain_[src.mh.index()]) {
      // A foreign domain cannot touch this source's submit log while its
      // owner runs; hand the release to the serialized global context.
      sim_.after(gdom(), sim_.lookahead(),
                 [this, msg] { release_submit(msg); });
      return;
    }
  }
  src.submit_log.release(msg.lseq);
}

const proto::DataMsg* RingNetProtocol::archive_lookup(GlobalSeq gseq) const {
  if (gseq < archive_base_ || gseq - archive_base_ >= assigned_archive_.size())
    return nullptr;
  return &assigned_archive_[static_cast<std::size_t>(gseq - archive_base_)]
              .msg;
}

sim::SimTime RingNetProtocol::archive_stored_at(GlobalSeq gseq) const {
  if (gseq < archive_base_ || gseq - archive_base_ >= assigned_archive_.size())
    return sim::SimTime::zero();
  return assigned_archive_[static_cast<std::size_t>(gseq - archive_base_)]
      .assigned_at;
}

// ---------------------------------------------------------------------------
// Membership (batched update scheme)

void RingNetProtocol::queue_membership_event(NodeId mh, NodeId ap) {
  // Routed through the BR serving the MH's (new or old) cell.
  const NodeId route_ap = ap.valid() ? ap : mhs_[mh.index()].ap_;
  const NodeId br = ap_br_[route_ap.index()];
  if (!br.valid() || !brs_[br.index()].alive_) return;
  const std::uint64_t seq = ++membership_seq_[mh.index()];
  const sim::SimTime delay =
      hop_delay(config_.hierarchy.lan,
                net::link_key(route_ap, ap_ag_[route_ap.index()]), kAckBytes);
  sim_.after(delay, [this, br, mh, ap, seq] {
    BrNode& b = brs_[br.index()];
    if (!b.alive_) return;
    b.pending_membership_.push_back(BrNode::MemberEvent{mh, ap, seq});
  });
}

void RingNetProtocol::membership_flush_tick(NodeId br) {
  sim_.after(config_.options.membership_batch,
             [this, br] { membership_flush_tick(br); });
  BrNode& b = brs_[br.index()];
  if (!b.alive_ || b.pending_membership_.empty()) return;
  std::vector<BrNode::MemberEvent> events;
  events.swap(b.pending_membership_);
  for (const auto& ev : events) {
    b.view_.apply(ev.mh, ev.ap, ev.seq);
    sim_.metrics().incr(mid_.membership_applied);
  }
  if (alive_ring_.size() > 1) {
    const NodeId next = next_alive_br(br);
    sim_.metrics().incr(mid_.membership_relayed);
    const sim::SimTime delay =
        hop_delay(config_.hierarchy.wan, net::link_key(br, next),
                  static_cast<std::uint32_t>(13 + 8 * events.size()));
    // The batch carries the set of nodes it has visited instead of a hop
    // count frozen at flush time: a ring repair or rejoin mid-relay would
    // make a stale count under- or over-visit the ring.
    std::vector<NodeId> visited{br};
    sim_.after(delay, [this, next, events = std::move(events),
                       visited = std::move(visited)] {
      membership_relay(next, visited, events);
    });
  }
}

void RingNetProtocol::membership_relay(
    NodeId br, std::vector<NodeId> visited,
    std::vector<BrNode::MemberEvent> events) {
  BrNode& b = brs_[br.index()];
  if (!b.alive_) return;
  for (const auto& ev : events) {
    b.view_.apply(ev.mh, ev.ap, ev.seq);
    sim_.metrics().incr(mid_.membership_applied);
  }
  visited.push_back(br);
  const NodeId next = next_alive_br(br);
  if (!next.valid() || next == br) return;
  if (std::find(visited.begin(), visited.end(), next) != visited.end()) {
    return;  // the batch has visited the whole (current) ring
  }
  sim_.metrics().incr(mid_.membership_relayed);
  const sim::SimTime delay =
      hop_delay(config_.hierarchy.wan, net::link_key(br, next),
                static_cast<std::uint32_t>(13 + 8 * events.size()));
  sim_.after(delay, [this, next, events = std::move(events),
                     visited = std::move(visited)] {
    membership_relay(next, visited, events);
  });
}

// ---------------------------------------------------------------------------
// Failure detection and token regeneration

void RingNetProtocol::heartbeat_tick(NodeId br) {
  sim_.after(config_.options.heartbeat_period,
             [this, br] { heartbeat_tick(br); });
  BrNode& b = brs_[br.index()];
  if (!b.alive_) return;
  // A live node ejected by a false-positive timeout (heartbeats ride the
  // lossy WAN with no ARQ) notices on its next beat and merges back in.
  if (ring_pos_[br.index()] == kNoRingPos) rejoin_ring(br);
  if (alive_ring_.size() < 2) return;

  // Emit a heartbeat to the ring successor (no ARQ: misses are the signal).
  const NodeId next = next_alive_br(br);
  const bool beat_lost =
      config_.hierarchy.wan.loss_rate > 0.0 &&
      loss_process(net::link_key(br, next), config_.hierarchy.wan)
          .lost(sim_.rng());
  if (!beat_lost) {
    const sim::SimTime delay =
        config_.hierarchy.wan.one_way(kHeartbeatBytes);
    sim_.after(delay, [this, next] {
      BrNode& succ = brs_[next.index()];
      if (succ.alive_ && succ.last_hb_from_prev_ < sim_.now()) {
        succ.last_hb_from_prev_ = sim_.now();
      }
    });
  }

  // Check our own predecessor's liveness.
  const std::size_t pos = ring_pos_[br.index()];
  if (pos == kNoRingPos) return;
  const NodeId prev = alive_ring_[(pos + alive_ring_.size() - 1) %
                                  alive_ring_.size()];
  if (prev == br) return;
  const sim::SimTime budget{config_.options.heartbeat_period.us *
                            config_.options.heartbeat_miss_limit};
  if (sim_.now() - b.last_hb_from_prev_ > budget) {
    handle_br_failure(prev);
  }
}

void RingNetProtocol::handle_br_failure(NodeId dead) {
  const std::size_t pos = ring_pos_[dead.index()];
  if (pos == kNoRingPos) return;
  alive_ring_.erase(alive_ring_.begin() + static_cast<std::ptrdiff_t>(pos));
  rebuild_ring_index();
  sim_.metrics().incr(mid_.ring_repairs);
  sim_.trace().record(sim::TraceKind::RingRepair, sim_.now(), dead,
                      alive_ring_.size());
  for (NodeId br : alive_ring_) {
    brs_[br.index()].last_hb_from_prev_ = sim_.now();
  }
  if (alive_ring_.empty()) return;

  const bool custody_lost =
      token_lost_ || token_custodian_ == dead ||
      (token_custodian_.valid() && !brs_[token_custodian_.index()].alive_);
  if (custody_lost && !regen_pending_) {
    regen_pending_ = true;
    // One repair round-trip before the leader regenerates.
    sim_.after(config_.hierarchy.wan.latency + config_.hierarchy.wan.latency,
               [this] { regenerate_token(); });
  }
}

void RingNetProtocol::rejoin_ring(NodeId br) {
  // Rebuild the surviving ring in original top-ring order with `br` back
  // in its slot, and reset every failure detector so the merge does not
  // immediately re-trigger.
  std::vector<NodeId> merged;
  merged.reserve(alive_ring_.size() + 1);
  for (NodeId id : topo_.top_ring) {
    if (id == br || ring_pos_[id.index()] != kNoRingPos) {
      merged.push_back(id);
    }
  }
  alive_ring_ = std::move(merged);
  rebuild_ring_index();
  for (NodeId id : alive_ring_) {
    brs_[id.index()].last_hb_from_prev_ = sim_.now();
  }
  sim_.metrics().incr(mid_.ring_rejoins);
  sim_.trace().record(sim::TraceKind::RingRepair, sim_.now(), br,
                      alive_ring_.size());
  // Members under the rejoined BR catch up on anything multicast while it
  // was out through the ack-driven resynchronization path.
}

void RingNetProtocol::regenerate_token() {
  regen_pending_ = false;
  if (alive_ring_.empty()) return;
  if (!token_lost_ && token_custodian_.valid() &&
      brs_[token_custodian_.index()].alive_) {
    return;  // the token survived after all
  }
  ++current_epoch_;
  active_token_serial_ = next_token_serial_++;
  token_lost_ = false;

  proto::OrderingToken token(kGroup, current_epoch_);
  token.set_serial(active_token_serial_);
  token.set_next_gseq(any_assigned_ ? max_assigned_gseq_ + 1 : 0);
  if (multi_) {
    // Restore the per-group counters alongside the global one, or the
    // regenerated token would re-issue per-group seqs from zero.
    for (std::size_t gi = 0; gi < group_seq_high_.size(); ++gi) {
      if (group_seq_high_[gi] != 0) {
        token.set_group_seq(group_of_index(gi), group_seq_high_[gi]);
      }
    }
  }
  const NodeId leader = leader_br();
  token_custodian_ = leader;
  sim_.metrics().incr(mid_.token_regenerated);
  sim_.trace().record(sim::TraceKind::TokenRegen, sim_.now(), leader,
                      current_epoch_);
  sim_.after(sim::usecs(1),
             [this, leader, token = std::move(token)]() mutable {
               token_arrive(leader, std::move(token));
             });
}

void RingNetProtocol::crash_node(NodeId id) {
  sim_.trace().record(sim::TraceKind::NodeCrash, sim_.now(), id);
  if (id.tier() == Tier::BR && id.index() < brs_.size()) {
    BrNode& b = brs_[id.index()];
    b.alive_ = false;
    // Messages staged here died unassigned: release their submit-log
    // entries so the pruned-prefix frontier keeps advancing.
    for (const auto& m : b.staging_) release_submit(m);
    b.staging_.clear();
    for (const auto& m : b.wq_.pending()) release_submit(m);
    b.wq_.clear();
    advance_global_floor();  // a dead BR no longer holds the watermark
    return;
  }
  if (id.tier() == Tier::MH && id.index() < mhs_.size()) {
    MhNode& m = mhs_[id.index()];
    if (m.attached_) {
      m.attached_ = false;
      if (ap_occupancy_[m.ap_.index()] > 0) --ap_occupancy_[m.ap_.index()];
    }
  }
}

void RingNetProtocol::eject_br(NodeId br) {
  if (br.tier() != Tier::BR || br.index() >= brs_.size() ||
      !brs_[br.index()].alive_) {
    return;
  }
  handle_br_failure(br);
}

void RingNetProtocol::inject_duplicate_token(NodeId at, std::uint64_t epoch) {
  proto::OrderingToken dup(kGroup, epoch);
  dup.set_serial(next_token_serial_++);
  sim_.after(sim::usecs(1), [this, at, dup = std::move(dup)]() mutable {
    token_arrive(at, std::move(dup));
  });
}

// ---------------------------------------------------------------------------
// Mobility / smooth handoff

void RingNetProtocol::schedule_next_handoff(NodeId mh) {
  if (!mobility_.running_) return;
  const double dt =
      sim_.rng().exponential(config_.mobility.handoff_rate_hz);
  sim_.after(sim::secs(dt), [this, mh] { perform_handoff(mh); });
}

void RingNetProtocol::perform_handoff(NodeId mh) {
  if (!mobility_.running_) return;
  MhNode& m = mhs_[mh.index()];
  if (!m.attached_) {  // mid-handoff already; try again later
    schedule_next_handoff(mh);
    return;
  }
  // Pick the target cell.
  NodeId target = m.ap_;
  while (target == m.ap_) {
    target = topo_.aps[sim_.rng().bounded(topo_.aps.size())];
  }
  // The Poisson process continues once the attach completes.
  const sim::SimTime delay = begin_handoff(mh, target);
  sim_.after(delay, [this, mh] { schedule_next_handoff(mh); });
}

void RingNetProtocol::force_handoff(NodeId mh, NodeId target_ap) {
  MhNode& m = mhs_[mh.index()];
  if (!m.attached_) return;
  begin_handoff(mh, target_ap);
}

void RingNetProtocol::detach_from_cell(MhNode& m) {
  const NodeId old_ap = m.ap_;
  const NodeId old_br = ap_br_[old_ap.index()];
  queue_membership_event(m.id_, NodeId::invalid());
  m.attached_ = false;
  if (ap_occupancy_[old_ap.index()] > 0) --ap_occupancy_[old_ap.index()];
  if (old_br.valid()) {
    auto& members = br_members_[old_br.index()];
    members.erase(std::remove(members.begin(), members.end(), m.id_),
                  members.end());
    if (multi_) {
      auto& slabs = group_members_[old_br.index()];
      for (GroupId g : mh_groups_[m.id_.index()]) {
        auto& slab = slabs[group_index(g)];
        slab.erase(std::remove(slab.begin(), slab.end(), m.id_), slab.end());
      }
      member_fwd_log_[m.id_.index()].clear();  // chain restarts on attach
    }
    member_br_[m.id_.index()] = NodeId::invalid();
    BrNode& b = brs_[old_br.index()];
    if (b.alive_) mark_acked(b);
  }
  if (migrate_) {
    // Re-home the MH to the global context until an attach completes:
    // kill the domain-resident tick chains and respawn the source chains
    // there (submissions keep flowing into the park queue while detached).
    ++m.ack_gen_;
    mh_domain_[m.id_.index()] = gdom();
    for (const std::uint32_t idx : sources_on_mh_[m.id_.index()]) {
      SourceState& src = sources_[idx];
      ++src.gen;
      if (sources_running_ && config_.source.rate_hz > 0.0) {
        sim::SimTime dt = next_submit_interval(src);
        if (dt <= sim::SimTime::zero()) dt = sim::usecs(1);
        spawn_source_chain(idx, dt);
      }
    }
  }
}

sim::SimTime RingNetProtocol::schedule_attach(MhNode& m, NodeId ap,
                                              bool hot) {
  sim::SimTime delay = config_.mobility.detach_gap;
  if (!hot) delay += config_.options.path_build;
  m.attach_pending_ = true;
  const NodeId mh = m.id_;
  sim_.after(delay, [this, mh, ap] { complete_attach(mh, ap); });
  return delay;
}

sim::SimTime RingNetProtocol::begin_handoff(NodeId mh, NodeId target_ap) {
  MhNode& m = mhs_[mh.index()];
  detach_from_cell(m);

  const bool hot = ap_is_hot(target_ap, mh);
  sim_.metrics().incr(mid_.handoff_count);
  sim_.metrics().incr(hot ? mid_.handoff_hot : mid_.handoff_cold);
  sim_.trace().record(sim::TraceKind::Handoff, sim_.now(), mh, hot ? 1 : 0);
  return schedule_attach(m, target_ap, hot);
}

void RingNetProtocol::detach_mh(NodeId mh) {
  MhNode& m = mhs_[mh.index()];
  if (!m.attached_) return;
  detach_from_cell(m);
  sim_.metrics().incr(mid_.churn_leaves);
}

void RingNetProtocol::reattach_mh(NodeId mh, NodeId ap) {
  MhNode& m = mhs_[mh.index()];
  if (m.attached_ || m.attach_pending_) return;
  sim_.metrics().incr(mid_.churn_rejoins);
  schedule_attach(m, ap, ap_is_hot(ap, mh));
}

void RingNetProtocol::join_group(NodeId mh, GroupId g) {
  if (!multi_ || g.v == 0 || group_index(g) >= config_.groups.count) return;
  if (!mh_groups_[mh.index()].insert(g)) return;  // already a member
  const NodeId br = member_br_[mh.index()];
  if (br.valid()) {
    // Messages ordered after this point reach the member through its
    // existing delivery chain; nothing already chained is disturbed.
    group_members_[br.index()][group_index(g)].push_back(mh);
  }
}

void RingNetProtocol::leave_group(NodeId mh, GroupId g) {
  if (!multi_ || g.v == 0 || group_index(g) >= config_.groups.count) return;
  auto& mine = mh_groups_[mh.index()];
  if (!mine.contains(g)) return;
  // Never leave a member groupless: a chain that can no longer grow would
  // pin the member's ack watermark — and with it the ring-wide acked
  // floor — at its current tail forever.
  if (mine.size() <= 1) return;
  proto::GroupSet rest;
  for (GroupId other : mine) {
    if (!(other == g)) rest.insert(other);
  }
  mine = rest;
  const NodeId br = member_br_[mh.index()];
  if (br.valid()) {
    auto& slab = group_members_[br.index()][group_index(g)];
    slab.erase(std::remove(slab.begin(), slab.end(), mh), slab.end());
  }
}

void RingNetProtocol::set_group_rate_boost(GroupId g, double boost) {
  if (g.v == 0 || boost <= 0.0) {
    boost_group_ = GroupId{0};
    group_boost_ = 1.0;
    return;
  }
  boost_group_ = g;
  group_boost_ = boost;
}

void RingNetProtocol::lose_token() {
  if (!config_.options.ordered || token_lost_) return;
  lost_serials_.insert(active_token_serial_);
  token_lost_ = true;
  if (regen_pending_) return;
  regen_pending_ = true;
  // Detection: the ring notices ordering has stalled after the heartbeat
  // miss budget, then one repair round-trip before the leader regenerates.
  const sim::SimTime detect{config_.options.heartbeat_period.us *
                            config_.options.heartbeat_miss_limit};
  sim_.after(detect + config_.hierarchy.wan.latency +
                 config_.hierarchy.wan.latency,
             [this] { regenerate_token(); });
}

void RingNetProtocol::set_cell_blackout(NodeId ap, bool on) {
  std::uint8_t& flag = cell_blackout_[ap.index()];
  if (on && flag == 0) {
    flag = 1;
    ++blackout_count_;
  } else if (!on && flag != 0) {
    flag = 0;
    --blackout_count_;
  }
}

void RingNetProtocol::complete_attach(NodeId mh, NodeId ap) {
  MhNode& m = mhs_[mh.index()];
  m.attach_pending_ = false;
  m.ap_ = ap;
  m.attached_ = true;
  ++ap_occupancy_[ap.index()];
  const NodeId br = ap_br_[ap.index()];
  if (br.valid()) {
    br_members_[br.index()].push_back(mh);
    member_br_[mh.index()] = br;
    if (multi_) {
      auto& slabs = group_members_[br.index()];
      for (GroupId g : mh_groups_[mh.index()]) {
        slabs[group_index(g)].push_back(mh);
      }
      member_wm_[mh.index()] = m.multi_tail_;
      if (config_.options.ordered) resync_member_multi(br, mh);
    } else {
      member_wm_[mh.index()] = m.mq_.next_expected();
    }
    BrNode& b = brs_[br.index()];
    if (b.alive_) mark_acked(b);
  }
  if (migrate_) {
    // Hand the MH to its new subtree's domain and restart the tick chains
    // there (this runs in the serialized global context, so the old
    // domain is quiescent and the re-home is race-free).
    mh_domain_[mh.index()] = br.valid() ? br_domain(br) : gdom();
    ++m.ack_gen_;
    if (config_.options.ordered) {
      spawn_ack_chain(mh, config_.options.ack_period);
    }
    for (const std::uint32_t idx : sources_on_mh_[mh.index()]) {
      SourceState& src = sources_[idx];
      ++src.gen;
      if (sources_running_ && config_.source.rate_hz > 0.0) {
        sim::SimTime dt = next_submit_interval(src);
        if (dt <= sim::SimTime::zero()) dt = sim::usecs(1);
        spawn_source_chain(idx, dt);
      }
    }
  }
  queue_membership_event(mh, ap);

  // Sources parked on this MH flush through the new path.
  for (const std::uint32_t idx : sources_on_mh_[mh.index()]) {
    auto& parked = sources_[idx].parked;
    while (!parked.empty()) {
      uplink_to_br(parked.front(), mh);
      parked.pop_front();
    }
  }
}

bool RingNetProtocol::ap_is_hot(NodeId ap, NodeId exclude_mh) const {
  // Maintained per-cell occupancy counts make this O(1) per candidate cell
  // (it runs on every handoff) instead of a scan over the MH population.
  auto cell_has_member = [&](NodeId cell) {
    std::uint32_t n = ap_occupancy_[cell.index()];
    if (n > 0 && exclude_mh.valid() && exclude_mh.index() < mhs_.size()) {
      const MhNode& ex = mhs_[exclude_mh.index()];
      if (ex.attached_ && ex.ap_ == cell) --n;
    }
    return n > 0;
  };
  if (cell_has_member(ap)) return true;
  if (!config_.options.smooth_handoff) return false;
  // §3 reserved paths: neighbors of any occupied cell hold a reservation.
  // topo_.aps is index-ordered, so the AP's own index is its ring slot.
  const std::size_t pos = ap.index();
  const std::size_t n = topo_.aps.size();
  return cell_has_member(topo_.aps[(pos + 1) % n]) ||
         cell_has_member(topo_.aps[(pos + n - 1) % n]);
}

// ---------------------------------------------------------------------------
// Helpers

NodeId RingNetProtocol::next_alive_br(NodeId from) const {
  if (alive_ring_.empty()) return NodeId::invalid();
  const std::size_t pos = ring_pos_[from.index()];
  if (pos != kNoRingPos) {
    return alive_ring_[(pos + 1) % alive_ring_.size()];
  }
  // `from` was removed: walk the original ring order to the next survivor
  // (top_ring is index-ordered, so `from.index()` is its original slot).
  const std::size_t start = from.index();
  for (std::size_t k = 1; k <= topo_.top_ring.size(); ++k) {
    const NodeId cand = topo_.top_ring[(start + k) % topo_.top_ring.size()];
    if (ring_pos_[cand.index()] != kNoRingPos) return cand;
  }
  return alive_ring_.front();
}

NodeId RingNetProtocol::leader_br() const {
  return alive_ring_.empty() ? NodeId::invalid() : alive_ring_.front();
}

void RingNetProtocol::rebuild_ring_index() {
  ring_pos_.assign(brs_.size(), kNoRingPos);
  for (std::size_t i = 0; i < alive_ring_.size(); ++i) {
    ring_pos_[alive_ring_[i].index()] = i;
  }
}

net::LossProcess& RingNetProtocol::loss_process(
    net::LinkKey link, const net::ChannelModel& model) {
  return loss_[sim_.current_ctx()].find_or_emplace(link, model);
}

sim::SimTime RingNetProtocol::hop_delay(const net::ChannelModel& model,
                                        net::LinkKey link,
                                        std::uint32_t bytes) {
  // Lossless links skip the per-link process entirely. This is RNG-neutral
  // (LossProcess::lost never draws when loss_rate <= 0) — it just avoids
  // the map probe on every hop of a zero-loss configuration.
  if (model.loss_rate <= 0.0) return model.one_way(bytes);
  net::LossProcess& lp = loss_process(link, model);
  sim::SimTime d = model.one_way(bytes);
  const int budget = std::max(1, config_.options.max_retx);
  for (int attempt = 1; attempt < budget && lp.lost(sim_.rng()); ++attempt) {
    sim_.metrics().incr(mid_.retransmits);
    d += config_.options.retx_timeout + model.one_way(bytes);
  }
  return d;
}

sim::SimTime RingNetProtocol::uplink_delay(NodeId mh, std::uint32_t bytes) {
  const MhNode& m = mhs_[mh.index()];
  const NodeId ap = m.ap_;
  const NodeId ag = ap_ag_[ap.index()];
  return hop_delay(config_.hierarchy.wireless, net::link_key(mh, ap), bytes) +
         hop_delay(config_.hierarchy.lan, net::link_key(ap, ag), bytes) +
         hop_delay(config_.hierarchy.lan,
                   net::link_key(ag, ag_br_[ag.index()]), bytes);
}

sim::SimTime RingNetProtocol::downlink_delay(NodeId mh, std::uint32_t bytes) {
  return uplink_delay(mh, bytes);  // symmetric channel models
}

void RingNetProtocol::note_wq_depth(const BrNode& br) {
  sim_.metrics().gauge_max(
      mid_.buf_wq_peak,
      static_cast<double>(br.staging_.size() + br.wq_.size()));
}

void RingNetProtocol::note_submit_log_depth(std::size_t retained) {
  std::size_t cur = submit_log_peak_.load(std::memory_order_relaxed);
  while (retained > cur &&
         !submit_log_peak_.compare_exchange_weak(cur, retained,
                                                 std::memory_order_relaxed)) {
  }
}

}  // namespace ringnet::core
