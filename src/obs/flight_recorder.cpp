#include "obs/flight_recorder.hpp"

#include <cstdio>

namespace ringnet::obs {

const char* fr_event_name(FrEvent kind) {
  switch (kind) {
    case FrEvent::TokenRx:
      return "token_rx";
    case FrEvent::TokenTx:
      return "token_tx";
    case FrEvent::TokenDupDestroyed:
      return "token_dup_destroyed";
    case FrEvent::TokenRetx:
      return "token_retx";
    case FrEvent::TokenDropped:
      return "token_dropped";
    case FrEvent::TokenRegen:
      return "token_regen";
    case FrEvent::ArqResend:
      return "arq_resend";
    case FrEvent::UplinkRetx:
      return "uplink_retx";
    case FrEvent::StallResync:
      return "stall_resync";
    case FrEvent::ChainSplice:
      return "chain_splice";
    case FrEvent::GapSkip:
      return "gap_skip";
    case FrEvent::OrderViolation:
      return "order_violation";
    case FrEvent::Deliver:
      return "deliver";
    case FrEvent::Submit:
      return "submit";
  }
  return "unknown";
}

std::string FlightRecorder::dump_json(const std::string& node,
                                      const std::string& reason) const {
  // Snapshot under the lock, format outside it: formatting is O(ring) and
  // must not stall the protocol thread's record() calls.
  std::vector<FrRecord> events = snapshot();
  std::uint64_t recorded = 0;
  {
    util::MutexLock lock(mu_);
    recorded = total_;
  }
  std::string out;
  out.reserve(64 + events.size() * 64);
  char buf[192];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"flight_recorder\":{\"node\":\"%s\","
                        "\"reason\":\"%s\",\"recorded\":%llu,"
                        "\"retained\":%zu,\"events\":[",
                        node.c_str(), reason.c_str(),
                        static_cast<unsigned long long>(recorded),
                        events.size());
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FrRecord& r = events[i];
    n = std::snprintf(buf, sizeof(buf),
                      "%s{\"ev\":\"%s\",\"t_us\":%lld,\"a\":%llu,"
                      "\"b\":%llu}",
                      i == 0 ? "" : ",", fr_event_name(r.kind),
                      static_cast<long long>(r.t_us),
                      static_cast<unsigned long long>(r.a),
                      static_cast<unsigned long long>(r.b));
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  }
  out += "]}}";
  return out;
}

}  // namespace ringnet::obs
