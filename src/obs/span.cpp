#include "obs/span.hpp"

#include <cstdio>

#include "obs/names.hpp"

namespace ringnet::obs {

const char* stage_name(SpanStage stage) {
  switch (stage) {
    case SpanStage::Submit:
      return names::kStageSubmit;
    case SpanStage::Assign:
      return names::kStageAssign;
    case SpanStage::Relay:
      return names::kStageRelay;
    case SpanStage::Deliver:
      return names::kStageDeliver;
  }
  return "?";
}

namespace {

void append_row(std::string& out, const char* name,
                const stats::Histogram& h) {
  char line[160];
  const int n = std::snprintf(
      line, sizeof(line),
      "  %-8s %10llu %10llu %10llu %10llu %10.1f %10llu\n", name,
      static_cast<unsigned long long>(h.count()),
      static_cast<unsigned long long>(h.p50()),
      static_cast<unsigned long long>(h.p90()),
      static_cast<unsigned long long>(h.p99()), h.mean(),
      static_cast<unsigned long long>(h.max()));
  if (n > 0) out.append(line, static_cast<std::size_t>(n));
}

}  // namespace

std::string SpanBreakdown::table(const std::string& title) const {
  std::string out;
  out += title;
  out += " (per-stage latency, us)\n";
  char head[160];
  const int n = std::snprintf(head, sizeof(head),
                              "  %-8s %10s %10s %10s %10s %10s %10s\n",
                              "stage", "count", "p50", "p90", "p99", "mean",
                              "max");
  if (n > 0) out.append(head, static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < kSpanStages; ++i) {
    append_row(out, stage_name(static_cast<SpanStage>(i)), stages_[i]);
  }
  append_row(out, names::kStageTotal, total_);
  return out;
}

}  // namespace ringnet::obs
