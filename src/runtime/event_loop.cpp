#include "runtime/event_loop.hpp"

#include <utility>
#include <vector>

namespace ringnet::runtime {

NodeLoop::NodeLoop(RuntimeNode& node, Transport& transport,
                   util::Clock& clock, std::int64_t tick_us)
    : node_(node),
      transport_(transport),
      clock_(clock),
      tick_us_(tick_us > 0 ? tick_us : 1000) {}

NodeLoop::~NodeLoop() { stop(); }

void NodeLoop::start() {
  if (started_) return;
  started_ = true;
  proto_thread_ = std::thread([this] { proto_main(); });
  rx_thread_ = std::thread([this] { rx_main(); });
  timer_thread_ = std::thread([this] { timer_main(); });
}

void NodeLoop::stop() {
  if (!started_) return;
  stop_flag_.store(true, std::memory_order_relaxed);
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  timer_cv_.notify_all();
  rx_thread_.join();
  timer_thread_.join();
  proto_thread_.join();
  started_ = false;
}

void NodeLoop::rx_main() {
  // A bounded recv timeout keeps the exit latency low without a wake-up
  // channel into the transport.
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    auto d = transport_.recv(5000);
    if (!d) continue;
    {
      util::MutexLock lock(mu_);
      inbox_.push_back(std::move(*d));
    }
    work_cv_.notify_one();
  }
}

void NodeLoop::timer_main() {
  for (;;) {
    bool fire = false;
    {
      util::MutexLock lock(mu_);
      if (stopping_) return;
      (void)timer_cv_.wait_for_us(mu_, tick_us_);
      if (stopping_) return;
      if (!tick_pending_) {
        tick_pending_ = true;
        fire = true;
      }
    }
    if (fire) work_cv_.notify_one();
  }
}

void NodeLoop::proto_main() {
  node_.on_start(clock_.now_us());
  std::vector<Datagram> batch;
  for (;;) {
    bool tick = false;
    bool exiting = false;
    {
      util::MutexLock lock(mu_);
      while (inbox_.empty() && !tick_pending_ && !stopping_) {
        work_cv_.wait(mu_);
      }
      while (!inbox_.empty()) {
        batch.push_back(std::move(inbox_.front()));
        inbox_.pop_front();
      }
      tick = tick_pending_;
      tick_pending_ = false;
      exiting = stopping_;
    }
    for (const Datagram& d : batch) {
      node_.on_datagram(d, clock_.now_us());
    }
    batch.clear();
    if (tick && !exiting) node_.on_tick(clock_.now_us());
    if (exiting) return;
  }
}

}  // namespace ringnet::runtime
