#include "runtime/orchestrator.hpp"

#include <memory>
#include <unordered_map>
#include <utility>

#include "core/analysis.hpp"
#include "core/groups.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/udp_transport.hpp"
#include "util/clock.hpp"

namespace ringnet::runtime {

namespace {
// Transport addresses never collide with message source ids (plain
// NodeId{i}): sources are labels inside DataMsg, not datagram endpoints.
constexpr NodeId kSupervisorId{0x00FFFFFEu};
}  // namespace

std::uint64_t LoopbackSpec::expected_at(std::size_t m) const {
  // Legacy mode: every MH delivers every message from every source.
  if (!groups.multi()) {
    return static_cast<std::uint64_t>(n_mhs()) * msgs_per_source;
  }
  const proto::GroupSet mine = core::member_groups(m, groups);
  std::uint64_t expect = 0;
  for (std::size_t s = 0; s < n_mhs(); ++s) {
    const NodeId source{static_cast<std::uint32_t>(s)};
    for (std::uint32_t l = 0; l < msgs_per_source; ++l) {
      if (core::dest_groups(source, l, groups).intersects(mine)) ++expect;
    }
  }
  return expect;
}

LoopbackSpec scaled(LoopbackSpec spec) {
  const double f = spec.time_scale;
  if (f == 1.0) return spec;
  spec.opts.scale_timers(f);
  spec.rate_hz /= f;
  spec.tick_us = static_cast<std::int64_t>(spec.tick_us * f);
  spec.boot_timeout_us = static_cast<std::int64_t>(spec.boot_timeout_us * f);
  spec.run_timeout_us = static_cast<std::int64_t>(spec.run_timeout_us * f);
  spec.time_scale = 1.0;
  return spec;
}

LoopbackResult run_loopback(const LoopbackSpec& raw_spec) {
  const LoopbackSpec spec = scaled(raw_spec);
  const std::size_t n_br = spec.num_brs;
  const std::size_t n_ap = spec.n_aps();
  const std::size_t n_mh = spec.n_mhs();

  std::vector<NodeId> brs, aps, mhs, all;
  for (std::size_t i = 0; i < n_br; ++i) {
    brs.push_back(NodeId::make(Tier::BR, static_cast<std::uint32_t>(i)));
  }
  for (std::size_t a = 0; a < n_ap; ++a) {
    aps.push_back(NodeId::make(Tier::AP, static_cast<std::uint32_t>(a)));
  }
  for (std::size_t m = 0; m < n_mh; ++m) {
    mhs.push_back(NodeId::make(Tier::MH, static_cast<std::uint32_t>(m)));
  }
  all = brs;
  all.insert(all.end(), aps.begin(), aps.end());
  all.insert(all.end(), mhs.begin(), mhs.end());

  const auto ap_of_mh = [&](std::size_t m) { return aps[m / spec.mhs_per_ap]; };
  const auto br_of_ap = [&](std::size_t a) { return brs[a / spec.aps_per_br]; };

  // Transports first: every socket is bound (ephemeral ports resolved via
  // getsockname) and the address book complete before any loop starts, so
  // no node ever sends into the void.
  std::vector<std::unique_ptr<Transport>> transports(all.size() + 1);
  InProcNet net;
  auto book = std::make_shared<AddressBook>();
  const auto make_transport = [&](NodeId id) -> std::unique_ptr<Transport> {
    if (spec.use_udp) return std::make_unique<UdpTransport>(id, book);
    return net.attach(id);
  };
  if (!spec.use_udp && spec.drop_hook) net.set_drop_hook(spec.drop_hook);
  for (std::size_t i = 0; i < all.size(); ++i) {
    transports[i] = make_transport(all[i]);
  }
  transports.back() = make_transport(kSupervisorId);
  if (spec.use_udp) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      book->set(all[i], static_cast<UdpTransport&>(*transports[i])
                            .local_endpoint());
    }
    book->set(kSupervisorId,
              static_cast<UdpTransport&>(*transports.back()).local_endpoint());
  }

  std::vector<std::unique_ptr<BrRuntime>> br_nodes;
  std::vector<std::unique_ptr<ApRuntime>> ap_nodes;
  std::vector<std::unique_ptr<MhRuntime>> mh_nodes;
  const std::int64_t period_us =
      spec.rate_hz > 0 ? static_cast<std::int64_t>(1e6 / spec.rate_hz) : 0;

  for (std::size_t i = 0; i < n_br; ++i) {
    BrConfig cfg;
    cfg.self = brs[i];
    cfg.ss = kSupervisorId;
    cfg.ring = brs;
    for (std::size_t a = 0; a < n_ap; ++a) {
      if (br_of_ap(a) != brs[i]) continue;
      cfg.own_aps.push_back(aps[a]);
    }
    for (std::size_t m = 0; m < n_mh; ++m) {
      if (br_of_ap(m / spec.mhs_per_ap) != brs[i]) continue;
      cfg.members.push_back(mhs[m]);
      cfg.member_ap.push_back(ap_of_mh(m));
    }
    cfg.groups = spec.groups;
    cfg.opts = spec.opts;
    br_nodes.push_back(
        std::make_unique<BrRuntime>(std::move(cfg), *transports[i]));
  }
  for (std::size_t a = 0; a < n_ap; ++a) {
    ApConfig cfg;
    cfg.self = aps[a];
    cfg.br = br_of_ap(a);
    cfg.ss = kSupervisorId;
    for (std::size_t m = 0; m < n_mh; ++m) {
      if (ap_of_mh(m) == aps[a]) cfg.attached.push_back(mhs[m]);
    }
    cfg.opts = spec.opts;
    ap_nodes.push_back(
        std::make_unique<ApRuntime>(std::move(cfg), *transports[n_br + a]));
  }
  for (std::size_t m = 0; m < n_mh; ++m) {
    MhConfig cfg;
    cfg.self = mhs[m];
    cfg.source_id = NodeId{static_cast<std::uint32_t>(m)};  // matches the sim
    cfg.ap = ap_of_mh(m);
    cfg.ss = kSupervisorId;
    cfg.rate_hz = spec.rate_hz;
    cfg.msgs_to_send = spec.msgs_per_source;
    cfg.expected_total = spec.expected_at(m);
    cfg.payload_size = spec.payload_size;
    cfg.groups = spec.groups;
    cfg.submit_phase_us =
        n_mh > 0 ? static_cast<std::int64_t>(m) * period_us /
                       static_cast<std::int64_t>(n_mh)
                 : 0;
    cfg.opts = spec.opts;
    mh_nodes.push_back(std::make_unique<MhRuntime>(
        std::move(cfg), *transports[n_br + n_ap + m]));
  }
  SsConfig ss_cfg;
  ss_cfg.self = kSupervisorId;
  ss_cfg.all_nodes = all;
  ss_cfg.expected_ready = all.size();
  // An MH expecting zero deliveries (possible under sparse multi-group
  // workloads) never reports Done; don't wait for it.
  ss_cfg.expected_done = 0;
  for (std::size_t m = 0; m < n_mh; ++m) {
    if (spec.expected_at(m) > 0) ++ss_cfg.expected_done;
  }
  ss_cfg.opts = spec.opts;
  SsRuntime ss(ss_cfg, *transports.back());

  util::WallClock clock;
  std::vector<std::unique_ptr<NodeLoop>> loops;
  for (std::size_t i = 0; i < n_br; ++i) {
    loops.push_back(std::make_unique<NodeLoop>(*br_nodes[i], *transports[i],
                                               clock, spec.tick_us));
  }
  for (std::size_t a = 0; a < n_ap; ++a) {
    loops.push_back(std::make_unique<NodeLoop>(
        *ap_nodes[a], *transports[n_br + a], clock, spec.tick_us));
  }
  for (std::size_t m = 0; m < n_mh; ++m) {
    loops.push_back(std::make_unique<NodeLoop>(
        *mh_nodes[m], *transports[n_br + n_ap + m], clock, spec.tick_us));
  }
  loops.push_back(std::make_unique<NodeLoop>(ss, *transports.back(), clock,
                                             spec.tick_us));

  for (auto& loop : loops) loop->start();

  const std::int64_t boot_deadline = clock.now_us() + spec.boot_timeout_us;
  while (!ss.started() && clock.now_us() < boot_deadline) {
    clock.sleep_us(1000);
  }
  const std::int64_t run_deadline = clock.now_us() + spec.run_timeout_us;
  while (!ss.all_done() && clock.now_us() < run_deadline) {
    clock.sleep_us(1000);
  }
  const bool completed = ss.all_done();
  ss.request_stop();
  // Let a couple of Stop broadcasts land so MHs quiesce before teardown.
  clock.sleep_us(2 * spec.opts.handshake_resend_us);
  for (auto& loop : loops) loop->stop();
  loops.clear();

  // Loops joined: node and transport state is now safe to read.
  LoopbackResult out;
  out.completed = completed;
  out.n_mh = n_mh;
  out.expected_total = spec.expected_total();
  out.log.reset(mhs);
  for (std::size_t m = 0; m < n_mh; ++m) {
    const MhRuntime& node = *mh_nodes[m];
    out.per_mh.push_back(node.deliveries());
    out.delivered_counts.push_back(node.delivered_count());
    for (const DeliveredRec& r : node.deliveries()) {
      out.log.record(mhs[m], r.gseq, r.source, r.lseq);
    }
    out.latencies_us.insert(out.latencies_us.end(),
                            node.latencies_us().begin(),
                            node.latencies_us().end());
    out.counters.merge(node.counters());
  }
  for (const auto& node : br_nodes) out.counters.merge(node->counters());
  for (const auto& node : ap_nodes) out.counters.merge(node->counters());
  if (spec.opts.record_spans) {
    // Join the four stamp sources per delivery. Keys are (source, lseq);
    // scripted loopback workloads keep lseq far below 2^32.
    struct AssignInfo {
      std::int64_t uplink_rx_us = 0;
      std::int64_t assigned_us = 0;
    };
    const auto span_key = [](std::uint32_t src, std::uint64_t lseq) {
      return (static_cast<std::uint64_t>(src) << 32) ^ lseq;
    };
    std::unordered_map<std::uint64_t, AssignInfo> assigns;
    for (const auto& node : br_nodes) {
      for (const SpanAssignRec& r : node->span_assigned()) {
        assigns.emplace(span_key(r.source.v, r.lseq),
                        AssignInfo{r.uplink_rx_us, r.assigned_us});
      }
    }
    std::unordered_map<std::uint64_t, std::int64_t> submits;
    for (std::size_t m = 0; m < n_mh; ++m) {
      for (const auto& [lseq, t] : mh_nodes[m]->span_submits()) {
        submits.emplace(span_key(static_cast<std::uint32_t>(m), lseq), t);
      }
    }
    for (std::size_t m = 0; m < n_mh; ++m) {
      const MhRuntime& node = *mh_nodes[m];
      const auto& relay =
          br_nodes[(m / spec.mhs_per_ap) / spec.aps_per_br]->span_relay_rx_us();
      const auto& recs = node.deliveries();
      const auto& times = node.deliver_times_us();
      for (std::size_t i = 0; i < recs.size() && i < times.size(); ++i) {
        const DeliveredRec& r = recs[i];
        const auto s_it = submits.find(span_key(r.source.v, r.lseq));
        const auto a_it = assigns.find(span_key(r.source.v, r.lseq));
        const auto rl_it = relay.find(r.gseq);
        if (s_it == submits.end() || a_it == assigns.end() ||
            rl_it == relay.end()) {
          continue;
        }
        const std::int64_t submit = s_it->second;
        const AssignInfo& a = a_it->second;
        const std::int64_t relay_rx = rl_it->second;
        const std::int64_t deliver = times[i];
        // Stamps must cascade monotonically; a message whose stamps were
        // perturbed by retransmission edge cases is skipped, not clamped.
        if (a.uplink_rx_us < submit || a.assigned_us < a.uplink_rx_us ||
            relay_rx < a.assigned_us || deliver < relay_rx) {
          continue;
        }
        out.spans.record(obs::SpanStage::Submit,
                         static_cast<std::uint64_t>(a.uplink_rx_us - submit));
        out.spans.record(
            obs::SpanStage::Assign,
            static_cast<std::uint64_t>(a.assigned_us - a.uplink_rx_us));
        out.spans.record(
            obs::SpanStage::Relay,
            static_cast<std::uint64_t>(relay_rx - a.assigned_us));
        out.spans.record(obs::SpanStage::Deliver,
                         static_cast<std::uint64_t>(deliver - relay_rx));
        out.spans.record_total(static_cast<std::uint64_t>(deliver - submit));
      }
    }
  }
  for (const auto& tr : transports) {
    out.frames_sent += tr->sent();
    out.frames_received += tr->received();
    out.frames_malformed += tr->dropped_malformed();
    out.send_failures += tr->send_failures();
  }
  out.order_violation = spec.groups.multi()
                            ? core::check_pairwise_order(out.log)
                            : out.log.check_total_order();
  return out;
}

}  // namespace ringnet::runtime
