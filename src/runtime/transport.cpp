#include "runtime/transport.hpp"

namespace ringnet::runtime {

namespace {

constexpr std::uint32_t kMagic = 0x31474E52u;  // "RNG1" little-endian

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

std::vector<std::uint8_t> frame(NodeId src, FrameKind kind,
                                const std::vector<std::uint8_t>& payload,
                                NodeId relay) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(kind));
  put_u32(out, src.v);
  put_u32(out, relay.v);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, fnv1a(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Datagram> unframe(const std::uint8_t* data, std::size_t size) {
  if (size < kFrameHeaderBytes || size > kMaxDatagramBytes) {
    return std::nullopt;
  }
  if (get_u32(data) != kMagic) return std::nullopt;
  const std::uint8_t kind = data[4];
  if (kind > static_cast<std::uint8_t>(FrameKind::Control)) {
    return std::nullopt;
  }
  const std::uint32_t len = get_u32(data + 13);
  if (size - kFrameHeaderBytes != len) return std::nullopt;
  if (fnv1a(data + kFrameHeaderBytes, len) != get_u32(data + 17)) {
    return std::nullopt;
  }
  Datagram d;
  d.src = NodeId{get_u32(data + 5)};
  d.relay = NodeId{get_u32(data + 9)};
  d.kind = static_cast<FrameKind>(kind);
  d.payload.assign(data + kFrameHeaderBytes, data + kFrameHeaderBytes + len);
  return d;
}

std::vector<std::uint8_t> encode_control(const ControlMsg& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(9);
  out.push_back(static_cast<std::uint8_t>(msg.op));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(msg.arg >> (8 * i)));
  }
  return out;
}

std::optional<ControlMsg> decode_control(const std::uint8_t* data,
                                         std::size_t size) {
  if (size != 9) return std::nullopt;
  const std::uint8_t op = data[0];
  if (op < static_cast<std::uint8_t>(ControlOp::Ready) ||
      op > static_cast<std::uint8_t>(ControlOp::Done)) {
    return std::nullopt;
  }
  ControlMsg m;
  m.op = static_cast<ControlOp>(op);
  m.arg = 0;
  for (int i = 0; i < 8; ++i) {
    m.arg |= static_cast<std::uint64_t>(data[1 + i]) << (8 * i);
  }
  return m;
}

}  // namespace ringnet::runtime
