#include "runtime/node.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "core/groups.hpp"
#include "obs/names.hpp"

namespace ringnet::runtime {

namespace names = obs::names;

namespace {
/// Rebuild the plain counter struct from a role's atomic registry. Safe
/// live (relaxed reads) as well as post-stop.
RuntimeCounters read_counters(const obs::Metrics& m,
                              const RuntimeMetricIds& id) {
  RuntimeCounters c;
  c.tokens_held = m.counter(id.tokens_held);
  c.token_regenerated = m.counter(id.token_regenerated);
  c.token_dup_destroyed = m.counter(id.token_dup_destroyed);
  c.token_retx = m.counter(id.token_retx);
  c.token_dropped = m.counter(id.token_dropped);
  c.retransmits = m.counter(id.retransmits);
  c.floor_advances = m.counter(id.floor_advances);
  c.duplicates = m.counter(id.duplicates);
  c.acks_sent = m.counter(id.acks_sent);
  c.uplink_retx = m.counter(id.uplink_retx);
  c.uplink_dropped = m.counter(id.uplink_dropped);
  c.really_lost = m.counter(id.really_lost);
  c.gaps_skipped = m.counter(id.gaps_skipped);
  c.malformed = m.counter(id.malformed);
  return c;
}
}  // namespace

void RuntimeMetricIds::intern_all(obs::Metrics& m) {
  tokens_held = m.intern(names::kTokenHeld);
  token_regenerated = m.intern(names::kTokenRegenerated);
  token_dup_destroyed = m.intern(names::kTokenDupDestroyed);
  token_retx = m.intern(names::kTokenRetx);
  token_dropped = m.intern(names::kTokenDropped);
  retransmits = m.intern(names::kRetransmits);
  floor_advances = m.intern(names::kFloorAdvances);
  duplicates = m.intern(names::kDuplicates);
  acks_sent = m.intern(names::kAcksSent);
  uplink_retx = m.intern(names::kUplinkRetx);
  uplink_dropped = m.intern(names::kUplinkDropped);
  really_lost = m.intern(names::kReallyLost);
  gaps_skipped = m.intern(names::kGapsSkipped);
  malformed = m.intern(names::kMalformed);
}

namespace {
/// Downlink/peer resend batch per ack: bounds the burst a single stuck
/// member can trigger while still closing multi-message gaps quickly.
constexpr GlobalSeq kResendWindow = 64;
constexpr std::size_t kUplinkPendingCap = 4096;
/// Chain-mode hold queue bound (frames waiting on a predecessor link).
/// Without it a member wedged behind a lost frame accretes every later
/// forward over real UDP; shed frames come back via ack-driven resends.
constexpr std::size_t kHeldChainCap = 4096;
// Consecutive no-progress acks before a member counts as stalled. One
// stalled ack is routinely just pipeline lag (deliveries in flight through
// the AP); resyncing on it floods the cell with duplicates, and the storm
// feeds back into deeper inboxes and more apparent stalls.
constexpr std::uint32_t kStallAckLimit = 4;
}  // namespace

void RuntimeOptions::scale_timers(double f) {
  const auto scale = [f](std::int64_t& us) {
    us = static_cast<std::int64_t>(static_cast<double>(us) * f);
  };
  scale(token_hold_us);
  scale(ack_period_us);
  scale(heartbeat_period_us);
  scale(retx_timeout_us);
  scale(handshake_resend_us);
}

void RuntimeCounters::merge(const RuntimeCounters& o) {
  tokens_held += o.tokens_held;
  token_regenerated += o.token_regenerated;
  token_dup_destroyed += o.token_dup_destroyed;
  token_retx += o.token_retx;
  token_dropped += o.token_dropped;
  retransmits += o.retransmits;
  floor_advances += o.floor_advances;
  duplicates += o.duplicates;
  acks_sent += o.acks_sent;
  uplink_retx += o.uplink_retx;
  uplink_dropped += o.uplink_dropped;
  really_lost += o.really_lost;
  gaps_skipped += o.gaps_skipped;
  malformed += o.malformed;
}

// ---------------------------------------------------------------------------
// BrRuntime

BrRuntime::BrRuntime(BrConfig cfg, Transport& tr)
    : cfg_(std::move(cfg)), tr_(tr) {
  mid_.intern_all(metrics_);
  for (std::size_t i = 0; i < cfg_.members.size(); ++i) {
    Member m;
    m.ap = cfg_.member_ap[i];
    if (multi()) {
      m.groups = core::member_groups(cfg_.members[i].index(), cfg_.groups);
    }
    members_[cfg_.members[i].v] = std::move(m);
  }
}

RuntimeCounters BrRuntime::counters() const {
  return read_counters(metrics_, mid_);
}

NodeId BrRuntime::next_br() const {
  for (std::size_t i = 0; i < cfg_.ring.size(); ++i) {
    if (cfg_.ring[i] == cfg_.self) {
      return cfg_.ring[(i + 1) % cfg_.ring.size()];
    }
  }
  return cfg_.self;
}

void BrRuntime::on_start(std::int64_t now_us) {
  last_token_seen_us_ = now_us;
  next_hb_us_ = now_us + cfg_.opts.heartbeat_period_us;
  next_ready_us_ = now_us + cfg_.opts.handshake_resend_us;
  tr_.send_control(cfg_.ss, ControlMsg{ControlOp::Ready, 0});
  if (leader()) {
    // The leader seeds the first token; peer sockets are already bound (the
    // orchestrator binds every transport before starting any loop), so the
    // forward ARQ covers peers whose loops lag behind.
    proto::OrderingToken t(kRuntimeGroup, epoch_);
    t.set_serial(1);
    last_rx_key_ = TokenKey{t.epoch(), t.serial(), t.rotation(), true};
    accept_token(std::move(t), now_us);
  }
}

void BrRuntime::on_datagram(const Datagram& d, std::int64_t now_us) {
  if (d.kind == FrameKind::Control) {
    const auto ctl = decode_control(d.payload.data(), d.payload.size());
    if (!ctl) {
      metrics_.incr(mid_.malformed);
      return;
    }
    if (ctl->op == ControlOp::Start) start_seen_ = true;
    if (ctl->op == ControlOp::Stop) {
      stop_seen_.store(true, std::memory_order_release);
    }
    return;
  }
  handle_proto(d, now_us);
}

void BrRuntime::handle_proto(const Datagram& d, std::int64_t now_us) {
  auto msg = proto::decode(d.payload.data(), d.payload.size());
  if (!msg) {
    metrics_.incr(mid_.malformed);
    return;
  }
  switch (msg->type()) {
    case proto::MsgType::Data: {
      const proto::DataMsg& dm = msg->data();
      if (dm.ordering_node.valid()) {
        store_and_forward_ordered(dm, now_us);
      } else {
        handle_uplink(dm, now_us);
      }
      break;
    }
    case proto::MsgType::Token:
      handle_token(msg->token(), d.src, now_us);
      break;
    case proto::MsgType::TokenAck: {
      const proto::TokenAckMsg& ack = msg->token_ack();
      if (await_.active && ack.serial == await_.serial &&
          ack.rotation == await_.rotation) {
        await_.active = false;
      }
      break;
    }
    case proto::MsgType::DeliveryAck:
      handle_member_ack(msg->ack(), now_us);
      break;
    case proto::MsgType::Membership: {
      const proto::MembershipMsg& mm = msg->membership();
      for (const auto& ev : mm.events) {
        if (!ev.ap.valid()) {
          members_.erase(ev.mh.v);
          continue;
        }
        const bool ours = std::find(cfg_.own_aps.begin(), cfg_.own_aps.end(),
                                    ev.ap) != cfg_.own_aps.end();
        if (!ours) continue;
        Member fresh;
        fresh.ap = ev.ap;
        auto [it, inserted] =
            members_.try_emplace(ev.mh.v, std::move(fresh));
        if (!inserted) {
          it->second.ap = ev.ap;  // handoff: keep the watermark
        } else if (multi()) {
          it->second.groups =
              core::member_groups(ev.mh.index(), cfg_.groups);
        }
      }
      if (d.src.tier() == Tier::AP) {
        for (NodeId peer : cfg_.ring) {
          if (peer != cfg_.self) tr_.send_msg(peer, proto::Message(mm));
        }
      }
      break;
    }
    case proto::MsgType::Heartbeat:
      break;
  }
}

void BrRuntime::handle_uplink(const proto::DataMsg& msg, std::int64_t now_us) {
  SourceIn& si = uplink_[msg.source.v];
  if (msg.lseq < si.next_expected) {
    metrics_.incr(mid_.duplicates);
    ack_uplink(msg.source, si);
    return;
  }
  // Span stamp: first reception of each uplink. The stamp rides the sim-only
  // (non-serialized) DataMsg field through staging_/pending until assignment,
  // where it lands in span_assigned_.
  const bool spans = cfg_.opts.record_spans;
  if (msg.lseq == si.next_expected) {
    staging_.push_back(msg);
    if (spans) staging_.back().uplink_rx_at.us = now_us;
    ++si.next_expected;
    auto it = si.pending.find(si.next_expected);
    while (it != si.pending.end()) {
      staging_.push_back(std::move(it->second));
      si.pending.erase(it);
      ++si.next_expected;
      it = si.pending.find(si.next_expected);
    }
    ack_uplink(msg.source, si);
    return;
  }
  if (si.pending.size() >= kUplinkPendingCap) return;  // source ARQ re-offers
  const auto [it, inserted] = si.pending.emplace(msg.lseq, msg);
  if (!inserted) {
    metrics_.incr(mid_.duplicates);
  } else if (spans) {
    it->second.uplink_rx_at.us = now_us;
  }
}

void BrRuntime::ack_uplink(NodeId source, const SourceIn& si) {
  // Multi-group mode only: a source need not be a member of its messages'
  // destination groups, so seeing its own submission come back ordered (the
  // legacy uplink-ARQ exit) is no longer guaranteed. Ack the contiguously
  // accepted prefix instead; duplicates re-trigger it, covering a lost ack.
  if (!multi()) return;
  const auto it = members_.find(NodeId::make(Tier::MH, source.index()).v);
  if (it == members_.end()) return;
  tr_.send_msg(it->second.ap,
               proto::Message(proto::DeliveryAckMsg{
                   kRuntimeGroup, NodeId::make(Tier::MH, source.index()),
                   si.next_expected}),
               NodeId::make(Tier::MH, source.index()));
}

void BrRuntime::store_and_forward_ordered(const proto::DataMsg& msg,
                                          std::int64_t now_us) {
  // Fast epoch fencing: an ordered message from a newer epoch proves a
  // regeneration happened, so any older token still circulating must be
  // destroyed on sight even before the new token reaches us.
  epoch_ = std::max(epoch_, msg.epoch);
  // Liveness witness: a current-epoch assignment can only come from the
  // live token, so the regeneration watchdog must not fire merely because
  // the token itself is crawling behind storm-deep inboxes.
  if (msg.epoch == epoch_) last_token_seen_us_ = now_us;
  if (!mq_.insert(msg.gseq, msg)) {
    metrics_.incr(mid_.duplicates);
    return;
  }
  // Span stamp: first ordered arrival of this gseq at the relay endpoint
  // for this BR's subtree (emplace keeps the earliest arrival).
  if (cfg_.opts.record_spans) span_relay_rx_us_.emplace(msg.gseq, now_us);
  if (!any_seen_ || msg.gseq > max_seen_gseq_) {
    max_seen_gseq_ = msg.gseq;
    any_seen_ = true;
  }
  mq_.prune_to(cfg_.opts.mq_retention);
  if (multi()) {
    // Chain links must rise monotonically per member, so chain forwarding
    // walks the MQ in gseq order; an out-of-order peer distribution parks
    // in the MQ until the hole fills (peer pull closes persistent holes).
    if (chain_next_ < mq_.base()) chain_next_ = mq_.base();
    while (const proto::DataMsg* next = mq_.find(chain_next_)) {
      forward_chain(*next);
      ++chain_next_;
    }
    return;
  }
  for (NodeId ap : cfg_.own_aps) tr_.send_msg(ap, proto::Message(msg));
}

void BrRuntime::forward_chain(const proto::DataMsg& msg) {
  // Genuine relay: only members whose memberships intersect the message's
  // destination set get a copy, each stamped with its own chain link and
  // addressed through the serving AP (relay target) instead of the legacy
  // cell broadcast.
  for (auto& [id, m] : members_) {
    if (!m.groups.intersects(msg.groups)) continue;
    proto::DataMsg copy = msg;
    copy.prev_chain = m.fwd_tail;
    m.fwd_tail = msg.gseq + 1;
    m.fwd_log.push_back(FwdEntry{msg.gseq, copy.prev_chain});
    // Backstop for a member that never acks (crashed mid-run): bound the
    // log like the MQ so memory stays flat.
    if (m.fwd_log.size() > cfg_.opts.mq_retention + kResendWindow) {
      m.fwd_log.pop_front();
    }
    tr_.send_msg(m.ap, proto::Message(copy), NodeId{id});
  }
}

void BrRuntime::handle_token(proto::OrderingToken token, NodeId from,
                             std::int64_t now_us) {
  // Ack every token frame, even duplicates: the sender's ARQ keys on
  // (serial, rotation) and a lost ack must not keep it retransmitting.
  tr_.send_msg(from, proto::Message(proto::TokenAckMsg{
                         cfg_.self, token.serial(), token.rotation()}));
  if (token.epoch() < epoch_) {
    metrics_.incr(mid_.token_dup_destroyed);
    fr_.record(obs::FrEvent::TokenDupDestroyed, now_us, token.serial());
    return;
  }
  // Accept only a strictly newer visit of the same lineage: retransmits
  // (same rotation) and stale re-injections (lower rotation) are destroyed.
  if (last_rx_key_.valid && token.epoch() == last_rx_key_.epoch &&
      token.serial() == last_rx_key_.serial &&
      token.rotation() <= last_rx_key_.rotation) {
    metrics_.incr(mid_.token_dup_destroyed);
    fr_.record(obs::FrEvent::TokenDupDestroyed, now_us, token.serial());
    return;
  }
  epoch_ = std::max(epoch_, token.epoch());
  last_rx_key_ =
      TokenKey{token.epoch(), token.serial(), token.rotation(), true};
  accept_token(std::move(token), now_us);
}

void BrRuntime::accept_token(proto::OrderingToken token, std::int64_t now_us) {
  has_token_ = true;
  token_ = std::move(token);
  last_token_seen_us_ = now_us;
  await_.active = false;  // custody is back; any outstanding forward is moot
  metrics_.incr(mid_.tokens_held);
  fr_.record(obs::FrEvent::TokenRx, now_us, token_.serial(),
             token_.rotation());
  if (leader()) token_.bump_rotation();
  token_.prune_entries_of(cfg_.self);
  release_deadline_us_ = now_us + cfg_.opts.token_hold_us;
  assign_staged(now_us);
}

void BrRuntime::assign_staged(std::int64_t now_us) {
  while (!staging_.empty()) {
    proto::DataMsg m = std::move(staging_.front());
    staging_.pop_front();
    m.gseq = token_.append_range(cfg_.self, m.source, m.lseq, m.lseq);
    m.ordering_node = cfg_.self;
    m.epoch = token_.epoch();
    if (multi() && !m.groups.empty()) {
      for (std::size_t i = 0; i < m.groups.size(); ++i) {
        m.group_seqs[i] = token_.bump_group_seq(m.groups[i]);
        group_seq_high_[m.groups[i].v] = m.group_seqs[i] + 1;
      }
    }
    ++assigned_;
    if (cfg_.opts.record_spans) {
      span_assigned_.push_back(SpanAssignRec{m.source, m.lseq, m.gseq,
                                             m.uplink_rx_at.us, now_us});
    }
    store_and_forward_ordered(m, now_us);
    for (NodeId peer : cfg_.ring) {
      if (peer != cfg_.self) tr_.send_msg(peer, proto::Message(m));
    }
  }
}

void BrRuntime::release_token(std::int64_t now_us) {
  if (!has_token_) return;
  auto bytes =
      frame(cfg_.self, FrameKind::Proto, proto::encode(proto::Message(token_)));
  await_ = AwaitedAck{true, token_.serial(), token_.rotation(),
                      std::move(bytes), 0,
                      now_us + cfg_.opts.retx_timeout_us};
  tr_.send(next_br(), await_.frame_bytes);
  fr_.record(obs::FrEvent::TokenTx, now_us, token_.serial(), next_br().v);
  has_token_ = false;
}

void BrRuntime::regenerate_token(std::int64_t now_us) {
  ++epoch_;
  proto::OrderingToken t(kRuntimeGroup, epoch_);
  t.set_serial(next_serial_++);
  t.set_next_gseq(any_seen_ ? max_seen_gseq_ + 1 : 0);
  // Per-group counters survive regeneration from the local high-watermarks
  // (only counters this BR has witnessed; a peer's newer assignment bumps
  // them again on the next pass, same as next_gseq).
  for (const auto& [gid, next] : group_seq_high_) {
    t.set_group_seq(GroupId{gid}, next);
  }
  metrics_.incr(mid_.token_regenerated);
  fr_.record(obs::FrEvent::TokenRegen, now_us, epoch_);  // arms an auto-dump
  last_rx_key_ = TokenKey{t.epoch(), t.serial(), t.rotation(), true};
  accept_token(std::move(t), now_us);
}

void BrRuntime::handle_member_ack(const proto::DeliveryAckMsg& ack,
                                  std::int64_t now_us) {
  if (ack.member.tier() == Tier::BR) {
    // Peer-BR gap repair: a peer lost an ordered frame we assigned and asks
    // for the window starting at its hole. Serve whatever the MQ retains.
    for (GlobalSeq g = ack.watermark;
         g <= max_seen_gseq_ && g < ack.watermark + kResendWindow; ++g) {
      if (!any_seen_) break;
      if (const proto::DataMsg* m = mq_.find(g)) {
        tr_.send_msg(ack.member, proto::Message(*m));
        metrics_.incr(mid_.retransmits);
      }
    }
    return;
  }
  const auto it = members_.find(ack.member.v);
  if (it == members_.end()) return;
  Member& m = it->second;
  if (multi()) {
    handle_chain_ack(m, ack.member, ack.watermark, now_us);
    return;
  }
  m.next_expected = std::max(m.next_expected, ack.watermark);
  // Only a *stalled* member needs resync: kStallAckLimit consecutive acks
  // with no watermark progress while assignments it lacks exist. A merely
  // lagging member (deliveries in flight through the AP) would turn every
  // resend into a duplicate at the MH.
  const bool behind = any_seen_ && m.next_expected <= max_seen_gseq_;
  if (!behind || ack.watermark > m.prev_ack_wm) {
    m.prev_ack_wm = std::max(m.prev_ack_wm, ack.watermark);
    m.stalled_acks = 0;
    return;
  }
  if (++m.stalled_acks < kStallAckLimit) return;
  if (now_us - m.last_resend_us < cfg_.opts.retx_timeout_us) return;
  m.stalled_acks = 0;
  m.last_resend_us = now_us;
  const GlobalSeq want = m.next_expected;
  fr_.record(obs::FrEvent::StallResync, now_us, ack.member.v, want);
  if (want < mq_.base()) {
    // The MQ no longer retains the member's gap: push its floor forward so
    // it gap-skips (those messages are "really lost" for this member).
    tr_.send_msg(m.ap,
                 proto::Message(proto::DeliveryAckMsg{kRuntimeGroup,
                                                      ack.member, mq_.base()}),
                 ack.member);
    metrics_.incr(mid_.floor_advances);
    return;
  }
  bool pull_requested = false;
  std::uint64_t resent = 0;
  for (GlobalSeq g = want; g <= max_seen_gseq_ && g < want + kResendWindow;
       ++g) {
    if (const proto::DataMsg* dm = mq_.find(g)) {
      tr_.send_msg(m.ap, proto::Message(*dm), ack.member);
      metrics_.incr(mid_.retransmits);
      ++resent;
    } else if (!pull_requested &&
               now_us - last_pull_us_ >= cfg_.opts.retx_timeout_us) {
      // Our own MQ has a hole (a lost peer-BR distribution): ask the ring
      // to refill it before the member can make progress. One pull per
      // retx window for the whole BR — many stalled members share a hole.
      pull_requested = true;
      request_pull(g, now_us);
    }
  }
  if (resent > 0) {
    fr_.record(obs::FrEvent::ArqResend, now_us, ack.member.v, resent);
  }
}

void BrRuntime::request_pull(GlobalSeq g, std::int64_t now_us) {
  if (now_us - last_pull_us_ < cfg_.opts.retx_timeout_us) return;
  last_pull_us_ = now_us;
  for (NodeId peer : cfg_.ring) {
    if (peer != cfg_.self) {
      tr_.send_msg(peer, proto::Message(proto::DeliveryAckMsg{
                             kRuntimeGroup, cfg_.self, g}));
    }
  }
}

void BrRuntime::handle_chain_ack(Member& m, NodeId member, GlobalSeq tail,
                                 std::int64_t now_us) {
  m.next_expected = std::max(m.next_expected, tail);
  // Everything at or below the acked chain tail is delivered: prune.
  while (!m.fwd_log.empty() &&
         m.fwd_log.front().gseq + 1 <= m.next_expected) {
    m.fwd_log.pop_front();
  }
  // The surviving head links to a predecessor the member can no longer
  // receive (lost below the floor): rewrite the link so the member
  // gap-skips straight to the survivor.
  if (!m.fwd_log.empty() && m.fwd_log.front().prev > m.next_expected) {
    m.fwd_log.front().prev = m.next_expected;
    metrics_.incr(mid_.gaps_skipped);
    fr_.record(obs::FrEvent::ChainSplice, now_us, member.v,
               m.fwd_log.front().gseq);
  }
  // Stall detection, same discipline as the legacy path: only a member (or
  // a BR-side chain cursor) making no progress across kStallAckLimit acks
  // triggers recovery work.
  const bool behind = !m.fwd_log.empty() ||
                      (any_seen_ && chain_next_ <= max_seen_gseq_);
  if (!behind || tail > m.prev_ack_wm) {
    m.prev_ack_wm = std::max(m.prev_ack_wm, tail);
    m.stalled_acks = 0;
    return;
  }
  if (++m.stalled_acks < kStallAckLimit) return;
  if (now_us - m.last_resend_us < cfg_.opts.retx_timeout_us) return;
  m.stalled_acks = 0;
  m.last_resend_us = now_us;
  if (m.fwd_log.empty()) {
    // The member is current; the BR itself is stuck on an MQ hole at the
    // chain cursor (a lost peer distribution). Pull it from the ring.
    request_pull(chain_next_, now_us);
    return;
  }
  GlobalSeq served = 0;
  for (auto it = m.fwd_log.begin();
       it != m.fwd_log.end() && served < kResendWindow;) {
    if (const proto::DataMsg* dm = mq_.find(it->gseq)) {
      proto::DataMsg copy = *dm;
      copy.prev_chain = it->prev;
      tr_.send_msg(m.ap, proto::Message(copy), member);
      metrics_.incr(mid_.retransmits);
      ++served;
      ++it;
    } else if (it->gseq >= mq_.base()) {
      // MQ hole inside the retained window: refill via peer pull and retry
      // next window — resending past the hole would still honor the chain,
      // but the member can't advance through it anyway.
      request_pull(it->gseq, now_us);
      break;
    } else {
      // Below the MQ floor: unrecoverable for this member. Splice the link
      // out — the successor inherits it, or the chain head rolls back when
      // the spliced entry was the newest one.
      const FwdEntry dead = *it;
      it = m.fwd_log.erase(it);
      if (it != m.fwd_log.end()) {
        it->prev = dead.prev;
      } else if (m.fwd_tail == dead.gseq + 1) {
        m.fwd_tail = dead.prev;
      }
      metrics_.incr(mid_.really_lost);
      fr_.record(obs::FrEvent::ChainSplice, now_us, member.v, dead.gseq);
    }
  }
}

void BrRuntime::on_tick(std::int64_t now_us) {
  if (!start_seen_ && now_us >= next_ready_us_) {
    tr_.send_control(cfg_.ss, ControlMsg{ControlOp::Ready, 0});
    next_ready_us_ = now_us + cfg_.opts.handshake_resend_us;
  }
  if (has_token_) {
    assign_staged(now_us);  // uplink that arrived during the hold window
    if (now_us >= release_deadline_us_) release_token(now_us);
  }
  if (await_.active && now_us >= await_.next_resend_us) {
    if (await_.attempts >= cfg_.opts.max_retx) {
      await_.active = false;
      metrics_.incr(mid_.token_dropped);  // leader watchdog regenerates
      fr_.record(obs::FrEvent::TokenDropped, now_us, await_.serial);
    } else {
      ++await_.attempts;
      metrics_.incr(mid_.token_retx);
      fr_.record(obs::FrEvent::TokenRetx, now_us, await_.serial,
                 static_cast<std::uint64_t>(await_.attempts));
      tr_.send(next_br(), await_.frame_bytes);
      await_.next_resend_us = now_us + cfg_.opts.retx_timeout_us;
    }
  }
  if (now_us >= next_hb_us_) {
    tr_.send_msg(cfg_.ss,
                 proto::Message(proto::HeartbeatMsg{cfg_.self, ++hb_beat_}));
    next_hb_us_ = now_us + cfg_.opts.heartbeat_period_us;
  }
  if (leader() && !has_token_ &&
      now_us - last_token_seen_us_ >= cfg_.opts.token_regen_timeout_us()) {
    regenerate_token(now_us);
  }
}

// ---------------------------------------------------------------------------
// ApRuntime

ApRuntime::ApRuntime(ApConfig cfg, Transport& tr)
    : cfg_(std::move(cfg)), tr_(tr), attached_(cfg_.attached) {
  mid_.intern_all(metrics_);
  for (NodeId mh : attached_) attached_set_.insert(mh.v);
}

RuntimeCounters ApRuntime::counters() const {
  return read_counters(metrics_, mid_);
}

void ApRuntime::on_start(std::int64_t now_us) {
  next_ready_us_ = now_us + cfg_.opts.handshake_resend_us;
  tr_.send_control(cfg_.ss, ControlMsg{ControlOp::Ready, 0});
}

void ApRuntime::on_datagram(const Datagram& d, std::int64_t /*now_us*/) {
  if (d.kind == FrameKind::Control) {
    const auto ctl = decode_control(d.payload.data(), d.payload.size());
    if (!ctl) {
      metrics_.incr(mid_.malformed);
      return;
    }
    if (ctl->op == ControlOp::Start) start_seen_ = true;
    if (ctl->op == ControlOp::Stop) {
      stop_seen_.store(true, std::memory_order_release);
    }
    return;
  }
  if (d.payload.empty()) {
    metrics_.incr(mid_.malformed);
    return;
  }
  // The AP is a store-less relay: it peeks the envelope tag to pick a
  // direction and forwards the payload bytes untouched (no decode/re-encode
  // on the hot path). Only membership deltas are decoded, to track the cell.
  const auto forward = [&](NodeId to) {
    tr_.send(to, frame(cfg_.self, FrameKind::Proto, d.payload));
  };
  const auto type = static_cast<proto::MsgType>(d.payload[0]);
  const bool uplink = d.src.tier() == Tier::MH;
  switch (type) {
    case proto::MsgType::Data:
    case proto::MsgType::DeliveryAck:
      if (uplink) {
        forward(cfg_.br);
      } else if (d.relay.valid()) {
        forward(d.relay);  // targeted retransmission to one member
      } else {
        for (NodeId mh : attached_) forward(mh);
      }
      break;
    case proto::MsgType::Membership: {
      if (!uplink) break;
      const auto msg = proto::decode(d.payload.data(), d.payload.size());
      if (!msg) {
        metrics_.incr(mid_.malformed);
        return;
      }
      for (const auto& ev : msg->membership().events) {
        if (ev.ap == cfg_.self) {
          if (attached_set_.insert(ev.mh.v).second) attached_.push_back(ev.mh);
        } else if (attached_set_.erase(ev.mh.v) != 0) {
          attached_.erase(
              std::remove(attached_.begin(), attached_.end(), ev.mh),
              attached_.end());
        }
      }
      forward(cfg_.br);
      break;
    }
    default:
      break;
  }
}

void ApRuntime::on_tick(std::int64_t now_us) {
  if (!start_seen_ && now_us >= next_ready_us_) {
    tr_.send_control(cfg_.ss, ControlMsg{ControlOp::Ready, 0});
    next_ready_us_ = now_us + cfg_.opts.handshake_resend_us;
  }
}

// ---------------------------------------------------------------------------
// MhRuntime

MhRuntime::MhRuntime(MhConfig cfg, Transport& tr)
    : cfg_(std::move(cfg)), tr_(tr) {
  mid_.intern_all(metrics_);
  period_us_ = cfg_.rate_hz > 0
                   ? static_cast<std::int64_t>(1e6 / cfg_.rate_hz)
                   : 0;
}

RuntimeCounters MhRuntime::counters() const {
  return read_counters(metrics_, mid_);
}

stats::Histogram MhRuntime::latency_hist() const {
  util::MutexLock lock(lat_mu_);
  return live_lat_;
}

void MhRuntime::on_start(std::int64_t now_us) {
  next_ready_us_ = now_us + cfg_.opts.handshake_resend_us;
  next_ack_us_ = now_us + cfg_.opts.ack_period_us;
  // Announce attachment up the tree (redundant with boot membership, but it
  // exercises the membership path end to end on every run).
  tr_.send_msg(cfg_.ap,
               proto::Message(proto::MembershipMsg{
                   kRuntimeGroup, cfg_.self, {{cfg_.self, cfg_.ap}}}));
  tr_.send_control(cfg_.ss, ControlMsg{ControlOp::Ready, 0});
}

void MhRuntime::on_datagram(const Datagram& d, std::int64_t now_us) {
  if (d.kind == FrameKind::Control) {
    const auto ctl = decode_control(d.payload.data(), d.payload.size());
    if (!ctl) {
      metrics_.incr(mid_.malformed);
      return;
    }
    switch (ctl->op) {
      case ControlOp::Start:
        if (!start_seen_) {
          start_seen_ = true;
          next_submit_us_ = now_us + cfg_.submit_phase_us;
        }
        break;
      case ControlOp::Stop:
        stop_seen_.store(true, std::memory_order_release);
        break;
      default:
        break;
    }
    return;
  }
  const auto msg = proto::decode(d.payload.data(), d.payload.size());
  if (!msg) {
    metrics_.incr(mid_.malformed);
    return;
  }
  switch (msg->type()) {
    case proto::MsgType::Data:
      if (msg->data().ordering_node.valid()) {
        if (cfg_.groups.multi()) {
          receive_chain(msg->data(), now_us);
        } else {
          receive_ordered(msg->data(), now_us);
        }
      }
      break;
    case proto::MsgType::DeliveryAck: {
      const auto& ack = msg->ack();
      if (cfg_.groups.multi()) {
        // Chain mode repurposes the downlink ack as the uplink submit-ack
        // (watermark = lseqs accepted by the BR); chain gaps are closed by
        // the BR rewriting the head link, never by floor pushes.
        if (ack.member == cfg_.self) {
          while (!pending_.empty() &&
                 pending_.front().msg.lseq < ack.watermark) {
            pending_.pop_front();
          }
        }
        break;
      }
      if (ack.member == cfg_.self && ack.watermark > next_expected_) {
        gap_skip_to(ack.watermark, now_us);
      }
      break;
    }
    default:
      break;
  }
}

void MhRuntime::receive_ordered(const proto::DataMsg& msg,
                                std::int64_t now_us) {
  if (msg.gseq < next_expected_ || !buf_.insert(msg.gseq, msg)) {
    metrics_.incr(mid_.duplicates);
    return;
  }
  while (const proto::DataMsg* m = buf_.find(next_expected_)) {
    deliver(*m, now_us);
    ++next_expected_;
  }
  buf_.drop_below(next_expected_);
}

void MhRuntime::receive_chain(const proto::DataMsg& msg, std::int64_t now_us) {
  // Chain delivery: each message names its predecessor's chain coordinate
  // (gseq + 1 of the previous message the BR forwarded to this member), so
  // the member delivers exactly the destined subsequence in gseq order with
  // no contiguity assumption over the global sequence.
  const GlobalSeq coord = msg.gseq + 1;
  if (coord <= multi_tail_) {
    metrics_.incr(mid_.duplicates);
    return;
  }
  const auto [held, inserted] = held_.emplace(coord, msg);
  if (!inserted) {
    // A resend after the BR spliced an unrecoverable predecessor out of
    // the chain (handle_chain_ack) carries a repaired (lower) link; keep
    // the stale held link and the member waits forever on a frame that
    // can no longer arrive. Merge the lower link and re-drain.
    if (msg.prev_chain >= held->second.prev_chain) {
      metrics_.incr(mid_.duplicates);
      return;
    }
    held->second.prev_chain = msg.prev_chain;
  }
  while (!held_.empty() && held_.begin()->second.prev_chain <= multi_tail_) {
    deliver(held_.begin()->second, now_us);
    multi_tail_ = held_.begin()->first;
    held_.erase(held_.begin());
  }
  while (held_.size() > kHeldChainCap) {
    // Bound hold-queue memory against a wedged chain over real UDP: shed
    // the farthest-future frame — the BR's ack-driven resend replays it
    // once the member's tail catches up.
    held_.erase(std::prev(held_.end()));
    metrics_.incr(mid_.duplicates);
  }
}

void MhRuntime::deliver(const proto::DataMsg& msg, std::int64_t now_us) {
  // Total-order sanity: delivered gseqs must rise strictly. A violation is
  // a protocol bug, so it also arms a flight-recorder dump.
  if (!log_.empty() && msg.gseq <= log_.back().gseq) {
    fr_.record(obs::FrEvent::OrderViolation, now_us, msg.gseq,
               log_.back().gseq);
  }
  log_.push_back(DeliveredRec{msg.gseq, msg.source, msg.lseq});
  if (cfg_.opts.record_spans) deliver_times_us_.push_back(now_us);
  fr_.record(obs::FrEvent::Deliver, now_us, msg.gseq);
  ++delivered_;
  if (msg.source == cfg_.source_id) {
    if (cfg_.groups.multi()) {
      const auto it = submit_times_us_.find(msg.lseq);
      if (it != submit_times_us_.end()) {
        record_latency(now_us - it->second);
        submit_times_us_.erase(it);
      }
      return;
    }
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->msg.lseq == msg.lseq) {
        record_latency(now_us - it->submitted_us);
        pending_.erase(it);
        break;
      }
    }
  }
}

void MhRuntime::record_latency(std::int64_t lat_us) {
  lat_us_.push_back(lat_us);
  util::MutexLock lock(lat_mu_);
  live_lat_.record(lat_us < 0 ? 0 : static_cast<std::uint64_t>(lat_us));
}

void MhRuntime::gap_skip_to(GlobalSeq floor, std::int64_t now_us) {
  bool in_gap = false;
  std::uint64_t skipped = 0;
  while (next_expected_ < floor) {
    if (const proto::DataMsg* m = buf_.find(next_expected_)) {
      deliver(*m, now_us);
      in_gap = false;
    } else {
      metrics_.incr(mid_.really_lost);
      ++skipped;
      if (!in_gap) {
        metrics_.incr(mid_.gaps_skipped);
        in_gap = true;
      }
    }
    ++next_expected_;
  }
  if (skipped > 0) fr_.record(obs::FrEvent::GapSkip, now_us, floor, skipped);
  buf_.drop_below(next_expected_);
  while (const proto::DataMsg* m = buf_.find(next_expected_)) {
    deliver(*m, now_us);
    ++next_expected_;
  }
  buf_.drop_below(next_expected_);
}

void MhRuntime::submit_one(std::int64_t now_us) {
  proto::DataMsg m;
  m.gid = kRuntimeGroup;
  m.source = cfg_.source_id;
  m.lseq = next_lseq_++;
  m.payload_size = cfg_.payload_size;
  if (cfg_.groups.multi()) {
    m.groups = core::dest_groups(cfg_.source_id, m.lseq, cfg_.groups);
    if (!m.groups.empty()) m.gid = m.groups[0];
    submit_times_us_.emplace(m.lseq, now_us);
  }
  if (cfg_.opts.record_spans) span_submits_.emplace_back(m.lseq, now_us);
  fr_.record(obs::FrEvent::Submit, now_us, m.lseq);
  pending_.push_back(PendingSubmit{m, now_us, now_us, 0});
  tr_.send_msg(cfg_.ap, proto::Message(m));
  next_submit_us_ += period_us_;
}

void MhRuntime::send_ack() {
  const GlobalSeq wm = cfg_.groups.multi() ? multi_tail_ : next_expected_;
  tr_.send_msg(cfg_.ap, proto::Message(proto::DeliveryAckMsg{
                            kRuntimeGroup, cfg_.self, wm}));
  metrics_.incr(mid_.acks_sent);
}

void MhRuntime::on_tick(std::int64_t now_us) {
  if (!start_seen_ && now_us >= next_ready_us_) {
    tr_.send_control(cfg_.ss, ControlMsg{ControlOp::Ready, 0});
    next_ready_us_ = now_us + cfg_.opts.handshake_resend_us;
  }
  if (start_seen_ && !stop_seen()) {
    int burst = 0;
    while (next_lseq_ < cfg_.msgs_to_send && now_us >= next_submit_us_ &&
           burst < 8) {
      submit_one(now_us);
      ++burst;
    }
  }
  // Uplink ARQ: resubmit until the message comes back ordered. The budget
  // only expires at the queue head so later lseqs can't starve earlier ones.
  while (!pending_.empty() && pending_.front().attempts >= cfg_.opts.max_retx &&
         now_us - pending_.front().last_send_us >= cfg_.opts.retx_timeout_us) {
    pending_.pop_front();
    metrics_.incr(mid_.uplink_dropped);
  }
  std::size_t scanned = 0;
  for (auto& p : pending_) {
    if (scanned++ >= 32) break;
    // Exponential backoff: under load the submit->assign->deliver loop can
    // exceed one retx window for every message, and fixed-interval retries
    // then double the uplink traffic without helping anyone.
    const std::int64_t gap = cfg_.opts.retx_timeout_us
                             << std::min(p.attempts, 3);
    if (p.attempts < cfg_.opts.max_retx && now_us - p.last_send_us >= gap) {
      ++p.attempts;
      p.last_send_us = now_us;
      tr_.send_msg(cfg_.ap, proto::Message(p.msg));
      metrics_.incr(mid_.uplink_retx);
      fr_.record(obs::FrEvent::UplinkRetx, now_us, p.msg.lseq,
                 static_cast<std::uint64_t>(p.attempts));
    }
  }
  if (now_us >= next_ack_us_) {
    send_ack();
    next_ack_us_ = now_us + cfg_.opts.ack_period_us;
  }
  if (!done_ && cfg_.expected_total > 0 && delivered_ >= cfg_.expected_total) {
    done_ = true;
    next_done_us_ = now_us;
  }
  if (done_ && !stop_seen() && now_us >= next_done_us_) {
    tr_.send_control(cfg_.ss, ControlMsg{ControlOp::Done, delivered_});
    next_done_us_ = now_us + cfg_.opts.handshake_resend_us;
  }
}

// ---------------------------------------------------------------------------
// SsRuntime

SsRuntime::SsRuntime(SsConfig cfg, Transport& tr)
    : cfg_(std::move(cfg)), tr_(tr) {
  mid_heartbeats_ = metrics_.intern(names::kSsHeartbeats);
}

void SsRuntime::on_start(std::int64_t now_us) {
  next_bcast_us_ = now_us + cfg_.opts.handshake_resend_us;
}

void SsRuntime::broadcast(ControlMsg msg) {
  for (NodeId id : cfg_.all_nodes) tr_.send_control(id, msg);
}

void SsRuntime::on_datagram(const Datagram& d, std::int64_t /*now_us*/) {
  if (d.kind == FrameKind::Control) {
    const auto ctl = decode_control(d.payload.data(), d.payload.size());
    if (!ctl) return;
    switch (ctl->op) {
      case ControlOp::Ready:
        ready_.insert(d.src.v);
        if (!started() && ready_.size() >= cfg_.expected_ready) {
          started_.store(true, std::memory_order_release);
          broadcast(ControlMsg{ControlOp::Start, 0});
        }
        break;
      case ControlOp::Done:
        done_.insert(d.src.v);
        done_count_.store(done_.size(), std::memory_order_release);
        break;
      default:
        break;
    }
    return;
  }
  const auto msg = proto::decode(d.payload.data(), d.payload.size());
  if (msg && msg->type() == proto::MsgType::Heartbeat) {
    last_beat_[d.src.v] = msg->heartbeat().beat;
    metrics_.incr(mid_heartbeats_);
  }
}

void SsRuntime::on_tick(std::int64_t now_us) {
  if (now_us < next_bcast_us_) return;
  next_bcast_us_ = now_us + cfg_.opts.handshake_resend_us;
  if (stop_requested_.load(std::memory_order_acquire)) {
    broadcast(ControlMsg{ControlOp::Stop, 0});
  } else if (started()) {
    broadcast(ControlMsg{ControlOp::Start, 0});  // covers a lost Start
  }
}

}  // namespace ringnet::runtime
