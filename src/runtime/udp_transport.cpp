#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ringnet::runtime {

namespace {

sockaddr_in to_sockaddr(Endpoint ep) {
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.host);
  sa.sin_port = htons(ep.port);
  return sa;
}

}  // namespace

UdpTransport::UdpTransport(NodeId self,
                           std::shared_ptr<const AddressBook> book,
                           std::uint16_t port, std::uint32_t host)
    : Transport(self), book_(std::move(book)), host_(host) {
  rx_buf_.resize(kMaxDatagramBytes + kFrameHeaderBytes + 1);
  open_and_bind(port);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::open_and_bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // A whole deployment shares one loopback: fan-out bursts (BR -> APs ->
  // cells) overflow the default ~200KB buffers, and every lost frame there
  // becomes ARQ traffic that amplifies the burst. Size for the storm.
  const int buf_bytes = 4 << 20;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf_bytes, sizeof(buf_bytes));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf_bytes, sizeof(buf_bytes));
  sockaddr_in sa = to_sockaddr(Endpoint{host_, port});
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("bind(port ") +
                             std::to_string(port) +
                             "): " + std::strerror(err));
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("getsockname(): ") +
                             std::strerror(err));
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  fd_ = fd;
  local_ = Endpoint{host_, ntohs(sa.sin_port)};
}

void UdpTransport::rebind(std::uint16_t port) {
  const std::uint16_t target = port != 0 ? port : local_.port;
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  open_and_bind(target);
}

bool UdpTransport::send(NodeId to, const std::vector<std::uint8_t>& bytes) {
  const auto ep = book_->find(to);
  if (!ep || fd_ < 0) {
    ++send_failures_;
    return false;
  }
  const sockaddr_in sa = to_sockaddr(*ep);
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n != static_cast<ssize_t>(bytes.size())) {
    // EWOULDBLOCK (full socket buffer) is a legitimate UDP drop; anything
    // else is counted the same way — the protocol's ARQ covers both.
    ++send_failures_;
    return false;
  }
  ++sent_;
  return true;
}

std::optional<Datagram> UdpTransport::recv(std::int64_t timeout_us) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms =
      timeout_us <= 0 ? 0 : static_cast<int>((timeout_us + 999) / 1000);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;
  const ssize_t n =
      ::recvfrom(fd_, rx_buf_.data(), rx_buf_.size(), 0, nullptr, nullptr);
  if (n <= 0) return std::nullopt;
  auto d = unframe(rx_buf_.data(), static_cast<std::size_t>(n));
  if (!d) {
    ++dropped_malformed_;
    return std::nullopt;
  }
  ++received_;
  return d;
}

}  // namespace ringnet::runtime
