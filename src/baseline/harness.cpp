#include "baseline/harness.hpp"

#include <algorithm>
#include <optional>

#include "core/analysis.hpp"
#include "obs/names.hpp"
#include "scenario/engine.hpp"

namespace ringnet::baseline {

namespace names = obs::names;

core::ProtocolConfig effective_config(const RunSpec& spec) {
  core::ProtocolConfig cfg = spec.config;
  if (spec.scenario) {
    if (spec.scenario->has_traffic) {
      const scenario::TrafficSpec& t = spec.scenario->traffic;
      cfg.source.pattern = t.pattern;
      cfg.source.rate_hz = t.rate_hz;
      cfg.source.burst_rate_hz = t.burst_rate_hz;
      cfg.source.on_mean = t.on_mean;
      cfg.source.off_mean = t.off_mean;
      cfg.source.diurnal_period = t.diurnal_period;
      cfg.source.sender_skew = t.sender_skew;
    }
    if (spec.scenario->mq_retention) {
      cfg.options.mq_retention = *spec.scenario->mq_retention;
    }
    if (spec.scenario->groups) {
      const scenario::GroupSpec& g = *spec.scenario->groups;
      cfg.groups.count = g.count;
      cfg.groups.groups_per_mh = g.groups_per_mh;
      cfg.groups.dest_groups = g.dest_groups;
    }
  }
  switch (spec.variant) {
    case Variant::RingNet:
      cfg.options.ordered = true;
      break;
    case Variant::RingNetUnordered:
      cfg.options.ordered = false;
      break;
    case Variant::SingleRing:
      // One logical ring spanning every AP: each ring node serves one cell
      // directly, and all control information rotates past all of them.
      cfg.hierarchy.num_brs = std::max<std::size_t>(2, spec.flat_aps);
      cfg.hierarchy.ags_per_br = 1;
      cfg.hierarchy.aps_per_ag = 1;
      cfg.hierarchy.mhs_per_ap = std::max<std::size_t>(1, spec.flat_mhs_per_ap);
      cfg.options.ordered = true;
      break;
    case Variant::Sequencer:
      // Star around one fixed sequencer node.
      cfg.hierarchy.num_brs = 1;
      cfg.hierarchy.ags_per_br = 1;
      cfg.hierarchy.aps_per_ag = std::max<std::size_t>(1, spec.flat_aps);
      cfg.hierarchy.mhs_per_ap = std::max<std::size_t>(1, spec.flat_mhs_per_ap);
      cfg.options.ordered = true;
      break;
  }
  return cfg;
}

sim::SimTime min_interdomain_latency(const core::ProtocolConfig& cfg) {
  // The lookahead bound is the minimum over the per-pair latency matrix of
  // the links that can carry a cross-domain event — every such hop rides a
  // BR<->BR WAN ring link, so the matrix rows are exactly the WanRing
  // links of the resolved topology, each mapped through its channel model.
  // Today every ring link shares cfg.hierarchy.wan, so this reduces to the
  // old static WAN floor (the regression test pins that equivalence); the
  // moment a deployment models per-pair ring latencies the minimum tracks
  // the real tightest pair instead of a hand-maintained constant.
  // Serialization delay is excluded on purpose: it only lengthens a hop,
  // and the bound must be a floor on the earliest possible interaction.
  const topo::Topology topo = topo::build_hierarchy(cfg.hierarchy);
  std::optional<sim::SimTime> floor;
  for (const auto& link : topo.links) {
    if (link.kind != topo::LinkKind::WanRing) continue;
    const sim::SimTime lat = cfg.hierarchy.wan.latency;
    if (!floor || lat < *floor) floor = lat;
  }
  // A one-BR ring has no inter-domain links at all; any positive window
  // is safe, so keep the configured WAN latency for determinism.
  return floor.value_or(cfg.hierarchy.wan.latency);
}

sim::ShardPlan shard_plan(const RunSpec& spec,
                          const core::ProtocolConfig& cfg) {
  sim::ShardPlan plan;
  if (!spec.shard) return plan;
  plan.domains = static_cast<sim::Domain>(cfg.hierarchy.num_brs);
  // Conservative lookahead: the parallel window must stay below the
  // earliest possible cross-domain interaction (see
  // min_interdomain_latency for the bound's derivation).
  plan.lookahead = std::max(min_interdomain_latency(cfg), sim::usecs(1));
  plan.threads = spec.shard_threads;
  return plan;
}

RunResult run_experiment(const RunSpec& spec) {
  return run_experiment(spec, RunHook{});
}

RunResult run_experiment(const RunSpec& spec, const RunHook& hook) {
  const core::ProtocolConfig cfg = effective_config(spec);
  sim::Simulation sim(spec.seed, shard_plan(spec, cfg));
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  std::optional<scenario::Engine> engine;
  if (spec.scenario) {
    engine.emplace(*spec.scenario, proto, sim);
    engine->arm();
  }
  if (hook) hook(proto, sim);

  sim.run_for(spec.warmup + spec.run);
  proto.stop_sources();
  proto.mobility().stop();
  if (engine) engine->stop();
  sim.run_for(spec.drain);

  RunResult out;
  const auto& metrics = sim.metrics();
  const double active = (spec.warmup + spec.run).seconds();
  const std::size_t n_mh = proto.topology().mhs.size();
  if (active > 0.0 && n_mh > 0) {
    out.throughput_per_mh_hz =
        static_cast<double>(metrics.counter(names::kMhDelivered)) /
        static_cast<double>(n_mh) / active;
  }

  if (cfg.record_spans) out.spans = proto.span_breakdown();

  const auto lat = proto.lat_hist();
  out.lat_mean_us = lat.mean();
  out.lat_p50_us = lat.p50();
  out.lat_p90_us = lat.p90();
  out.lat_p99_us = lat.p99();
  out.lat_max_us = lat.max();
  const auto& assign = proto.assign_hist();
  out.assign_p99_us = assign.p99();
  out.assign_max_us = assign.max();

  out.wq_peak = metrics.gauge(names::kBufWqPeak);
  out.mq_peak = metrics.gauge(names::kBufMqPeak);
  out.archive_peak = metrics.gauge(names::kBufArchivePeak);
  out.submitlog_peak = metrics.gauge(names::kBufSubmitlogPeak);
  out.retransmits = metrics.counter(names::kRetransmits);
  out.really_lost = metrics.counter(names::kGapSkippedMsgs);
  out.mh_gaps_skipped = metrics.counter(names::kGapsSkipped);
  out.tokens_held = metrics.counter(names::kTokenHeld);
  out.token_regenerations = metrics.counter(names::kTokenRegenerated);
  out.duplicate_tokens_destroyed = metrics.counter(names::kTokenDupDestroyed);
  out.handoffs = metrics.counter(names::kHandoffCount);
  out.hot_attaches = metrics.counter(names::kHandoffHot);
  out.cold_attaches = metrics.counter(names::kHandoffCold);
  out.churn_leaves = metrics.counter(names::kChurnLeaves);
  out.churn_rejoins = metrics.counter(names::kChurnRejoins);
  out.blackout_drops = metrics.counter(names::kBlackoutDropped);
  out.uplink_lost = metrics.counter(names::kBlackoutUplinkLost);
  out.tokens_dropped = metrics.counter(names::kTokenDropped);

  if (proto.total_sent() > 0) {
    double min_ratio = 1.0;
    for (const auto& mh : proto.mhs()) {
      const double ratio = static_cast<double>(mh.delivered_count()) /
                           static_cast<double>(proto.total_sent());
      min_ratio = std::min(min_ratio, ratio);
    }
    out.min_delivery_ratio = min_ratio;
  }

  if (proto.config().options.ordered && proto.config().record_deliveries) {
    out.order_violation =
        proto.multi_group()
            ? core::check_pairwise_order(proto.deliveries())
            : proto.deliveries().check_total_order();
  }
  out.total_sent = proto.total_sent();
  out.delivered_total = metrics.counter(names::kMhDelivered);
  if (spec.export_deliveries) {
    const auto& per_mh = proto.deliveries().per_mh();
    out.deliveries_offsets.reserve(per_mh.size() + 1);
    out.deliveries_offsets.push_back(0);
    for (const auto& recs : per_mh) {
      out.deliveries_flat.insert(out.deliveries_flat.end(), recs.begin(),
                                 recs.end());
      out.deliveries_offsets.push_back(out.deliveries_flat.size());
    }
  }
  return out;
}

}  // namespace ringnet::baseline
