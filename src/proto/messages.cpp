#include "proto/messages.hpp"

#include <algorithm>

namespace ringnet::proto {

// ---------------------------------------------------------------------------
// OrderingToken

GlobalSeq OrderingToken::append_range(NodeId ordering_node, NodeId source,
                                      LocalSeq first, LocalSeq last) {
  WtsnpEntry e;
  e.ordering_node = ordering_node;
  e.source = source;
  e.first = first;
  e.last = last;
  e.gseq_first = next_gseq_;
  entries_.push_back(e);
  next_gseq_ += last - first + 1;
  return e.gseq_first;
}

void OrderingToken::prune_entries_of(NodeId ordering_node) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [ordering_node](const WtsnpEntry& e) {
                                  return e.ordering_node == ordering_node;
                                }),
                 entries_.end());
}

std::optional<GlobalSeq> OrderingToken::lookup(NodeId source,
                                               LocalSeq lseq) const {
  // Scan newest-first: a re-appended range for the same source supersedes
  // older rows still awaiting their pruning rotation.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->source == source && it->first <= lseq && lseq <= it->last) {
      return it->gseq_first + (lseq - it->first);
    }
  }
  return std::nullopt;
}

std::uint64_t OrderingToken::bump_group_seq(GroupId g) {
  auto it = std::lower_bound(
      group_counters_.begin(), group_counters_.end(), g,
      [](const auto& e, GroupId gid) { return e.first < gid; });
  if (it == group_counters_.end() || it->first != g) {
    it = group_counters_.insert(it, {g, 0});
  }
  return it->second++;
}

std::uint64_t OrderingToken::group_seq(GroupId g) const {
  const auto it = std::lower_bound(
      group_counters_.begin(), group_counters_.end(), g,
      [](const auto& e, GroupId gid) { return e.first < gid; });
  return it != group_counters_.end() && it->first == g ? it->second : 0;
}

void OrderingToken::set_group_seq(GroupId g, std::uint64_t next) {
  auto it = std::lower_bound(
      group_counters_.begin(), group_counters_.end(), g,
      [](const auto& e, GroupId gid) { return e.first < gid; });
  if (it == group_counters_.end() || it->first != g) {
    group_counters_.insert(it, {g, next});
  } else {
    it->second = next;
  }
}

void OrderingToken::serialize(WireWriter& w) const {
  w.u32(gid_.v);
  w.u64(epoch_);
  w.u64(serial_);
  w.u64(rotation_);
  w.u64(next_gseq_);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    w.node(e.ordering_node);
    w.node(e.source);
    w.u64(e.first);
    w.u64(e.last);
    w.u64(e.gseq_first);
  }
  // Trailing per-group counter section, only in multi-group mode: a legacy
  // single-group token keeps the exact pre-group byte layout.
  if (!group_counters_.empty()) {
    w.u32(static_cast<std::uint32_t>(group_counters_.size()));
    for (const auto& [g, next] : group_counters_) {
      w.u32(g.v);
      w.u64(next);
    }
  }
}

std::optional<OrderingToken> OrderingToken::deserialize(WireReader& r) {
  const auto gid = r.u32();
  const auto epoch = r.u64();
  const auto serial = r.u64();
  const auto rotation = r.u64();
  const auto next_gseq = r.u64();
  const auto n = r.u32();
  if (!gid || !epoch || !serial || !rotation || !next_gseq || !n) {
    return std::nullopt;
  }
  OrderingToken t(GroupId{*gid}, *epoch);
  t.serial_ = *serial;
  t.rotation_ = *rotation;
  t.next_gseq_ = *next_gseq;
  t.entries_.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    const auto on = r.node();
    const auto src = r.node();
    const auto first = r.u64();
    const auto last = r.u64();
    const auto gfirst = r.u64();
    if (!on || !src || !first || !last || !gfirst) return std::nullopt;
    WtsnpEntry e;
    e.ordering_node = *on;
    e.source = *src;
    e.first = *first;
    e.last = *last;
    e.gseq_first = *gfirst;
    t.entries_.push_back(e);
  }
  // Optional per-group counter section. Strict: a present section must
  // parse completely (the envelope decoder then requires exhaustion), and
  // gids must be strictly increasing — the canonical order serialize()
  // writes — so a bit-flipped count or shuffled table is rejected instead
  // of silently re-keying counters.
  if (!r.exhausted()) {
    const auto gc = r.u32();
    if (!gc || *gc == 0) return std::nullopt;
    t.group_counters_.reserve(*gc);
    for (std::uint32_t i = 0; i < *gc; ++i) {
      const auto gid = r.u32();
      const auto next = r.u64();
      if (!gid || !next) return std::nullopt;
      if (!t.group_counters_.empty() &&
          t.group_counters_.back().first.v >= *gid) {
        return std::nullopt;
      }
      t.group_counters_.emplace_back(GroupId{*gid}, *next);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// TokenView

namespace {

constexpr std::size_t kTokenHeaderBytes = 4 + 8 + 8 + 8 + 8 + 4;
constexpr std::size_t kWtsnpRowBytes = 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kGroupCounterRowBytes = 4 + 8;

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32(p)) |
         (static_cast<std::uint64_t>(read_u32(p + 4)) << 32);
}

}  // namespace

std::optional<TokenView> TokenView::parse(const std::uint8_t* data,
                                          std::size_t size) {
  if (size < kTokenHeaderBytes) return std::nullopt;
  TokenView v;
  v.gid_ = GroupId{read_u32(data)};
  v.epoch_ = read_u64(data + 4);
  v.serial_ = read_u64(data + 12);
  v.rotation_ = read_u64(data + 20);
  v.next_gseq_ = read_u64(data + 28);
  v.entry_count_ = read_u32(data + 36);
  const std::size_t rows_bytes = v.entry_count_ * kWtsnpRowBytes;
  const std::size_t body = size - kTokenHeaderBytes;
  if (body < rows_bytes) return std::nullopt;
  v.rows_ = data + kTokenHeaderBytes;
  const std::size_t extra = body - rows_bytes;
  if (extra == 0) return v;  // legacy layout: no group-counter section
  // Trailing per-group counter section: u32 count + count fixed rows, and
  // nothing else — any other trailing length is a corrupt frame.
  if (extra < 4) return std::nullopt;
  const std::uint8_t* sect = v.rows_ + rows_bytes;
  const std::uint32_t gc = read_u32(sect);
  if (gc == 0 || extra - 4 != gc * kGroupCounterRowBytes) return std::nullopt;
  v.group_rows_ = sect + 4;
  v.group_counter_count_ = gc;
  return v;
}

std::pair<GroupId, std::uint64_t> TokenView::group_counter(
    std::size_t i) const {
  const std::uint8_t* p = group_rows_ + i * kGroupCounterRowBytes;
  return {GroupId{read_u32(p)}, read_u64(p + 4)};
}

WtsnpEntry TokenView::entry(std::size_t i) const {
  const std::uint8_t* p = rows_ + i * kWtsnpRowBytes;
  WtsnpEntry e;
  e.ordering_node = NodeId{read_u32(p)};
  e.source = NodeId{read_u32(p + 4)};
  e.first = read_u64(p + 8);
  e.last = read_u64(p + 16);
  e.gseq_first = read_u64(p + 24);
  return e;
}

std::optional<GlobalSeq> TokenView::lookup(NodeId source, LocalSeq lseq) const {
  for (std::size_t i = entry_count_; i-- > 0;) {
    const std::uint8_t* p = rows_ + i * kWtsnpRowBytes;
    if (NodeId{read_u32(p + 4)} != source) continue;
    const LocalSeq first = read_u64(p + 8);
    const LocalSeq last = read_u64(p + 16);
    if (first <= lseq && lseq <= last) {
      return read_u64(p + 24) + (lseq - first);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Message envelope

MsgType Message::type() const {
  struct Visitor {
    MsgType operator()(const DataMsg&) const { return MsgType::Data; }
    MsgType operator()(const OrderingToken&) const { return MsgType::Token; }
    MsgType operator()(const DeliveryAckMsg&) const {
      return MsgType::DeliveryAck;
    }
    MsgType operator()(const MembershipMsg&) const {
      return MsgType::Membership;
    }
    MsgType operator()(const HeartbeatMsg&) const { return MsgType::Heartbeat; }
    MsgType operator()(const TokenAckMsg&) const { return MsgType::TokenAck; }
  };
  return std::visit(Visitor{}, body_);
}

namespace {

void encode_body(const DataMsg& m, WireWriter& w) {
  w.u32(m.gid.v);
  w.node(m.source);
  w.u64(m.lseq);
  w.node(m.ordering_node);
  w.u64(m.gseq);
  w.u64(m.epoch);
  w.u32(m.payload_size);
  // Multi-group trailing section; absent (legacy byte layout) when the
  // destination set is empty.
  if (!m.groups.empty()) {
    const std::size_t n = std::min(m.groups.size(), kMaxDataGroups);
    w.u8(static_cast<std::uint8_t>(n));
    for (std::size_t i = 0; i < n; ++i) w.u32(m.groups[i].v);
    for (std::size_t i = 0; i < n; ++i) w.u64(m.group_seqs[i]);
    w.u64(m.prev_chain);
  }
}

std::optional<Message> decode_data(WireReader& r) {
  const auto gid = r.u32();
  const auto source = r.node();
  const auto lseq = r.u64();
  const auto ordering = r.node();
  const auto gseq = r.u64();
  const auto epoch = r.u64();
  const auto payload = r.u32();
  if (!gid || !source || !lseq || !ordering || !gseq || !epoch || !payload) {
    return std::nullopt;
  }
  DataMsg m;
  m.gid = GroupId{*gid};
  m.source = *source;
  m.lseq = *lseq;
  m.ordering_node = *ordering;
  m.gseq = *gseq;
  m.epoch = *epoch;
  m.payload_size = *payload;
  // Optional multi-group section. Strict: a present section must carry
  // 1..kMaxDataGroups strictly-increasing gids (the canonical GroupSet
  // order) plus exactly one seq per gid and the chain link; the envelope
  // decoder then requires exhaustion, so truncations and padded frames
  // both fail instead of mis-parsing.
  if (!r.exhausted()) {
    const auto n = r.u8();
    if (!n || *n == 0 || *n > kMaxDataGroups) return std::nullopt;
    std::uint32_t last = 0;
    for (std::uint8_t i = 0; i < *n; ++i) {
      const auto g = r.u32();
      if (!g) return std::nullopt;
      if (i > 0 && *g <= last) return std::nullopt;
      last = *g;
      m.groups.insert(GroupId{*g});
    }
    for (std::uint8_t i = 0; i < *n; ++i) {
      const auto s = r.u64();
      if (!s) return std::nullopt;
      m.group_seqs[i] = *s;
    }
    const auto prev = r.u64();
    if (!prev) return std::nullopt;
    m.prev_chain = *prev;
  }
  return Message(m);
}

void encode_body(const DeliveryAckMsg& m, WireWriter& w) {
  w.u32(m.gid.v);
  w.node(m.member);
  w.u64(m.watermark);
}

std::optional<Message> decode_ack(WireReader& r) {
  const auto gid = r.u32();
  const auto member = r.node();
  const auto wm = r.u64();
  if (!gid || !member || !wm) return std::nullopt;
  DeliveryAckMsg m;
  m.gid = GroupId{*gid};
  m.member = *member;
  m.watermark = *wm;
  return Message(m);
}

void encode_body(const MembershipMsg& m, WireWriter& w) {
  w.u32(m.gid.v);
  w.node(m.origin);
  w.u32(static_cast<std::uint32_t>(m.events.size()));
  for (const auto& e : m.events) {
    w.node(e.mh);
    w.node(e.ap);
  }
}

std::optional<Message> decode_membership(WireReader& r) {
  const auto gid = r.u32();
  const auto origin = r.node();
  const auto n = r.u32();
  if (!gid || !origin || !n) return std::nullopt;
  MembershipMsg m;
  m.gid = GroupId{*gid};
  m.origin = *origin;
  m.events.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    const auto mh = r.node();
    const auto ap = r.node();
    if (!mh || !ap) return std::nullopt;
    m.events.push_back(MembershipMsg::Event{*mh, *ap});
  }
  return Message(m);
}

void encode_body(const HeartbeatMsg& m, WireWriter& w) {
  w.node(m.from);
  w.u64(m.beat);
}

std::optional<Message> decode_heartbeat(WireReader& r) {
  const auto from = r.node();
  const auto beat = r.u64();
  if (!from || !beat) return std::nullopt;
  HeartbeatMsg m;
  m.from = *from;
  m.beat = *beat;
  return Message(m);
}

void encode_body(const TokenAckMsg& m, WireWriter& w) {
  w.node(m.from);
  w.u64(m.serial);
  w.u64(m.rotation);
}

std::optional<Message> decode_token_ack(WireReader& r) {
  const auto from = r.node();
  const auto serial = r.u64();
  const auto rotation = r.u64();
  if (!from || !serial || !rotation) return std::nullopt;
  TokenAckMsg m;
  m.from = *from;
  m.serial = *serial;
  m.rotation = *rotation;
  return Message(m);
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& msg) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(msg.type()));
  struct Visitor {
    WireWriter& w;
    void operator()(const DataMsg& m) const { encode_body(m, w); }
    void operator()(const OrderingToken& m) const { m.serialize(w); }
    void operator()(const DeliveryAckMsg& m) const { encode_body(m, w); }
    void operator()(const MembershipMsg& m) const { encode_body(m, w); }
    void operator()(const HeartbeatMsg& m) const { encode_body(m, w); }
    void operator()(const TokenAckMsg& m) const { encode_body(m, w); }
  };
  std::visit(Visitor{w}, msg.body());
  return w.take();
}

std::optional<Message> decode(const std::uint8_t* data, std::size_t size) {
  WireReader r(data, size);
  const auto type = r.u8();
  if (!type) return std::nullopt;
  std::optional<Message> out;
  switch (static_cast<MsgType>(*type)) {
    case MsgType::Data:
      out = decode_data(r);
      break;
    case MsgType::Token: {
      auto t = OrderingToken::deserialize(r);
      if (t) out.emplace(std::move(*t));
      break;
    }
    case MsgType::DeliveryAck:
      out = decode_ack(r);
      break;
    case MsgType::Membership:
      out = decode_membership(r);
      break;
    case MsgType::Heartbeat:
      out = decode_heartbeat(r);
      break;
    case MsgType::TokenAck:
      out = decode_token_ack(r);
      break;
    default:
      return std::nullopt;
  }
  if (!out || !r.exhausted()) return std::nullopt;
  return out;
}

std::optional<Message> decode(const std::vector<std::uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}

std::size_t wire_size(const Message& msg) {
  // Envelope tag + body. Data payload bytes ride outside the descriptor.
  std::size_t body = 0;
  struct Visitor {
    std::size_t& body;
    void operator()(const DataMsg& m) const {
      body = 40 + m.payload_size;
      if (!m.groups.empty()) {
        // u8 count + u32 gids + u64 seqs + u64 chain link. Clamped like
        // encode_body so the computed size matches the actual encoding
        // even for an oversized (non-canonical) destination set.
        body += 1 + std::min(m.groups.size(), kMaxDataGroups) * 12 + 8;
      }
    }
    void operator()(const OrderingToken& m) const {
      body = 40 + m.entries().size() * 32;
      if (!m.group_counters().empty()) {
        body += 4 + m.group_counters().size() * 12;
      }
    }
    void operator()(const DeliveryAckMsg&) const { body = 16; }
    void operator()(const MembershipMsg& m) const {
      body = 12 + m.events.size() * 8;
    }
    void operator()(const HeartbeatMsg&) const { body = 12; }
    void operator()(const TokenAckMsg&) const { body = 20; }
  };
  std::visit(Visitor{body}, msg.body());
  return 1 + body;
}

}  // namespace ringnet::proto
