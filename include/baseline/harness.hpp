#pragma once
// Experiment harness: one RunSpec describes a deterministic simulation of a
// protocol variant over a deployment; run_experiment() executes it
// (warmup -> measured run -> source stop -> drain) and distills the
// trace/metrics into a flat RunResult the benches tabulate.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "obs/span.hpp"
#include "scenario/spec.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace ringnet::baseline {

enum class Variant : std::uint8_t {
  RingNet,           // the paper's protocol: hierarchy + token ordering
  RingNetUnordered,  // Remark 3: same hierarchy, no ordering pass
  SingleRing,        // related work [16]: one logical ring over every AP
  Sequencer,         // fixed central sequencer (star)
};

struct RunSpec {
  core::ProtocolConfig config;
  Variant variant = Variant::RingNet;
  // Flat-deployment shape used by the SingleRing / Sequencer baselines.
  std::size_t flat_aps = 8;
  std::size_t flat_mhs_per_ap = 1;
  sim::SimTime warmup = sim::secs(0.5);
  sim::SimTime run = sim::secs(2.0);
  sim::SimTime drain = sim::secs(1.0);
  std::uint64_t seed = 1;
  // Declarative workload: when set, a scenario::Engine drives mobility,
  // churn and faults over the run, and the scenario's traffic section (if
  // any) overrides config.source (see effective_config).
  std::optional<scenario::ScenarioSpec> scenario;
  // Parallel execution. shard == true plans one domain per BR subtree with
  // conservative lookahead equal to the WAN one-way latency floor; then
  // shard_threads == 0 runs the single-heap deterministic oracle over the
  // same domain keys, while shard_threads > 0 runs the domain-sharded
  // parallel engine on that many pool workers. shard == false is the
  // classic single-context simulation.
  bool shard = false;
  std::size_t shard_threads = 0;
  // Copy the per-MH delivery sequences into RunResult::deliveries (memory ~
  // deliveries; meant for short scripted runs used as cross-execution
  // oracles, e.g. the loopback-runtime comparison).
  bool export_deliveries = false;
};

struct RunResult {
  // Delivery volume
  double throughput_per_mh_hz = 0.0;
  double min_delivery_ratio = 1.0;
  // End-to-end latency (submit -> MH delivery), microseconds
  double lat_mean_us = 0.0;
  std::uint64_t lat_p50_us = 0;
  std::uint64_t lat_p90_us = 0;
  std::uint64_t lat_p99_us = 0;
  std::uint64_t lat_max_us = 0;
  // Ordering latency (submit -> gseq assignment), microseconds
  std::uint64_t assign_p99_us = 0;
  std::uint64_t assign_max_us = 0;
  // Buffers
  double wq_peak = 0.0;
  double mq_peak = 0.0;
  double archive_peak = 0.0;    // peer-repair archive high-watermark
  double submitlog_peak = 0.0;  // largest per-source submit-log residency
  // Reliability work
  std::uint64_t retransmits = 0;
  std::uint64_t really_lost = 0;
  std::uint64_t mh_gaps_skipped = 0;
  // Token machinery
  std::uint64_t tokens_held = 0;
  std::uint64_t token_regenerations = 0;
  std::uint64_t duplicate_tokens_destroyed = 0;
  // Mobility
  std::uint64_t handoffs = 0;
  std::uint64_t hot_attaches = 0;
  std::uint64_t cold_attaches = 0;
  // Scenario dynamics
  std::uint64_t churn_leaves = 0;
  std::uint64_t churn_rejoins = 0;
  std::uint64_t blackout_drops = 0;   // recoverable (downlink / in-flight)
  std::uint64_t uplink_lost = 0;      // unrecoverable: dropped pre-ordering
  std::uint64_t tokens_dropped = 0;
  // Correctness. In multi-group runs order_violation holds the pairwise
  // consistency verdict (core::check_pairwise_order); in single-group runs
  // the classic total-order check.
  std::optional<std::string> order_violation;
  // Total deliveries over all MHs (with genuine multicast each message is
  // delivered destination-membership times, not population times, so this
  // is the quantity bench_groups plots against group fan-out).
  std::uint64_t delivered_total = 0;
  // Filled when spec.config.record_spans: per-stage lifecycle latency
  // breakdown (submit/assign/relay/deliver histograms) merged over every
  // execution context.
  obs::SpanBreakdown spans;
  // Filled when spec.export_deliveries: total submissions and each MH's
  // delivery sequence in delivery order (MH-index major).
  std::uint64_t total_sent = 0;
  std::vector<core::DeliveryLog::Rec> deliveries_flat;
  std::vector<std::size_t> deliveries_offsets;  // per-MH [begin, end) bounds

  /// Per-MH slice of deliveries_flat (valid while this result is alive).
  std::pair<const core::DeliveryLog::Rec*, std::size_t> deliveries_of(
      std::size_t mh_index) const {
    const std::size_t b = deliveries_offsets[mh_index];
    const std::size_t e = deliveries_offsets[mh_index + 1];
    return {deliveries_flat.data() + b, e - b};
  }
};

using RunHook =
    std::function<void(core::RingNetProtocol&, sim::Simulation&)>;

/// Resolve the variant into a concrete ProtocolConfig (flat baselines are
/// expressed as degenerate hierarchies; unordered switches the ordering
/// pass off).
core::ProtocolConfig effective_config(const RunSpec& spec);

/// The lookahead floor for domain-sharded execution: the minimum of the
/// per-pair latency matrix over the resolved topology's inter-domain (WAN
/// ring) links. Equals the configured WAN one-way latency on today's
/// uniform deployments; exposed so tests can pin that equivalence.
sim::SimTime min_interdomain_latency(const core::ProtocolConfig& cfg);

/// Execution plan for the spec over its resolved config: one domain per BR
/// with min_interdomain_latency as lookahead when sharding is requested,
/// the classic single-context plan otherwise.
sim::ShardPlan shard_plan(const RunSpec& spec, const core::ProtocolConfig& cfg);

RunResult run_experiment(const RunSpec& spec);
RunResult run_experiment(const RunSpec& spec, const RunHook& hook);

}  // namespace ringnet::baseline
