#pragma once
// Unified metrics registry shared by the deterministic simulation and the
// real-socket runtime. Names are interned once into dense handles; hot
// paths hold a MetricId and every incr/gauge_max is an atomic slot write,
// not a string-keyed tree lookup. Mutation is thread-safe (relaxed
// increments, CAS-max gauges) so parallel shards and runtime threads share
// one registry: additions commute and maxima are order-free, which keeps
// totals identical between the sharded and single-heap sim engines.
//
// intern() is safe for concurrent first-intern: the name map is mutex-
// guarded and slot storage lives in fixed-size chunks published through
// atomic pointers, so a thread incrementing an already-held handle never
// races a thread interning a new name (no deque/vector growth on the read
// path).
//
// Histogram members are sharded (one stats::Histogram per shard per name)
// with merge-on-read. Histogram recording itself is NOT atomic: the
// contract is single-writer-per-shard — the sim routes each execution
// context to its own shard, the runtime records under the node's state
// mutex — and hist() merges are taken after quiescence or under the same
// external synchronization.

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/histogram.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace ringnet::obs {

class Metrics {
 public:
  using MetricId = std::uint32_t;
  using HistId = std::uint32_t;

  /// `hist_shards` fixes the per-histogram shard count (one independent
  /// writer slot each); counters/gauges are atomic and need no shards.
  explicit Metrics(std::size_t hist_shards = 1)
      : hist_shards_(hist_shards == 0 ? 1 : hist_shards) {}
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Idempotent: interning the same name again returns the same handle.
  /// Safe to call concurrently with other intern() calls and with hot-path
  /// mutation through previously returned handles.
  MetricId intern(const std::string& name) {
    util::MutexLock lock(mu_);
    const auto [it, inserted] = ids_.emplace(name, next_id_);
    if (inserted) {
      ensure_chunk(slots_, next_id_);
      ++next_id_;
    }
    return it->second;
  }

  void incr(MetricId id, std::uint64_t delta = 1) {
    slot(id).counter.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t counter(MetricId id) const {
    return slot(id).counter.load(std::memory_order_relaxed);
  }

  /// Record an observation; the gauge keeps the maximum ever seen.
  void gauge_max(MetricId id, double value) {
    std::atomic<double>& g = slot(id).gauge;
    double cur = g.load(std::memory_order_relaxed);
    while (value > cur &&
           !g.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  double gauge(MetricId id) const {
    return slot(id).gauge.load(std::memory_order_relaxed);
  }

  void incr(const std::string& name, std::uint64_t delta = 1) {
    incr(intern(name), delta);
  }
  std::uint64_t counter(const std::string& name) const {
    util::MutexLock lock(mu_);
    const auto it = ids_.find(name);
    if (it == ids_.end()) return 0;
    const MetricId id = it->second;
    return slot(id).counter.load(std::memory_order_relaxed);
  }
  void gauge_max(const std::string& name, double value) {
    gauge_max(intern(name), value);
  }
  double gauge(const std::string& name) const {
    util::MutexLock lock(mu_);
    const auto it = ids_.find(name);
    if (it == ids_.end()) return 0.0;
    const MetricId id = it->second;
    return slot(id).gauge.load(std::memory_order_relaxed);
  }

  /// Visit every (name, counter, gauge) triple. Snapshot-consistent only
  /// after quiescence; live values are relaxed reads.
  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    util::MutexLock lock(mu_);
    for (const auto& [name, id] : ids_) {
      fn(name, slot(id).counter.load(std::memory_order_relaxed),
         slot(id).gauge.load(std::memory_order_relaxed));
    }
  }

  // --- histograms (sharded, merge-on-read) ---

  std::size_t hist_shards() const { return hist_shards_; }

  HistId intern_hist(const std::string& name) {
    util::MutexLock lock(mu_);
    const auto [it, inserted] = hist_ids_.emplace(name, next_hist_id_);
    if (inserted) {
      ensure_chunk(hists_, next_hist_id_, hist_shards_);
      ++next_hist_id_;
    }
    return it->second;
  }

  /// Record into `shard`'s slot for `id`. Single writer per (id, shard):
  /// the caller routes each concurrent writer to its own shard.
  void hist_record(HistId id, std::size_t shard, std::uint64_t value) {
    hist_slot(id)[shard % hist_shards_].record(value);
  }

  /// All shards of `id` folded into one histogram (merge-on-read). Take
  /// it after the writers quiesced or under their synchronization.
  stats::Histogram hist(HistId id) const {
    stats::Histogram merged;
    const std::vector<stats::Histogram>& shards = hist_slot(id);
    for (const auto& h : shards) merged.merge_from(h);
    return merged;
  }
  stats::Histogram hist(const std::string& name) const {
    HistId id = 0;
    {
      util::MutexLock lock(mu_);
      const auto it = hist_ids_.find(name);
      if (it == hist_ids_.end()) return {};
      id = it->second;
    }
    return hist(id);
  }

  /// Visit every (name, merged histogram) pair; same quiescence contract
  /// as hist().
  template <typename Fn>
  void for_each_hist(Fn&& fn) const {
    std::vector<std::pair<std::string, HistId>> snap;
    {
      util::MutexLock lock(mu_);
      snap.assign(hist_ids_.begin(), hist_ids_.end());
    }
    for (const auto& [name, id] : snap) fn(name, hist(id));
  }

 private:
  // Fixed-geometry chunked storage: a slot's address never changes after
  // intern, and chunk pointers are published with release/acquire, so the
  // lock-free read path never observes a container mid-growth.
  static constexpr std::size_t kChunkBits = 6;
  static constexpr std::size_t kChunk = 1u << kChunkBits;  // 64 slots
  static constexpr std::size_t kMaxChunks = 256;           // 16384 names

  struct Slot {
    std::atomic<std::uint64_t> counter{0};
    std::atomic<double> gauge{0.0};
  };

  template <typename T>
  struct Chunk {
    std::array<T, kChunk> slots;
  };

  template <typename T>
  struct ChunkTable {
    std::array<std::atomic<Chunk<T>*>, kMaxChunks> chunks{};

    ~ChunkTable() {
      for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
    }
    T& at(std::uint32_t id) const {
      Chunk<T>* c =
          chunks[id >> kChunkBits].load(std::memory_order_acquire);
      return c->slots[id & (kChunk - 1)];
    }
  };

  template <typename T, typename... Args>
  static void ensure_chunk(ChunkTable<T>& table, std::uint32_t id,
                           Args&&... init) {
    const std::size_t c = id >> kChunkBits;
    assert(c < kMaxChunks && "metric name space exhausted");
    if (table.chunks[c].load(std::memory_order_relaxed) == nullptr) {
      auto* chunk = new Chunk<T>;
      if constexpr (sizeof...(Args) > 0) {
        for (auto& s : chunk->slots) s = T(std::forward<Args>(init)...);
      }
      table.chunks[c].store(chunk, std::memory_order_release);
    }
  }

  Slot& slot(MetricId id) const { return slots_.at(id); }
  std::vector<stats::Histogram>& hist_slot(HistId id) const {
    return hists_.at(id);
  }

  mutable util::Mutex mu_;
  std::unordered_map<std::string, MetricId> ids_ RN_GUARDED_BY(mu_);
  std::unordered_map<std::string, HistId> hist_ids_ RN_GUARDED_BY(mu_);
  MetricId next_id_ RN_GUARDED_BY(mu_) = 0;
  HistId next_hist_id_ RN_GUARDED_BY(mu_) = 0;
  std::size_t hist_shards_;
  ChunkTable<Slot> slots_;
  ChunkTable<std::vector<stats::Histogram>> hists_;
};

}  // namespace ringnet::obs
