#pragma once
// Message-lifecycle spans: each delivered message is decomposed into the
// stages of the paper's delivery path — submit, uplink-rx at the ordering
// BR, gseq assignment at a token pass, ring relay to the delivering BR,
// and AP-downlink/MH delivery. A SpanBreakdown folds per-stage durations
// into one histogram per stage so sim and runtime runs of the same
// scenario render comparable per-stage latency tables.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "stats/histogram.hpp"

namespace ringnet::obs {

enum class SpanStage : std::uint8_t {
  Submit = 0,  // submit -> uplink-rx at the ordering BR
  Assign = 1,  // uplink-rx -> gseq assignment (token pass)
  Relay = 2,   // assignment -> ordered arrival at the delivering BR
  Deliver = 3  // BR arrival -> delivery at the MH (AP downlink included)
};
inline constexpr std::size_t kSpanStages = 4;

/// Stable label for a stage (from obs/names.hpp).
const char* stage_name(SpanStage stage);

class SpanBreakdown {
 public:
  void record(SpanStage stage, std::uint64_t us) {
    stages_[static_cast<std::size_t>(stage)].record(us);
  }
  void record_total(std::uint64_t us) { total_.record(us); }

  const stats::Histogram& stage(SpanStage s) const {
    return stages_[static_cast<std::size_t>(s)];
  }
  const stats::Histogram& total() const { return total_; }
  bool empty() const { return total_.count() == 0; }

  void merge_from(const SpanBreakdown& other) {
    for (std::size_t i = 0; i < kSpanStages; ++i) {
      stages_[i].merge_from(other.stages_[i]);
    }
    total_.merge_from(other.total_);
  }

  /// Render the per-stage latency table (one row per stage plus the
  /// end-to-end total; p50/p90/p99/mean/max in microseconds). The caller
  /// prints it — library code never writes to stdout.
  std::string table(const std::string& title) const;

 private:
  std::array<stats::Histogram, kSpanStages> stages_{};
  stats::Histogram total_;
};

}  // namespace ringnet::obs
