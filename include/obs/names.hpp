#pragma once
// The one table of metric and span-stage names. Sim and runtime intern
// from these constants so both report the same metric vocabulary, and the
// RN008 lint rule rejects ad-hoc name literals on core/runtime paths —
// a metric that exists under two spellings is worse than no metric.

namespace ringnet::obs::names {

// --- protocol counters (shared by the sim oracle and the UDP runtime) ---
inline constexpr const char* kMhDelivered = "mh.delivered";
inline constexpr const char* kAcksSent = "arq.acks_sent";
inline constexpr const char* kRetransmits = "arq.retransmits";
inline constexpr const char* kTokenHeld = "token.held";
inline constexpr const char* kTokenDupDestroyed = "token.duplicates_destroyed";
inline constexpr const char* kTokenRegenerated = "token.regenerated";
inline constexpr const char* kTokenDropped = "token.dropped";
inline constexpr const char* kWqDropped = "wq.dropped";
inline constexpr const char* kGapsSkipped = "mh.gaps_skipped";
inline constexpr const char* kGapSkippedMsgs = "mh.gap_skipped_msgs";
inline constexpr const char* kMembershipApplied = "membership.applied";
inline constexpr const char* kMembershipRelayed = "membership.relayed";
inline constexpr const char* kRingRepairs = "ring.repairs";
inline constexpr const char* kRingRejoins = "ring.rejoins";
inline constexpr const char* kHandoffCount = "handoff.count";
inline constexpr const char* kHandoffHot = "handoff.hot";
inline constexpr const char* kHandoffCold = "handoff.cold";
inline constexpr const char* kArchivePruned = "archive.pruned";
inline constexpr const char* kChurnLeaves = "churn.leaves";
inline constexpr const char* kChurnRejoins = "churn.rejoins";
inline constexpr const char* kBlackoutDropped = "blackout.dropped";
inline constexpr const char* kBlackoutUplinkLost = "blackout.uplink_lost";
inline constexpr const char* kParkDropped = "source.park_dropped";
inline constexpr const char* kBufWqPeak = "buf.wq.peak";
inline constexpr const char* kBufMqPeak = "buf.mq.peak";
inline constexpr const char* kBufArchivePeak = "buf.archive.peak";
inline constexpr const char* kBufSubmitlogPeak = "buf.submitlog.peak";

// --- runtime-only counters (RuntimeCounters fields, same vocabulary) ---
inline constexpr const char* kTokenRetx = "token.retx";
inline constexpr const char* kFloorAdvances = "arq.floor_advances";
inline constexpr const char* kDuplicates = "mh.duplicates";
inline constexpr const char* kUplinkRetx = "arq.uplink_retx";
inline constexpr const char* kUplinkDropped = "arq.uplink_dropped";
inline constexpr const char* kReallyLost = "mh.really_lost";
inline constexpr const char* kMalformed = "transport.malformed";
inline constexpr const char* kSsHeartbeats = "ss.heartbeats";

// --- scheduler engine counters ---
inline constexpr const char* kSchedSerialSteps = "sched.serial_steps";
inline constexpr const char* kSchedWindows = "sched.windows";
inline constexpr const char* kSchedInboxDeferred = "sched.inbox_deferred";

// --- histograms ---
inline constexpr const char* kMhLatencyUs = "mh.latency_us";

// --- message-lifecycle span stages (submit -> ... -> delivery) ---
// Stage k measures the hop *into* that stage: kStageSubmit is
// submit -> uplink-rx at the ordering BR, kStageAssign is uplink-rx ->
// gseq assignment at a token pass, kStageRelay is assignment -> ordered
// arrival at the delivering member's BR, kStageDeliver is BR arrival ->
// delivery at the MH (AP downlink included).
inline constexpr const char* kStageSubmit = "submit";
inline constexpr const char* kStageAssign = "assign";
inline constexpr const char* kStageRelay = "relay";
inline constexpr const char* kStageDeliver = "deliver";
inline constexpr const char* kStageTotal = "total";

}  // namespace ringnet::obs::names
