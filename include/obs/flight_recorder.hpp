#pragma once
// Flight recorder: a bounded per-node binary ring of recent protocol
// events (token rx/tx, ARQ retries, regeneration, resync, chain splices).
// The runtime's role loops record into it from the protocol thread; the
// daemon (or a test) snapshots it from another thread and renders the ring
// as a single-line JSON dump. Certain events — watchdog-driven token
// regeneration, order violations — additionally arm a dump request so a
// live `ringnet_node` spills its recent history the moment something went
// wrong, not only when an operator sends SIGUSR1.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace ringnet::obs {

enum class FrEvent : std::uint8_t {
  TokenRx = 0,       // a = serial, b = rotation
  TokenTx = 1,       // a = serial, b = next node
  TokenDupDestroyed = 2,  // a = serial
  TokenRetx = 3,     // a = serial, b = attempt
  TokenDropped = 4,  // a = serial (ARQ gave up)
  TokenRegen = 5,    // a = new epoch (watchdog expiry at the leader)
  ArqResend = 6,     // a = member, b = resend count
  UplinkRetx = 7,    // a = lseq, b = attempt
  StallResync = 8,   // a = member, b = stalled watermark
  ChainSplice = 9,   // a = member, b = spliced gseq
  GapSkip = 10,      // a = skip target, b = msgs skipped
  OrderViolation = 11,  // a = offending gseq, b = previous gseq
  Deliver = 12,      // a = gseq
  Submit = 13        // a = lseq
};

/// Stable label for an event kind (used as the JSON "ev" value).
const char* fr_event_name(FrEvent kind);

struct FrRecord {
  std::int64_t t_us = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  FrEvent kind{};
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : cap_(capacity == 0 ? 1 : capacity) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FrEvent kind, std::int64_t t_us, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    {
      util::MutexLock lock(mu_);
      if (ring_.size() < cap_) {
        ring_.push_back(FrRecord{t_us, a, b, kind});
      } else {
        ring_[head_] = FrRecord{t_us, a, b, kind};
        head_ = (head_ + 1) % cap_;
      }
      ++total_;
    }
    if (kind == FrEvent::TokenRegen || kind == FrEvent::OrderViolation ||
        kind == FrEvent::TokenDropped) {
      dump_pending_.store(true, std::memory_order_release);
    }
  }

  std::size_t capacity() const { return cap_; }
  std::size_t size() const {
    util::MutexLock lock(mu_);
    return ring_.size();
  }
  std::uint64_t total_recorded() const {
    util::MutexLock lock(mu_);
    return total_;
  }

  /// True when an auto-dump event fired since the last call; clears the
  /// request. The daemon polls this to dump on watchdog expiry.
  bool take_dump_request() {
    return dump_pending_.exchange(false, std::memory_order_acq_rel);
  }

  /// Oldest-to-newest copy of the retained events.
  std::vector<FrRecord> snapshot() const {
    util::MutexLock lock(mu_);
    std::vector<FrRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  /// Single-line JSON dump of the retained events:
  ///   {"flight_recorder":{"node":"...","reason":"...","recorded":N,
  ///    "retained":M,"events":[{"ev":"token_rx","t_us":T,"a":A,"b":B},..]}}
  /// Built into a string; the caller decides where it goes (the daemon
  /// writes it to stderr).
  std::string dump_json(const std::string& node,
                        const std::string& reason) const;

 private:
  mutable util::Mutex mu_;
  std::vector<FrRecord> ring_ RN_GUARDED_BY(mu_);
  std::size_t head_ RN_GUARDED_BY(mu_) = 0;
  std::uint64_t total_ RN_GUARDED_BY(mu_) = 0;
  std::atomic<bool> dump_pending_{false};
  std::size_t cap_;
};

}  // namespace ringnet::obs
