#pragma once
// Engine: compiles a ScenarioSpec into scheduled simulation events against
// a running RingNetProtocol. All stochastic choices draw from a dedicated
// RNG stream derived from the simulation seed, so a (seed, spec, config)
// triple replays bit-identically and scenario draws never perturb the
// protocol's own random sequence. arm() schedules the recurring processes
// (mobility, churn) and the one-shot fault timeline relative to the current
// sim time; stop() halts the recurring processes and any not-yet-fired
// faults for the drain phase while letting already-scheduled rejoins and
// blackout-ends complete, so the run always drains toward a reattached,
// undisturbed population.

#include <cstddef>
#include <vector>

#include "core/protocol.hpp"
#include "scenario/spec.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace ringnet::scenario {

class Engine {
 public:
  Engine(ScenarioSpec spec, core::RingNetProtocol& proto,
         sim::Simulation& sim);

  void arm();
  void stop() { running_ = false; }
  bool running() const { return running_; }
  const ScenarioSpec& spec() const { return spec_; }

 private:
  // --- mobility ----------------------------------------------------------
  void schedule_waypoint_step(std::size_t mh);
  void waypoint_step(std::size_t mh);
  void commuter_trip(std::size_t mh);
  void hotspot_flash();
  std::size_t step_toward(std::size_t from, std::size_t to) const;

  // --- churn -------------------------------------------------------------
  void schedule_leave(std::size_t mh);
  void leave(std::size_t mh);
  void mass_leave();

  // --- group dynamics (multi-group runs only) ----------------------------
  void schedule_group_churn(std::size_t mh);
  void group_churn(std::size_t mh);
  void group_flash();

  // --- faults ------------------------------------------------------------
  void schedule_fault(const FaultEvent& ev);

  std::size_t ap_index(NodeId ap) const;
  NodeId mh_id(std::size_t mh) const;
  NodeId random_ap() { return aps_[rng_.bounded(aps_.size())]; }

  ScenarioSpec spec_;
  core::RingNetProtocol& proto_;
  sim::Simulation& sim_;
  util::Rng rng_;
  bool running_ = false;

  std::vector<NodeId> aps_;           // cell grid, topology order
  std::size_t grid_w_ = 1;            // AP grid width: ceil(sqrt(|APs|))
  std::vector<std::size_t> waypoint_;  // per-MH waypoint cell index
  std::vector<std::size_t> home_;      // commuter endpoints (cell indexes)
  std::vector<std::size_t> work_;
  std::size_t hotspot_cursor_ = 0;  // flashes rotate deterministically
  std::size_t flash_cursor_ = 0;    // hot group rotates deterministically
};

}  // namespace ringnet::scenario
