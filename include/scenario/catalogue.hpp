#pragma once
// The canned scenario catalogue: named, seeded, replayable workloads that
// every scenario-aware bench and the CI smoke job share. Each entry's
// canonical definition is its parse_scenario() text form, so the catalogue
// doubles as parser coverage and as copy-pasteable CLI input.

#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace ringnet::scenario {

struct CannedScenario {
  std::string name;
  std::string summary;  // one line for catalogue listings
  std::string text;     // parse_scenario() form (the canonical definition)
};

/// The canned catalogue, in presentation order.
const std::vector<CannedScenario>& catalogue();

/// Resolve `name` against the catalogue (exact match), falling back to
/// parsing it as an ad-hoc scenario text. nullopt when neither resolves,
/// with the parser's diagnostic (or a name hint) in `error`.
std::optional<ScenarioSpec> find_scenario(const std::string& name,
                                          std::string* error = nullptr);

}  // namespace ringnet::scenario
