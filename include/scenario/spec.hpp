#pragma once
// ScenarioSpec: a declarative description of the dynamic workload one
// experiment runs under — a mobility model driving MH handoffs over the
// AP cell grid, a churn process (members leaving/rejoining the group), a
// traffic shape for the sources, and a scripted fault timeline. Specs are
// plain data: composable (any subset of the sections may be active),
// replayable from a seed, and round-trippable through a flag-friendly text
// form (parse_scenario / describe_scenario). scenario::Engine compiles a
// spec into scheduled simulation events.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/time.hpp"

namespace ringnet::scenario {

enum class MobilityModel : std::uint8_t {
  None,
  RandomWaypoint,  // pick a waypoint cell on the AP grid, step toward it
  Commuter,        // periodic home<->work shuttling over fixed cell pairs
  Hotspot,         // flash crowds: a fraction converges on one cell,
                   // dwells, then disperses to random cells
};

struct MobilitySpec {
  MobilityModel model = MobilityModel::None;
  double rate_hz = 1.0;  // per-MH step rate (RandomWaypoint, Poisson)
  sim::SimTime commute_period = sim::secs(1.0);    // time between shuttles
  double hotspot_fraction = 0.5;                   // share pulled per flash
  sim::SimTime hotspot_interval = sim::secs(1.0);  // time between flashes
  sim::SimTime hotspot_dwell = sim::msecs(400);    // dwell before dispersal
};

struct ChurnSpec {
  double leave_rate_hz = 0.0;  // per-MH Poisson leave rate (0 = off)
  sim::SimTime absence_mean = sim::msecs(500);  // mean detached dwell
  bool rejoin = true;                           // false: leavers stay gone
  // Scripted mass-leave: at `mass_leave_at` (relative to engine start) a
  // fraction of the population detaches at once, rejoining after
  // `mass_rejoin_after` (zero `mass_leave_at` disables the event).
  sim::SimTime mass_leave_at = sim::SimTime::zero();
  double mass_leave_fraction = 0.5;
  sim::SimTime mass_rejoin_after = sim::secs(1.0);
};

/// Traffic shape. Forwarded into core::SourceConfig by the harness — the
/// generator itself runs inside the protocol's source machinery so the
/// analytic sizing model and the simulation describe the same workload.
struct TrafficSpec {
  core::TrafficPattern pattern = core::TrafficPattern::Constant;
  double rate_hz = 100.0;      // per-source base rate
  double burst_rate_hz = 0.0;  // MMPP ON rate (0 = 10x base)
  sim::SimTime on_mean = sim::msecs(100);
  sim::SimTime off_mean = sim::msecs(400);
  sim::SimTime diurnal_period = sim::secs(2.0);
  double sender_skew = 0.0;
};

/// Multi-group section: runs the deployment in genuine multi-group mode
/// (forwarded into core::GroupConfig by the harness) plus the optional
/// group dynamics the engine drives — membership churn (members swap one
/// group for another at churn_rate) and a rotating flash crowd (sources
/// submit boost-x faster toward one hot group, which moves every
/// flash_interval).
struct GroupSpec {
  std::size_t count = 8;          // total groups sharing the ring
  std::size_t groups_per_mh = 2;  // overlap degree: memberships per MH
  std::size_t dest_groups = 2;    // destination groups per message
  double churn_rate_hz = 0.0;     // per-MH group swap rate (0 = static)
  double flash_boost = 1.0;       // hot-group rate multiplier (1 = off)
  sim::SimTime flash_interval = sim::secs(0.5);  // hot-group rotation
};

struct FaultEvent {
  enum class Kind : std::uint8_t {
    BrCrash,       // crash BR #index at `at` (token loss when custodian)
    EjectBr,       // false-positive ejection of live BR #index
    TokenLoss,     // the active token frame vanishes in transit at `at`
    CellBlackout,  // AP #index cell dark over [at, at + duration)
  };
  Kind kind = Kind::BrCrash;
  sim::SimTime at = sim::SimTime::zero();   // relative to engine start
  std::size_t index = 0;                    // BR or AP tier-local index
  sim::SimTime duration = sim::msecs(250);  // blackout window length
};

struct ScenarioSpec {
  std::string name = "unnamed";
  MobilitySpec mobility;
  ChurnSpec churn;
  bool has_traffic = false;  // when set, traffic overrides config.source
  TrafficSpec traffic;
  // When set, overrides config.groups: the run becomes a multi-group
  // deployment and the engine drives the spec's group dynamics.
  std::optional<GroupSpec> groups;
  std::vector<FaultEvent> faults;
  // Optional protocol-option override: scenarios probing the retention /
  // loss trade (rejoin-after-absence beyond the MQ window) carry it here
  // so the canned catalogue stays self-contained.
  std::optional<std::size_t> mq_retention;
};

/// Parse the flag-friendly text form: `;`-separated sections of
/// `,`-separated `key=value` pairs, times in seconds. Examples:
///   name=rush;mobility=commuter,period=0.6;traffic=diurnal,rate=150
///   churn=poisson,leave=0.4,absence=0.3;fault=crash,br=1,at=1.0
///   fault=blackout,ap=0,at=0.5,dur=0.4;mq_retention=128
/// Section keys: mobility=waypoint|commuter|hotspot (rate, period,
/// fraction, interval, dwell), churn=poisson|mass (leave, absence, rejoin,
/// mass_at, mass_frac, mass_rejoin), traffic=constant|poisson|mmpp|diurnal
/// (rate, burst, on, off, period, skew), groups=<count> (per_mh, dest,
/// churn, boost, flash), fault=crash|eject|tokenloss|blackout (br, ap, at,
/// dur). Returns nullopt and sets `error` on any unknown section, key or
/// malformed value.
std::optional<ScenarioSpec> parse_scenario(const std::string& text,
                                           std::string* error = nullptr);

/// Canonical text form; parse_scenario(describe_scenario(s)) reproduces s.
std::string describe_scenario(const ScenarioSpec& spec);

}  // namespace ringnet::scenario
