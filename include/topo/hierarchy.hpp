#pragma once
// The RingNet distribution vehicle (paper Figure 1): a four-tier hierarchy
// BRT (border routers, one top logical ring) / AGT (access gateways, one
// logical ring per BR) / APT (access proxies, tree children of AGs) / MHT
// (mobile hosts in wireless cells). build_hierarchy() constructs the
// topology; validate() checks every structural invariant the protocol
// relies on (ring closure, parent/child symmetry, leader consistency).

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "net/channel.hpp"

namespace ringnet::topo {

struct HierarchyConfig {
  std::size_t num_brs = 3;
  std::size_t ags_per_br = 1;
  std::size_t aps_per_ag = 1;
  std::size_t mhs_per_ap = 1;
  net::ChannelModel wan = net::ChannelModel::wired_wan(0.0);
  net::ChannelModel lan = net::ChannelModel::wired_lan(0.0);
  net::ChannelModel wireless = net::ChannelModel::wireless(0.01);
};

enum class LinkKind : std::uint8_t { WanRing, LanTree, WirelessCell };

struct Link {
  NodeId a;
  NodeId b;
  LinkKind kind;
};

struct RingNeighbors {
  NodeId next = NodeId::invalid();
  NodeId prev = NodeId::invalid();
  NodeId leader = NodeId::invalid();
};

struct NodeDesc {
  NodeId id;
  Tier tier = Tier::None;
  NodeId parent = NodeId::invalid();     // tree parent (BRs have none)
  std::vector<NodeId> children;          // tree children
  RingNeighbors nbrs;                    // ring links (BR/AG tiers only)
};

struct Topology {
  HierarchyConfig config;
  std::vector<NodeId> top_ring;               // BRT ring, index order
  std::vector<std::vector<NodeId>> ag_rings;  // one ring per BR
  std::vector<NodeId> aps;
  std::vector<NodeId> mhs;
  std::vector<Link> links;
  std::unordered_map<NodeId, NodeDesc> nodes;

  const NodeDesc& desc(NodeId id) const { return nodes.at(id); }
  NodeDesc& desc(NodeId id) { return nodes.at(id); }
  bool has(NodeId id) const { return nodes.count(id) != 0; }

  std::size_t entity_count() const { return nodes.size(); }

  /// The BR at the root of an arbitrary node's tree path.
  NodeId br_of(NodeId id) const;

  /// nullopt when every invariant holds; otherwise a description of the
  /// first violation found.
  std::optional<std::string> validate() const;
};

Topology build_hierarchy(const HierarchyConfig& config);

}  // namespace ringnet::topo
