#pragma once
// Fixed-width ASCII result tables for the experiment benches. Cells are
// formatted eagerly into strings; print() right-aligns numbers under their
// headers so sweep output is diffable run-to-run.

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

namespace ringnet::stats {

class Table {
 public:
  class Row {
   public:
    Row& cell(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    Row& cell(const char* s) { return cell(std::string(s)); }
    Row& cell(std::int64_t v);
    Row& cell(std::uint64_t v);
    Row& cell(double v, int precision);

    const std::vector<std::string>& cells() const { return cells_; }

   private:
    std::vector<std::string> cells_;
  };

  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  /// Append a row; the reference stays valid for chained .cell() calls
  /// (rows live in a deque, so growth never relocates them).
  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  const std::string& title() const { return title_; }
  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::deque<Row> rows_;
};

}  // namespace ringnet::stats
