#pragma once
// Log-bucketed histogram (HDR-style: 2^6 sub-buckets per power of two).
// O(1) record, ~1.6% relative quantile error, fixed memory — good enough
// for latency percentiles over millions of samples without storing them.

#include <array>
#include <cstdint>

namespace ringnet::stats {

class Histogram {
 public:
  void record(std::uint64_t value) {
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
    if (value < min_ || count_ == 1) min_ = value;
    ++buckets_[bucket_of(value)];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1] (upper bound of the containing bucket).
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) {
        const std::uint64_t hi = bucket_upper(i);
        return hi < max_ ? hi : max_;
      }
    }
    return max_;
  }

  /// Canonical spelling of percentile() for observability call sites; the
  /// two are the same function.
  std::uint64_t quantile(double q) const { return percentile(q); }

  std::uint64_t p50() const { return percentile(0.50); }
  std::uint64_t p90() const { return percentile(0.90); }
  std::uint64_t p99() const { return percentile(0.99); }

  /// Fold another histogram's samples into this one (bucket-wise add).
  /// Identical bucket layout means the merge is exact: quantiles of the
  /// merged histogram equal quantiles over the union of the sample sets.
  void merge_from(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

 private:
  static constexpr std::size_t kSubBits = 6;  // 64 sub-buckets per octave
  static constexpr std::size_t kSub = 1u << kSubBits;
  static constexpr std::size_t kOctaves = 64 - kSubBits;
  static constexpr std::size_t kBuckets = kSub + kOctaves * kSub;

  static std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    // Highest set bit defines the octave; next kSubBits bits the sub-bucket.
    const int msb = 63 - __builtin_clzll(v);
    const std::size_t octave = static_cast<std::size_t>(msb) - kSubBits + 1;
    const std::size_t sub =
        static_cast<std::size_t>(v >> (msb - static_cast<int>(kSubBits))) &
        (kSub - 1);
    std::size_t idx = kSub + (octave - 1) * kSub + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static std::uint64_t bucket_upper(std::size_t idx) {
    if (idx < kSub) return idx;
    const std::size_t octave = (idx - kSub) / kSub + 1;
    const std::size_t sub = (idx - kSub) % kSub;
    const std::uint64_t base = 1ull << (octave + kSubBits - 1);
    const std::uint64_t width = base >> kSubBits;
    return base + (sub + 1) * width - 1;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = 0;
};

}  // namespace ringnet::stats
