#pragma once
// GroupSet: a compact, always-sorted set of GroupIds. Data messages carry
// their destination groups in one; MH membership tables use the same type.
// Small-vector storage: the common 1-4 destination groups live inline, and
// only wider sets (overlap-degree sweeps, membership tables) spill to the
// heap. The sorted invariant makes intersection a linear merge walk and
// gives the wire form a canonical (strictly-increasing) encoding that the
// decoder can validate byte-for-byte.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace ringnet::proto {

class GroupSet {
 public:
  static constexpr std::size_t kInline = 4;
  // Wire form is a u8 count followed by strictly-increasing u32 gids.
  static constexpr std::size_t kMaxEncoded = 255;

  GroupSet() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  GroupId operator[](std::size_t i) const { return data()[i]; }
  const GroupId* begin() const { return data(); }
  const GroupId* end() const { return data() + size_; }

  /// Insert keeping the ascending order; false if already present.
  bool insert(GroupId g) {
    const GroupId* d = data();
    std::size_t pos = 0;
    while (pos < size_ && d[pos] < g) ++pos;
    if (pos < size_ && d[pos] == g) return false;
    if (size_ < kInline) {
      for (std::size_t i = size_; i > pos; --i) inline_[i] = inline_[i - 1];
      inline_[pos] = g;
    } else {
      if (size_ == kInline) {
        spill_.assign(inline_.begin(), inline_.end());
      }
      spill_.insert(spill_.begin() + static_cast<std::ptrdiff_t>(pos), g);
    }
    ++size_;
    return true;
  }

  bool contains(GroupId g) const {
    const GroupId* d = data();
    for (std::size_t i = 0; i < size_; ++i) {
      if (d[i] == g) return true;
      if (g < d[i]) return false;
    }
    return false;
  }

  /// True when the two sets share any group: a merge walk over the sorted
  /// storage, so the genuine-relay membership check is O(|a| + |b|).
  bool intersects(const GroupSet& o) const {
    const GroupId* a = data();
    const GroupId* b = o.data();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < size_ && j < o.size_) {
      if (a[i] == b[j]) return true;
      if (a[i] < b[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  }

  void clear() {
    size_ = 0;
    spill_.clear();
  }

  friend bool operator==(const GroupSet& a, const GroupSet& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const GroupSet& a, const GroupSet& b) {
    return !(a == b);
  }

 private:
  const GroupId* data() const {
    return size_ <= kInline ? inline_.data() : spill_.data();
  }

  std::array<GroupId, kInline> inline_{};
  std::vector<GroupId> spill_;
  std::uint32_t size_ = 0;
};

}  // namespace ringnet::proto
