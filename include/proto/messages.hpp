#pragma once
// Wire-level protocol messages. The protocol's control vocabulary follows
// the paper: DataMsg multicast payload descriptors, the OrderingToken with
// its WTSNP table (With-Timestamp-Sequence-Number-Pairs: which ordering
// node mapped which (source, local-seq) range to which global sequence),
// delivery acks, membership updates and heartbeats. encode()/decode() give
// a length-checked little-endian codec; decode returns nullopt on any
// truncated or corrupt buffer instead of reading out of bounds.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "proto/group_set.hpp"
#include "sim/time.hpp"

namespace ringnet::proto {

// ---------------------------------------------------------------------------
// Wire reader/writer

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(v); }
  void u32(std::uint32_t v) { append(v); }
  void u64(std::uint64_t v) { append(v); }
  void node(NodeId id) { u32(id.v); }

  std::size_t size() const { return buf_.size(); }
  const std::uint8_t* data() const { return buf_.data(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void append(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::optional<std::uint8_t> u8() { return read<std::uint8_t>(); }
  std::optional<std::uint16_t> u16() { return read<std::uint16_t>(); }
  std::optional<std::uint32_t> u32() { return read<std::uint32_t>(); }
  std::optional<std::uint64_t> u64() { return read<std::uint64_t>(); }
  std::optional<NodeId> node() {
    const auto v = u32();
    if (!v) return std::nullopt;
    return NodeId{*v};
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  template <typename T>
  std::optional<T> read() {
    if (size_ - pos_ < sizeof(T)) return std::nullopt;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Message kinds

enum class MsgType : std::uint8_t {
  Data = 1,
  Token = 2,
  DeliveryAck = 3,
  Membership = 4,
  Heartbeat = 5,
  TokenAck = 6,
};

/// Destination-group cap for one data message. The wire extension stores a
/// per-group sequence next to every destination gid; four keeps that block
/// (and the in-memory stamp array) fixed-size without a heap spill.
constexpr std::size_t kMaxDataGroups = 4;

/// A multicast payload descriptor. `gseq`/`ordering_node`/`epoch` are
/// unassigned (zero / invalid) until the message passes through the token
/// holder's Message-Ordering step.
struct DataMsg {
  GroupId gid;
  NodeId source;
  LocalSeq lseq = 0;
  NodeId ordering_node = NodeId::invalid();
  GlobalSeq gseq = 0;
  std::uint64_t epoch = 0;
  std::uint32_t payload_size = 0;
  // Multi-group extension. An empty `groups` is the single-group degenerate
  // case and encodes byte-identically to the pre-group wire layout; a
  // non-empty set (at most kMaxDataGroups) appends a strictly-validated
  // trailing section: the destination set, one per-group sequence number
  // per destination (parallel to `groups`, stamped by the token holder),
  // and the per-member delivery chain link.
  GroupSet groups;
  std::array<std::uint64_t, kMaxDataGroups> group_seqs{};
  // Delivery chain: gseq+1 of the previous message the sending BR forwarded
  // to this member (0 = chain head). Stamped per downlink send, so a member
  // can tell an intentional hole (a gseq it is no destination of) from a
  // lost frame without ring-wide state.
  GlobalSeq prev_chain = 0;
  // Simulator-side bookkeeping, never serialized: stamped at submit() so
  // latency accounting reads the message instead of the (possibly remote)
  // source's submit log.
  sim::SimTime submit_at = sim::SimTime::zero();
  // Message-lifecycle span stamps (sim only, never serialized; same
  // piggyback pattern as submit_at): uplink arrival at the ordering BR,
  // gseq assignment at the token pass, and ordered arrival at the
  // delivering member's BR. deliver_at_mh() turns consecutive stamps into
  // per-stage latencies when span recording is enabled.
  sim::SimTime uplink_rx_at = sim::SimTime::zero();
  sim::SimTime assigned_at = sim::SimTime::zero();
  sim::SimTime relay_rx_at = sim::SimTime::zero();
};

/// Periodic delivery watermark from an MH up its tree path: "I have
/// delivered every global sequence number <= watermark".
struct DeliveryAckMsg {
  GroupId gid;
  NodeId member;
  GlobalSeq watermark = 0;
};

/// Batched membership delta relayed around the top ring.
struct MembershipMsg {
  GroupId gid;
  NodeId origin;
  struct Event {
    NodeId mh;
    NodeId ap;  // invalid() == detach
  };
  std::vector<Event> events;
};

struct HeartbeatMsg {
  NodeId from;
  std::uint64_t beat = 0;
};

/// Per-hop receipt for a token frame. The simulator's channels deliver (or
/// lose) frames atomically so the sim never needs one, but the socket
/// runtime's token-forward ARQ does: the sender retransmits the token every
/// retx_timeout until the next ring node acknowledges (serial, rotation).
struct TokenAckMsg {
  NodeId from;
  std::uint64_t serial = 0;
  std::uint64_t rotation = 0;
};

// ---------------------------------------------------------------------------
// Ordering token (WTSNP)

/// One WTSNP table row: ordering node `ordering_node` assigned sources
/// `source`'s local sequences [first, last] the global range starting at
/// `gseq_first`.
struct WtsnpEntry {
  NodeId ordering_node;
  NodeId source;
  LocalSeq first = 0;
  LocalSeq last = 0;
  GlobalSeq gseq_first = 0;
};

class OrderingToken {
 public:
  OrderingToken() = default;
  OrderingToken(GroupId gid, std::uint64_t epoch) : gid_(gid), epoch_(epoch) {}

  GroupId gid() const { return gid_; }
  std::uint64_t epoch() const { return epoch_; }
  void set_epoch(std::uint64_t e) { epoch_ = e; }
  GlobalSeq next_gseq() const { return next_gseq_; }
  void set_next_gseq(GlobalSeq g) { next_gseq_ = g; }
  std::uint64_t rotation() const { return rotation_; }
  void bump_rotation() { ++rotation_; }
  std::uint64_t serial() const { return serial_; }
  void set_serial(std::uint64_t s) { serial_ = s; }

  const std::vector<WtsnpEntry>& entries() const { return entries_; }

  /// Record that `ordering_node` assigned `source`'s [first, last] the next
  /// (last - first + 1) global sequence numbers. Returns the first global
  /// sequence of the range.
  GlobalSeq append_range(NodeId ordering_node, NodeId source, LocalSeq first,
                         LocalSeq last);

  /// Drop every entry appended by `ordering_node`. Called when the token
  /// returns to that node: by then the entry has completed a full rotation
  /// and every ring member has seen it (the paper's WTSNP recycling rule).
  void prune_entries_of(NodeId ordering_node);

  /// Global sequence assigned to (source, lseq), if still tabled.
  std::optional<GlobalSeq> lookup(NodeId source, LocalSeq lseq) const;

  /// Per-group sequencer counters (multi-group mode): the token carries one
  /// next-sequence counter per group that has ever been a destination, so
  /// per-group numbering survives token hops exactly like next_gseq does.
  /// Empty in single-group mode (legacy wire layout). Returns the assigned
  /// (current) value and advances the counter.
  std::uint64_t bump_group_seq(GroupId g);
  /// Current next-sequence for `g` without advancing (0 when untracked).
  std::uint64_t group_seq(GroupId g) const;
  /// Restore a counter (token regeneration from the custodian's high-water
  /// marks). Keeps the table sorted by gid.
  void set_group_seq(GroupId g, std::uint64_t next);
  const std::vector<std::pair<GroupId, std::uint64_t>>& group_counters()
      const {
    return group_counters_;
  }

  void serialize(WireWriter& w) const;
  static std::optional<OrderingToken> deserialize(WireReader& r);

 private:
  GroupId gid_;
  std::uint64_t epoch_ = 0;
  std::uint64_t serial_ = 0;    // regeneration lineage (duplicate detection)
  std::uint64_t rotation_ = 0;  // completed trips around the ring
  GlobalSeq next_gseq_ = 0;
  std::vector<WtsnpEntry> entries_;
  // Sorted by gid; empty unless multi-group assignment has run.
  std::vector<std::pair<GroupId, std::uint64_t>> group_counters_;
};

/// Zero-copy view over a serialized OrderingToken body. parse() validates
/// the length once; header fields are decoded eagerly but the WTSNP rows
/// stay in the borrowed buffer and are read in place on demand, so a
/// relay/lookup pass over a token frame never materializes a
/// vector<WtsnpEntry>. The view borrows the buffer: it must not outlive it.
class TokenView {
 public:
  /// Parse a token *body* (the layout OrderingToken::serialize writes,
  /// without the 1-byte envelope tag). nullopt on truncation or a row
  /// count that disagrees with the buffer length. A trailing per-group
  /// counter section (multi-group mode) is length-validated here and read
  /// on demand via group_counter().
  static std::optional<TokenView> parse(const std::uint8_t* data,
                                        std::size_t size);
  static std::optional<TokenView> parse(const std::vector<std::uint8_t>& buf) {
    return parse(buf.data(), buf.size());
  }

  GroupId gid() const { return gid_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t serial() const { return serial_; }
  std::uint64_t rotation() const { return rotation_; }
  GlobalSeq next_gseq() const { return next_gseq_; }
  std::size_t entry_count() const { return entry_count_; }

  /// Decode row `i` in place (no bounds check beyond the parse-time one).
  WtsnpEntry entry(std::size_t i) const;

  /// Same newest-first supersession rule as OrderingToken::lookup, without
  /// deserializing the table.
  std::optional<GlobalSeq> lookup(NodeId source, LocalSeq lseq) const;

  /// Per-group counter section (0 entries on a legacy-layout token).
  std::size_t group_counter_count() const { return group_counter_count_; }
  std::pair<GroupId, std::uint64_t> group_counter(std::size_t i) const;

 private:
  const std::uint8_t* rows_ = nullptr;  // first WTSNP row
  std::size_t entry_count_ = 0;
  const std::uint8_t* group_rows_ = nullptr;  // first (gid, next) pair
  std::size_t group_counter_count_ = 0;
  GroupId gid_;
  std::uint64_t epoch_ = 0;
  std::uint64_t serial_ = 0;
  std::uint64_t rotation_ = 0;
  GlobalSeq next_gseq_ = 0;
};

// ---------------------------------------------------------------------------
// Message envelope + codec

class Message {
 public:
  using Body = std::variant<DataMsg, OrderingToken, DeliveryAckMsg,
                            MembershipMsg, HeartbeatMsg, TokenAckMsg>;

  Message(DataMsg m) : body_(std::move(m)) {}                 // NOLINT
  Message(OrderingToken m) : body_(std::move(m)) {}           // NOLINT
  Message(DeliveryAckMsg m) : body_(std::move(m)) {}          // NOLINT
  Message(MembershipMsg m) : body_(std::move(m)) {}           // NOLINT
  Message(HeartbeatMsg m) : body_(std::move(m)) {}            // NOLINT
  Message(TokenAckMsg m) : body_(std::move(m)) {}             // NOLINT

  MsgType type() const;
  const Body& body() const { return body_; }

  const DataMsg& data() const { return std::get<DataMsg>(body_); }
  const OrderingToken& token() const { return std::get<OrderingToken>(body_); }
  const DeliveryAckMsg& ack() const { return std::get<DeliveryAckMsg>(body_); }
  const MembershipMsg& membership() const {
    return std::get<MembershipMsg>(body_);
  }
  const HeartbeatMsg& heartbeat() const {
    return std::get<HeartbeatMsg>(body_);
  }
  const TokenAckMsg& token_ack() const {
    return std::get<TokenAckMsg>(body_);
  }

 private:
  Body body_;
};

std::vector<std::uint8_t> encode(const Message& msg);
std::optional<Message> decode(const std::vector<std::uint8_t>& bytes);
/// Datagram form: decode straight out of a receive buffer without copying
/// into a vector first. Same contract: nullopt on truncation, trailing
/// bytes, or any corrupt field — never reads out of bounds.
std::optional<Message> decode(const std::uint8_t* data, std::size_t size);

/// Wire size of a message without materializing the buffer (used by the
/// simulator to charge link serialization time).
std::size_t wire_size(const Message& msg);

}  // namespace ringnet::proto
