#pragma once
// Analytic bounds from Theorem 5.1, in the same units and parameters the
// simulator runs with, so benches (and deployment sizing) can compare
// measured behavior against the model directly.
//
//   Torder    — one full token rotation around the top ring:
//               r * (wan one-way + token holding time)
//   Ttransmit — one-hop distribution of an ordered message between ring
//               nodes (wan one-way for the data frame)
//   Tdeliver  — BR -> AG -> AP -> MH down-tree forwarding time
//   tau       — the staging/batching interval of Message-Ordering
//
// The paper bounds ordering latency by Max(Torder, Ttransmit) + tau
// (Thm 5.1). Proof 5.1 undercounts: after a message is tagged, its WTSNP
// entry still needs up to one more full rotation before every other ring
// node has seen it, so the tight worst case is 2*Torder + tau. Both
// constants are exposed; the benches print them side by side.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/config.hpp"
#include "core/protocol.hpp"

namespace ringnet::core {

/// Multi-group ordering guarantee: any two members that both deliver the
/// same two messages deliver them in the same relative order. With genuine
/// multicast a member's log has holes (gseqs destined to other groups), so
/// this is checked directly — for every member pair, the positions of
/// their common messages must rise together — rather than inferred from
/// per-member contiguity. Also re-runs the per-member monotonicity and
/// gseq-binding checks so one call covers the full multi-group contract.
/// Returns nullopt when violation-free.
inline std::optional<std::string> check_pairwise_order(
    const DeliveryLog& log) {
  if (auto err = log.check_total_order()) return err;
  const auto& per_mh = log.per_mh();
  std::unordered_map<GlobalSeq, std::size_t> pos;
  for (std::size_t i = 0; i < per_mh.size(); ++i) {
    pos.clear();
    pos.reserve(per_mh[i].size());
    for (std::size_t p = 0; p < per_mh[i].size(); ++p) {
      pos.emplace(per_mh[i][p].gseq, p);
    }
    for (std::size_t j = i + 1; j < per_mh.size(); ++j) {
      // Walk j's log; positions of messages shared with i must increase.
      std::size_t last = 0;
      bool any = false;
      GlobalSeq last_g = 0;
      for (const auto& r : per_mh[j]) {
        const auto it = pos.find(r.gseq);
        if (it == pos.end()) continue;
        if (any && it->second <= last) {
          return "pairwise order violation: members " + std::to_string(i) +
                 " and " + std::to_string(j) + " disagree on gseq " +
                 std::to_string(r.gseq) + " vs " + std::to_string(last_g);
        }
        any = true;
        last = it->second;
        last_g = r.gseq;
      }
    }
  }
  return std::nullopt;
}

struct AnalyticBounds {
  double torder_s = 0;
  double ttransmit_s = 0;
  double tdeliver_s = 0;
  double tau_s = 0;
  double source_rate_hz = 0;  // aggregate s * lambda
  double ack_period_s = 0;

  double paper_order_bound_s() const {
    return std::max(torder_s, ttransmit_s) + tau_s;
  }
  double tight_order_bound_s() const { return 2.0 * torder_s + tau_s; }
  double paper_e2e_bound_s() const {
    return paper_order_bound_s() + tdeliver_s;
  }
  double tight_e2e_bound_s() const {
    return tight_order_bound_s() + tdeliver_s;
  }

  /// Thm 5.1 WQ sizing: s*lambda*(Max(Torder,Ttransmit)+tau) messages.
  double wq_bound_msgs() const {
    return source_rate_hz * paper_order_bound_s();
  }

  /// MQ sizing. The theorem says s*lambda*Torder under instant tagging and
  /// instant delivery; a real node also holds each entry for the delivery
  /// and ack-lag window, so the budget uses the tight ordering constant
  /// plus (Tdeliver + ack period) of extra dwell.
  double mq_bound_msgs(double extra_lag_s = 0.0) const {
    return source_rate_hz *
           (tight_order_bound_s() + tdeliver_s + extra_lag_s);
  }
};

inline AnalyticBounds analyze(const ProtocolConfig& config) {
  const auto& h = config.hierarchy;
  const auto& opt = config.options;
  const std::uint32_t data_bytes = 41 + config.source.payload_size;
  const std::uint32_t token_bytes = 41 + 32 * 8;  // token + typical WTSNP

  AnalyticBounds b;
  const double hop_s = h.wan.one_way(token_bytes).seconds() +
                       opt.token_hold.seconds();
  b.torder_s = static_cast<double>(h.num_brs) * hop_s;
  b.ttransmit_s = h.wan.one_way(data_bytes).seconds();
  b.tdeliver_s = h.lan.one_way(data_bytes).seconds() * 2.0 +
                 h.wireless.one_way(data_bytes).seconds();
  b.tau_s = opt.tau.seconds();
  b.source_rate_hz =
      static_cast<double>(config.num_sources) * config.source.rate_hz;
  b.ack_period_s = opt.ack_period.seconds();
  return b;
}

}  // namespace ringnet::core
