#pragma once
// MessageQueue (the paper's MQ): an ordered buffer of globally-sequenced
// messages keyed by gseq. It absorbs out-of-order arrival (gap windows),
// exposes the contiguous deliverable prefix, and — once entries are
// delivered/acked — retains a bounded tail (`retention` entries behind the
// delivered watermark, the ValidFront lag) so handed-off members can
// resynchronize without end-to-end retransmission.
//
// Storage is a base-offset deque: gseqs are assigned contiguously by the
// token, so entry g lives at slot (g - base) and every hot operation
// (store, mark_delivered, the deliverable walk, prune) is an index, not an
// ordered-tree descent. Slots inside the span that have not arrived yet
// are explicit holes; the span stays O(retention + in-flight window).

#include <algorithm>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "proto/messages.hpp"
#include "sim/time.hpp"

namespace ringnet::core {

class MessageQueue {
 public:
  explicit MessageQueue(std::size_t retention) : retention_(retention) {}

  /// Insert a sequenced message. Returns false on duplicate (already
  /// buffered, or at/below the pruned ValidFront).
  bool store(const proto::DataMsg& msg, sim::SimTime now) {
    if (have_delivered_ && msg.gseq <= delivered_) {
      return false;  // stale: already delivered (possibly pruned)
    }
    Entry& slot = slot_for(msg.gseq);
    if (slot.present) return false;
    slot.present = true;
    slot.msg = msg;
    slot.stored_at = now;
    ++present_count_;
    if (!max_seen_valid_ || msg.gseq > max_seen_) {
      max_seen_ = msg.gseq;
      max_seen_valid_ = true;
    }
    return true;
  }

  /// Mark one gseq delivered; advances the contiguous delivered watermark
  /// and prunes everything older than (watermark - retention).
  void mark_delivered(GlobalSeq gseq) {
    Entry* e = entry_at(gseq);
    if (e != nullptr && e->present) e->delivered = true;
    // Advance the watermark over the contiguous delivered prefix.
    while (true) {
      Entry* front = entry_at(next_expected_);
      if (front == nullptr || !front->present || !front->delivered) break;
      delivered_ = next_expected_;
      have_delivered_ = true;
      ++next_expected_;
    }
    prune();
  }

  /// The contiguous run of undelivered messages starting at next_expected.
  std::vector<proto::DataMsg> deliverable() const {
    std::vector<proto::DataMsg> out;
    for (GlobalSeq g = next_expected_;; ++g) {
      const Entry* e = entry_at(g);
      if (e == nullptr || !e->present) break;
      if (!e->delivered) out.push_back(e->msg);
    }
    return out;
  }

  std::optional<proto::DataMsg> fetch(GlobalSeq gseq) const {
    const Entry* e = entry_at(gseq);
    if (e == nullptr || !e->present) return std::nullopt;
    return e->msg;
  }

  bool contains(GlobalSeq gseq) const {
    const Entry* e = entry_at(gseq);
    return e != nullptr && e->present;
  }

  /// When the entry is still materialized, the sim time it was stored.
  std::optional<sim::SimTime> stored_at(GlobalSeq gseq) const {
    const Entry* e = entry_at(gseq);
    if (e == nullptr || !e->present) return std::nullopt;
    return e->stored_at;
  }

  /// Gseqs in [next_expected, horizon] that have not arrived (gap list).
  std::vector<GlobalSeq> missing_before(GlobalSeq horizon) const {
    std::vector<GlobalSeq> out;
    for (GlobalSeq g = next_expected_; g <= horizon; ++g) {
      if (!contains(g)) out.push_back(g);
    }
    return out;
  }

  /// Oldest gseq this queue can still serve: the start of the retained
  /// prefix, or next_expected when nothing older is materialized. A hole
  /// at the *front* (oldest entry above next_expected because it is still
  /// in flight) does not advance the front — only pruning does.
  GlobalSeq valid_front() const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].present) {
        return std::min(next_expected_,
                        base_ + static_cast<GlobalSeq>(i));
      }
    }
    return next_expected_;
  }

  /// Force the expected cursor forward (gap skip after retention loss).
  void skip_to(GlobalSeq gseq) {
    if (gseq <= next_expected_) return;
    next_expected_ = gseq;
    if (gseq > 0) {
      delivered_ = gseq - 1;
      have_delivered_ = true;
    }
    prune();
  }

  GlobalSeq next_expected() const { return next_expected_; }
  GlobalSeq max_seen() const { return max_seen_valid_ ? max_seen_ : 0; }
  bool empty() const { return present_count_ == 0; }
  std::size_t size() const { return present_count_; }
  std::size_t retention() const { return retention_; }
  void set_retention(std::size_t r) {
    retention_ = r;
    prune();
  }

 private:
  struct Entry {
    proto::DataMsg msg;
    sim::SimTime stored_at;
    bool present = false;
    bool delivered = false;
  };

  Entry* entry_at(GlobalSeq gseq) {
    if (entries_.empty() || gseq < base_) return nullptr;
    const GlobalSeq off = gseq - base_;
    if (off >= entries_.size()) return nullptr;
    return &entries_[static_cast<std::size_t>(off)];
  }
  const Entry* entry_at(GlobalSeq gseq) const {
    return const_cast<MessageQueue*>(this)->entry_at(gseq);
  }

  /// The slot for `gseq`, growing the span (with holes) as needed.
  Entry& slot_for(GlobalSeq gseq) {
    if (entries_.empty()) {
      base_ = gseq;
      entries_.emplace_back();
      return entries_.front();
    }
    while (gseq < base_) {
      entries_.emplace_front();
      --base_;
    }
    while (gseq - base_ >= entries_.size()) entries_.emplace_back();
    return entries_[static_cast<std::size_t>(gseq - base_)];
  }

  void prune() {
    if (!have_delivered_) return;
    // Keep `retention_` delivered entries behind the watermark.
    if (delivered_ + 1 < retention_) return;
    const GlobalSeq cut = delivered_ + 1 - retention_;  // first kept gseq
    while (!entries_.empty() && base_ < cut) {
      if (entries_.front().present) --present_count_;
      entries_.pop_front();
      ++base_;
    }
    // Unfillable holes at the front (store() rejects anything at or below
    // the delivered watermark) only waste span: drop them.
    while (!entries_.empty() && !entries_.front().present &&
           base_ <= delivered_) {
      entries_.pop_front();
      ++base_;
    }
  }

  std::deque<Entry> entries_;  // slot i holds gseq base_ + i
  GlobalSeq base_ = 0;
  std::size_t present_count_ = 0;
  GlobalSeq next_expected_ = 0;
  GlobalSeq delivered_ = 0;
  bool have_delivered_ = false;
  GlobalSeq max_seen_ = 0;
  bool max_seen_valid_ = false;
  std::size_t retention_;
};

}  // namespace ringnet::core
