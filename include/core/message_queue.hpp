#pragma once
// MessageQueue (the paper's MQ): an ordered buffer of globally-sequenced
// messages keyed by gseq. It absorbs out-of-order arrival (gap windows),
// exposes the contiguous deliverable prefix, and — once entries are
// delivered/acked — retains a bounded tail (`retention` entries behind the
// delivered watermark, the ValidFront lag) so handed-off members can
// resynchronize without end-to-end retransmission.

#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "proto/messages.hpp"
#include "sim/time.hpp"

namespace ringnet::core {

class MessageQueue {
 public:
  explicit MessageQueue(std::size_t retention) : retention_(retention) {}

  /// Insert a sequenced message. Returns false on duplicate (already
  /// buffered, or at/below the pruned ValidFront).
  bool store(const proto::DataMsg& msg, sim::SimTime now) {
    if (have_delivered_ && msg.gseq <= delivered_) {
      return false;  // stale: already delivered (possibly pruned)
    }
    const bool inserted = entries_.emplace(msg.gseq, Entry{msg, now}).second;
    if (inserted && (!max_seen_valid_ || msg.gseq > max_seen_)) {
      max_seen_ = msg.gseq;
      max_seen_valid_ = true;
    }
    return inserted;
  }

  /// Mark one gseq delivered; advances the contiguous delivered watermark
  /// and prunes everything older than (watermark - retention).
  void mark_delivered(GlobalSeq gseq) {
    auto it = entries_.find(gseq);
    if (it != entries_.end()) it->second.delivered = true;
    // Advance the watermark over the contiguous delivered prefix.
    while (true) {
      auto front = entries_.find(next_expected_);
      if (front == entries_.end() || !front->second.delivered) break;
      delivered_ = next_expected_;
      have_delivered_ = true;
      ++next_expected_;
    }
    prune();
  }

  /// The contiguous run of undelivered messages starting at next_expected.
  std::vector<proto::DataMsg> deliverable() const {
    std::vector<proto::DataMsg> out;
    GlobalSeq g = next_expected_;
    for (auto it = entries_.find(g); it != entries_.end() && it->first == g;
         it = entries_.find(++g)) {
      if (it->second.delivered) continue;
      out.push_back(it->second.msg);
    }
    return out;
  }

  std::optional<proto::DataMsg> fetch(GlobalSeq gseq) const {
    const auto it = entries_.find(gseq);
    if (it == entries_.end()) return std::nullopt;
    return it->second.msg;
  }

  bool contains(GlobalSeq gseq) const { return entries_.count(gseq) != 0; }

  /// When the entry is still materialized, the sim time it was stored.
  std::optional<sim::SimTime> stored_at(GlobalSeq gseq) const {
    const auto it = entries_.find(gseq);
    if (it == entries_.end()) return std::nullopt;
    return it->second.stored_at;
  }

  /// Gseqs in [next_expected, horizon] that have not arrived (gap list).
  std::vector<GlobalSeq> missing_before(GlobalSeq horizon) const {
    std::vector<GlobalSeq> out;
    for (GlobalSeq g = next_expected_; g <= horizon; ++g) {
      if (entries_.find(g) == entries_.end()) out.push_back(g);
    }
    return out;
  }

  /// Oldest gseq this queue can still serve: the start of the retained
  /// prefix, or next_expected when nothing older is materialized. A hole
  /// at the *front* (oldest entry above next_expected because it is still
  /// in flight) does not advance the front — only pruning does.
  GlobalSeq valid_front() const {
    if (entries_.empty()) return next_expected_;
    return std::min(next_expected_, entries_.begin()->first);
  }

  /// Force the expected cursor forward (gap skip after retention loss).
  void skip_to(GlobalSeq gseq) {
    if (gseq <= next_expected_) return;
    next_expected_ = gseq;
    if (gseq > 0) {
      delivered_ = gseq - 1;
      have_delivered_ = true;
    }
    prune();
  }

  GlobalSeq next_expected() const { return next_expected_; }
  GlobalSeq max_seen() const { return max_seen_valid_ ? max_seen_ : 0; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t retention() const { return retention_; }
  void set_retention(std::size_t r) {
    retention_ = r;
    prune();
  }

 private:
  struct Entry {
    proto::DataMsg msg;
    sim::SimTime stored_at;
    bool delivered = false;
  };

  void prune() {
    if (!have_delivered_) return;
    // Keep `retention_` delivered entries behind the watermark.
    if (delivered_ + 1 < retention_) return;
    const GlobalSeq cut = delivered_ + 1 - retention_;  // first kept gseq
    entries_.erase(entries_.begin(), entries_.lower_bound(cut));
  }

  // lint: map-ok — prune()/valid_front() walk entries in gseq order and
  // lean on lower_bound; an unordered map would force a sort per prune.
  std::map<GlobalSeq, Entry> entries_;
  GlobalSeq next_expected_ = 0;
  GlobalSeq delivered_ = 0;
  bool have_delivered_ = false;
  GlobalSeq max_seen_ = 0;
  bool max_seen_valid_ = false;
  std::size_t retention_;
};

}  // namespace ringnet::core
