#pragma once
// ProtocolConfig: every tunable of a RingNet deployment/simulation in one
// aggregate — the hierarchy shape and channel models, source workload,
// mobility process, and the protocol option block (token cadence, ack
// cadence, membership batching, retention, failure detection, handoff
// reservations). core::analyze() consumes the same structure, so analytic
// sizing and simulation always describe the same deployment.

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"
#include "topo/hierarchy.hpp"

namespace ringnet::core {

struct SourceConfig {
  double rate_hz = 100.0;            // per-source submit rate
  std::uint32_t payload_size = 256;  // bytes per multicast payload
};

struct MobilityConfig {
  double handoff_rate_hz = 0.0;            // per-MH handoff rate (Poisson)
  sim::SimTime detach_gap = sim::msecs(20);  // radio silence per handoff
};

struct ProtocolOptions {
  // Message-Ordering cadence: sources' messages are staged at their BR and
  // folded into the WQ every tau (the paper's batching interval).
  sim::SimTime tau = sim::msecs(5);
  // Token holding time at each ordering node per visit.
  sim::SimTime token_hold = sim::usecs(100);
  // DeliveryAck cadence from each MH (WT freshness).
  sim::SimTime ack_period = sim::msecs(10);
  // Membership update batching window (§3 batched update scheme).
  sim::SimTime membership_batch = sim::msecs(50);
  // Failure detection: ring heartbeats and the miss budget.
  sim::SimTime heartbeat_period = sim::msecs(25);
  int heartbeat_miss_limit = 4;
  // MQ ValidFront lag: delivered entries retained for handoff resync.
  std::size_t mq_retention = 1024;
  // Assigned-message archive (peer-repair store) entries retained below the
  // global acked floor. Together with mq_retention this bounds steady-state
  // ordering-node memory at O(window) instead of O(total messages sent)
  // (Theorem 5.1's bounded-buffer claim, enforced by test_soak_memory).
  std::size_t archive_retention = 1024;
  // §3 smooth handoff: keep reserved distribution paths on neighbor APs.
  bool smooth_handoff = true;
  // Cold-attach penalty: time to graft a new distribution path.
  sim::SimTime path_build = sim::msecs(100);
  // Link-layer ARQ: retransmit timeout and attempt budget per hop.
  sim::SimTime retx_timeout = sim::msecs(30);
  int max_retx = 10;
  // Total-order Message-Ordering on the top ring. Off = the Remark 3
  // unordered variant (same hierarchy, no token wait).
  bool ordered = true;
};

struct ProtocolConfig {
  topo::HierarchyConfig hierarchy;
  std::size_t num_sources = 1;
  SourceConfig source;
  MobilityConfig mobility;
  ProtocolOptions options;
  // Keep a per-delivery log for total-order checking (memory ~ deliveries).
  bool record_deliveries = true;
};

}  // namespace ringnet::core
