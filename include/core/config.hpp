#pragma once
// ProtocolConfig: every tunable of a RingNet deployment/simulation in one
// aggregate — the hierarchy shape and channel models, source workload,
// mobility process, and the protocol option block (token cadence, ack
// cadence, membership batching, retention, failure detection, handoff
// reservations). core::analyze() consumes the same structure, so analytic
// sizing and simulation always describe the same deployment.

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"
#include "topo/hierarchy.hpp"

namespace ringnet::core {

/// Inter-submit time law for the traffic generator driving each source.
enum class TrafficPattern : std::uint8_t {
  Constant,  // fixed period 1/rate (the paper's s*lambda workload)
  Poisson,   // exponential inter-submit times at rate
  Mmpp,      // Markov-modulated on/off Poisson: burst_rate in ON, rate in OFF
  Diurnal,   // Poisson with a sinusoidal rate ramp over diurnal_period
};

struct SourceConfig {
  double rate_hz = 100.0;            // per-source submit rate (base/OFF rate)
  std::uint32_t payload_size = 256;  // bytes per multicast payload
  TrafficPattern pattern = TrafficPattern::Constant;
  double burst_rate_hz = 0.0;  // MMPP ON-state rate; 0 = 10x rate_hz
  sim::SimTime on_mean = sim::msecs(100);   // MMPP mean ON dwell
  sim::SimTime off_mean = sim::msecs(400);  // MMPP mean OFF dwell
  sim::SimTime diurnal_period = sim::secs(2.0);  // one full rate cycle
  // Per-sender rate skew: source i carries weight (i+1)^-skew, normalized
  // to mean 1 so the aggregate rate stays s*lambda. 0 = uniform senders.
  double sender_skew = 0.0;
  // Count-bounded workload: each source stops after this many submissions
  // (0 = unbounded). Scripted finite runs — e.g. the loopback-runtime
  // oracle comparison — need every execution to carry the same message set.
  std::uint64_t max_messages = 0;
};

struct MobilityConfig {
  double handoff_rate_hz = 0.0;            // per-MH handoff rate (Poisson)
  sim::SimTime detach_gap = sim::msecs(20);  // radio silence per handoff
};

/// Multi-group multicast shape. count == 1 is the degenerate single-group
/// deployment — the paper's protocol, bit-identical to the pre-group code
/// path. count > 1 turns on genuine multi-group mode: MHs join
/// `groups_per_mh` of `count` overlapping groups, each message targets
/// `dest_groups` groups, and only actual destination members pay delivery
/// cost (BRs skip downlink work for groups with no subtree members).
struct GroupConfig {
  std::size_t count = 1;          // total groups sharing the ring
  std::size_t groups_per_mh = 1;  // overlap degree: memberships per MH
  std::size_t dest_groups = 1;    // destination groups per message (<= 4)
  bool multi() const { return count > 1; }
};

struct ProtocolOptions {
  // Message-Ordering cadence: sources' messages are staged at their BR and
  // folded into the WQ every tau (the paper's batching interval).
  sim::SimTime tau = sim::msecs(5);
  // Token holding time at each ordering node per visit.
  sim::SimTime token_hold = sim::usecs(100);
  // DeliveryAck cadence from each MH (WT freshness).
  sim::SimTime ack_period = sim::msecs(10);
  // Membership update batching window (§3 batched update scheme).
  sim::SimTime membership_batch = sim::msecs(50);
  // Failure detection: ring heartbeats and the miss budget.
  sim::SimTime heartbeat_period = sim::msecs(25);
  int heartbeat_miss_limit = 4;
  // MQ ValidFront lag: delivered entries retained for handoff resync.
  std::size_t mq_retention = 1024;
  // Assigned-message archive (peer-repair store) entries retained below the
  // global acked floor. Together with mq_retention this bounds steady-state
  // ordering-node memory at O(window) instead of O(total messages sent)
  // (Theorem 5.1's bounded-buffer claim, enforced by test_soak_memory).
  std::size_t archive_retention = 1024;
  // Submissions parked while the host MH is detached are bounded: beyond
  // this many, the oldest parked message is dropped and its submit-log
  // entry released, so a permanently-departed member (churn with no
  // rejoin) cannot grow O(total submissions) state.
  std::size_t source_park_cap = 1024;
  // §3 smooth handoff: keep reserved distribution paths on neighbor APs.
  bool smooth_handoff = true;
  // Cold-attach penalty: time to graft a new distribution path.
  sim::SimTime path_build = sim::msecs(100);
  // Link-layer ARQ: retransmit timeout and attempt budget per hop.
  sim::SimTime retx_timeout = sim::msecs(30);
  int max_retx = 10;
  // Total-order Message-Ordering on the top ring. Off = the Remark 3
  // unordered variant (same hierarchy, no token wait).
  bool ordered = true;
};

struct ProtocolConfig {
  topo::HierarchyConfig hierarchy;
  std::size_t num_sources = 1;
  SourceConfig source;
  MobilityConfig mobility;
  ProtocolOptions options;
  GroupConfig groups;
  // Keep a per-delivery log for total-order checking (memory ~ deliveries).
  bool record_deliveries = true;
  // Decompose each delivery into per-stage span latencies (submit/assign/
  // relay/deliver histograms, fixed memory). Off by default: the stamps
  // always ride the message, but the per-delivery histogram records are
  // only paid when a run asks for the breakdown.
  bool record_spans = false;
};

}  // namespace ringnet::core
