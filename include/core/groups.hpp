#pragma once
// Deterministic group assignment shared by the simulator, the socket
// runtime, and the benches. Both executions of one deployment (sim oracle
// and UDP loopback) must agree on which groups each MH joins and which
// groups each message targets, so both functions are pure in
// (index/source, lseq, GroupConfig) — no RNG, no wall clock.
//
// GroupIds are 1-based: gid g in [1, count]. Dense per-group state indexes
// by gid - 1. Gid 0 stays reserved as "unset" and the single-group
// degenerate deployment keeps its legacy gid 1.

#include <cstdint>

#include "core/config.hpp"
#include "core/types.hpp"
#include "proto/group_set.hpp"
#include "proto/messages.hpp"

namespace ringnet::core {

/// Dense slab index for a gid (gid is 1-based, slabs are 0-based).
inline std::size_t group_index(GroupId g) {
  return static_cast<std::size_t>(g.v) - 1;
}

inline GroupId group_of_index(std::size_t idx) {
  return GroupId{static_cast<std::uint32_t>(idx + 1)};
}

/// The groups MH #mh_index belongs to: groups_per_mh consecutive groups
/// starting at mh_index (mod count). Stripes membership evenly over the
/// population, so every group has floor/ceil(n_mh * per_mh / count) members
/// and overlap degree is exactly groups_per_mh everywhere.
inline proto::GroupSet member_groups(std::size_t mh_index,
                                     const GroupConfig& cfg) {
  proto::GroupSet out;
  if (!cfg.multi()) {
    // RN007-ok: the degenerate deployment keeps its legacy ring-wide gid 1.
    out.insert(GroupId{1});
    return out;
  }
  const std::size_t per =
      cfg.groups_per_mh == 0
          ? 1
          : (cfg.groups_per_mh < cfg.count ? cfg.groups_per_mh : cfg.count);
  for (std::size_t k = 0; k < per; ++k) {
    out.insert(group_of_index((mh_index + k) % cfg.count));
  }
  return out;
}

/// Destination groups of (source, lseq): dest_groups distinct groups at a
/// hashed starting offset, so destinations spread over all groups while
/// staying replayable. The mix is splitmix64-style so neighboring lseqs
/// land on unrelated groups.
inline proto::GroupSet dest_groups(NodeId source, LocalSeq lseq,
                                   const GroupConfig& cfg) {
  proto::GroupSet out;
  if (!cfg.multi()) return out;  // degenerate: no wire extension at all
  std::uint64_t h = (static_cast<std::uint64_t>(source.v) << 32) ^ lseq;
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  const std::size_t want =
      cfg.dest_groups == 0
          ? 1
          : (cfg.dest_groups < proto::kMaxDataGroups ? cfg.dest_groups
                                                     : proto::kMaxDataGroups);
  const std::size_t n = want < cfg.count ? want : cfg.count;
  const std::size_t base = static_cast<std::size_t>(h % cfg.count);
  for (std::size_t k = 0; k < n; ++k) {
    out.insert(group_of_index((base + k) % cfg.count));
  }
  return out;
}

}  // namespace ringnet::core
