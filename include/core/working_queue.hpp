#pragma once
// WorkingQueue (the paper's WQ): messages received by an ordering node that
// are waiting for the token. FIFO within the node; assign() runs the
// Message-Ordering step against every queued message when the token is in
// hand. The assignment functor returns false to reject a message (stale
// epoch, unknown source after a view change) — rejected messages are
// dropped and counted, never retried.

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "proto/messages.hpp"

namespace ringnet::core {

class WorkingQueue {
 public:
  void add(const proto::DataMsg& msg) { pending_.push_back(msg); }

  /// Drain the queue through the ordering functor. Messages for which
  /// `assign_fn(msg)` returns true (after mutating gseq/ordering_node in
  /// place) are returned in FIFO order; the rest are dropped and counted.
  template <typename Fn>
  std::vector<proto::DataMsg> assign(Fn&& assign_fn, std::size_t& dropped) {
    std::vector<proto::DataMsg> out;
    out.reserve(pending_.size());
    for (auto& msg : pending_) {
      if (assign_fn(msg)) {
        out.push_back(std::move(msg));
      } else {
        ++dropped;
      }
    }
    pending_.clear();
    return out;
  }

  std::size_t size() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }
  const std::deque<proto::DataMsg>& pending() const { return pending_; }
  void clear() { pending_.clear(); }

 private:
  std::deque<proto::DataMsg> pending_;
};

}  // namespace ringnet::core
