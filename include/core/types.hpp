#pragma once
// Fundamental identifier and sequence-number types shared by every layer.
//
// NodeId encodes the RingNet tier (Figure 1: BRT / AGT / APT / MHT) in its
// top byte so an id is self-describing in traces and tables; plain ids
// (tier bits zero) print as "N<index>" and are used by unit tests and
// micro-benchmarks that exercise data structures outside a topology.

#include <cstdint>
#include <functional>
#include <string>

namespace ringnet {

using LocalSeq = std::uint64_t;   // per-source sequence, assigned at submit
using GlobalSeq = std::uint64_t;  // total-order sequence, assigned by the token

enum class Tier : std::uint8_t {
  None = 0,  // tier-less id (tests, micro-benches)
  BR = 1,    // border router, top logical ring (ordering nodes)
  AG = 2,    // access gateway, second-tier logical rings
  AP = 3,    // access proxy, tree leaf of the wired overlay
  MH = 4,    // mobile host
};

struct NodeId {
  std::uint32_t v = 0xFFFFFFFFu;

  static constexpr std::uint32_t kTierShift = 24;
  static constexpr std::uint32_t kIndexMask = 0x00FFFFFFu;

  static constexpr NodeId make(Tier tier, std::uint32_t index) {
    return NodeId{(static_cast<std::uint32_t>(tier) << kTierShift) |
                  (index & kIndexMask)};
  }
  static constexpr NodeId invalid() { return NodeId{0xFFFFFFFFu}; }

  constexpr Tier tier() const {
    const std::uint32_t t = v >> kTierShift;
    return t <= 4 ? static_cast<Tier>(t) : Tier::None;
  }
  constexpr std::uint32_t index() const { return v & kIndexMask; }
  constexpr bool valid() const { return v != 0xFFFFFFFFu; }

  friend constexpr bool operator==(NodeId a, NodeId b) { return a.v == b.v; }
  friend constexpr bool operator!=(NodeId a, NodeId b) { return a.v != b.v; }
  friend constexpr bool operator<(NodeId a, NodeId b) { return a.v < b.v; }
};

struct GroupId {
  std::uint32_t v = 0;
  friend constexpr bool operator==(GroupId a, GroupId b) { return a.v == b.v; }
  friend constexpr bool operator!=(GroupId a, GroupId b) { return a.v != b.v; }
  friend constexpr bool operator<(GroupId a, GroupId b) { return a.v < b.v; }
};

inline std::string to_string(NodeId id) {
  if (!id.valid()) return "?";
  const char* prefix = "N";
  switch (id.tier()) {
    case Tier::BR: prefix = "BR"; break;
    case Tier::AG: prefix = "AG"; break;
    case Tier::AP: prefix = "AP"; break;
    case Tier::MH: prefix = "MH"; break;
    case Tier::None: break;
  }
  return std::string(prefix) + std::to_string(id.index());
}

}  // namespace ringnet

template <>
struct std::hash<ringnet::NodeId> {
  std::size_t operator()(ringnet::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.v);
  }
};
