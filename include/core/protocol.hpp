#pragma once
// RingNetProtocol: the paper's token-ring total-order multicast engine run
// inside a deterministic Simulation. One instance owns the whole deployment:
// the Figure 1 hierarchy, per-BR ordering state (staging + WQ + MQ + group
// view), per-MH delivery state, the rotating OrderingToken with its WTSNP
// table, link-layer ARQ over the channel models, DeliveryAck watermarks,
// batched membership, heartbeat failure detection with ring repair and
// Token-Regeneration, smooth-handoff mobility, and the metrics/trace hooks
// the experiment benches read.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "core/message_queue.hpp"
#include "core/types.hpp"
#include "core/working_queue.hpp"
#include "net/channel.hpp"
#include "proto/messages.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"
#include "topo/hierarchy.hpp"

namespace ringnet::core {

/// A border router's eventually-consistent view of group membership
/// (mh -> serving AP), maintained through the batched update scheme.
/// Per-MH event sequence numbers make relayed applications idempotent and
/// reordering-safe.
class GroupView {
 public:
  void apply(NodeId mh, NodeId ap, std::uint64_t seq) {
    auto& slot = state_[mh];
    if (seq < slot.seq) return;
    slot.seq = seq;
    slot.ap = ap;
  }

  std::size_t member_count() const {
    std::size_t n = 0;
    for (const auto& [mh, slot] : state_) {
      (void)mh;
      if (slot.ap.valid()) ++n;
    }
    return n;
  }

  std::optional<NodeId> ap_of(NodeId mh) const {
    const auto it = state_.find(mh);
    if (it == state_.end() || !it->second.ap.valid()) return std::nullopt;
    return it->second.ap;
  }

 private:
  struct Slot {
    NodeId ap = NodeId::invalid();
    std::uint64_t seq = 0;
  };
  std::unordered_map<NodeId, Slot> state_;
};

/// Per-delivery record used to verify the protocol's core guarantee: every
/// member observes the same total order.
class DeliveryLog {
 public:
  void record(NodeId mh, GlobalSeq gseq, NodeId source, LocalSeq lseq) {
    per_mh_[mh].push_back(Rec{gseq, source, lseq});
  }

  bool empty() const { return per_mh_.empty(); }

  /// nullopt when the log is violation-free: per-member gseq sequences are
  /// strictly increasing and every member agrees on which (source, lseq)
  /// each gseq names.
  std::optional<std::string> check_total_order() const;

 private:
  struct Rec {
    GlobalSeq gseq;
    NodeId source;
    LocalSeq lseq;
  };
  std::unordered_map<NodeId, std::vector<Rec>> per_mh_;
};

class RingNetProtocol;

/// Mobile host: reorder buffer + delivery bookkeeping.
class MhNode {
 public:
  MhNode(NodeId id, NodeId ap) : id_(id), ap_(ap) {}

  NodeId id() const { return id_; }
  NodeId ap() const { return ap_; }
  bool attached() const { return attached_; }
  sim::SimTime last_delivery_at() const { return last_delivery_; }
  std::uint64_t delivered_count() const { return delivered_; }

 private:
  friend class RingNetProtocol;

  NodeId id_;
  NodeId ap_;
  bool attached_ = true;
  MessageQueue mq_{4};  // reorder buffer; tiny retention for dedupe
  std::unordered_set<std::uint64_t> seen_unordered_;
  std::uint64_t delivered_ = 0;
  sim::SimTime last_delivery_ = sim::SimTime::zero();
};

/// Border router / ordering node state.
class BrNode {
 public:
  BrNode(NodeId id, std::size_t mq_retention) : id_(id), mq_(mq_retention) {}

  NodeId id() const { return id_; }
  bool alive() const { return alive_; }
  const GroupView& group_view() const { return view_; }
  MessageQueue& mq() { return mq_; }
  WorkingQueue& wq() { return wq_; }

 private:
  friend class RingNetProtocol;

  struct MemberEvent {
    NodeId mh;
    NodeId ap;  // invalid() == detach
    std::uint64_t seq;
  };

  NodeId id_;
  bool alive_ = true;
  std::deque<proto::DataMsg> staging_;  // waiting for the next tau tick
  WorkingQueue wq_;
  MessageQueue mq_;
  GroupView view_;
  std::unordered_map<NodeId, GlobalSeq> member_wm_;  // next-expected per MH
  GlobalSeq acked_floor_ = 0;  // gseqs below are subtree-acked in mq_
  std::vector<MemberEvent> pending_membership_;
  sim::SimTime last_hb_from_prev_ = sim::SimTime::zero();
};

/// Poisson handoff process over the MH population.
class MobilityModel {
 public:
  void stop() { running_ = false; }
  bool running() const { return running_; }

 private:
  friend class RingNetProtocol;
  bool running_ = false;
};

class RingNetProtocol {
 public:
  RingNetProtocol(sim::Simulation& sim, ProtocolConfig config);

  /// Arm every periodic process (sources, token, acks, heartbeats,
  /// membership flushes, mobility) starting at the current sim time.
  void start();
  void stop_sources();

  /// Fail a node abruptly (used on BRs: the token-loss scenario).
  void crash_node(NodeId id);

  /// Inject a stale duplicate token at `at` (Multiple-Token scenario).
  void inject_duplicate_token(NodeId at, std::uint64_t epoch);

  const topo::Topology& topology() const { return topo_; }
  const ProtocolConfig& config() const { return config_; }
  BrNode& node(NodeId id) { return *brs_.at(id); }
  const std::vector<std::unique_ptr<MhNode>>& mhs() const { return mh_list_; }
  MobilityModel& mobility() { return mobility_; }
  const DeliveryLog& deliveries() const { return deliveries_; }

  std::uint64_t total_sent() const { return total_sent_; }
  const stats::Histogram& lat_hist() const { return lat_hist_; }
  const stats::Histogram& assign_hist() const { return assign_hist_; }

 private:
  struct SourceState {
    std::uint32_t index;
    NodeId source_id;  // tier-less id carried in DataMsg.source
    NodeId mh;
    LocalSeq next_lseq = 0;
    std::deque<proto::DataMsg> parked;  // submitted while detached
    std::vector<sim::SimTime> submit_at;  // indexed by lseq
  };

  // --- wiring -------------------------------------------------------------
  void start_sources();
  void source_tick(std::size_t idx);
  void submit(SourceState& src, proto::DataMsg msg);
  void uplink_to_br(const proto::DataMsg& msg, NodeId mh);

  // --- ordering -----------------------------------------------------------
  void tau_tick(NodeId br);
  void token_arrive(NodeId br, proto::OrderingToken token);
  void distribute(NodeId origin, const std::vector<proto::DataMsg>& batch);
  void br_receive_ordered(NodeId br, const proto::DataMsg& msg);
  void forward_down(NodeId br, const proto::DataMsg& msg);
  void mh_receive(NodeId mh, const proto::DataMsg& msg, bool retransmission);
  void deliver_at_mh(MhNode& node, const proto::DataMsg& msg);

  // --- acks / repair ------------------------------------------------------
  void ack_tick(NodeId mh);
  void br_receive_ack(NodeId br, NodeId mh, GlobalSeq next_expected);

  // --- membership ---------------------------------------------------------
  void queue_membership_event(NodeId mh, NodeId ap);
  void membership_flush_tick(NodeId br);
  void membership_relay(NodeId br, std::size_t hops_left,
                        std::vector<BrNode::MemberEvent> events);

  // --- failure handling ---------------------------------------------------
  void heartbeat_tick(NodeId br);
  void handle_br_failure(NodeId dead);
  void rejoin_ring(NodeId br);
  void regenerate_token();

  // --- mobility -----------------------------------------------------------
  void schedule_next_handoff(NodeId mh);
  void perform_handoff(NodeId mh);
  void complete_attach(NodeId mh, NodeId ap);
  bool ap_is_hot(NodeId ap, NodeId exclude_mh) const;

  // --- helpers ------------------------------------------------------------
  NodeId next_alive_br(NodeId from) const;
  NodeId leader_br() const;
  sim::SimTime hop_delay(const net::ChannelModel& model, NodeId link_key,
                         std::uint32_t bytes);
  net::LossProcess& loss_process(NodeId link_key,
                                 const net::ChannelModel& model);
  sim::SimTime uplink_delay(NodeId mh, std::uint32_t bytes);
  sim::SimTime downlink_delay(NodeId mh, std::uint32_t bytes);
  void note_wq_depth(const BrNode& br);
  void mark_acked(BrNode& br);
  std::uint32_t data_bytes() const {
    // Envelope tag + DataMsg descriptor (proto::wire_size) + payload.
    return 41 + config_.source.payload_size;
  }

  sim::Simulation& sim_;
  ProtocolConfig config_;
  topo::Topology topo_;

  std::unordered_map<NodeId, std::unique_ptr<BrNode>> brs_;
  std::vector<std::unique_ptr<MhNode>> mh_list_;
  std::unordered_map<NodeId, MhNode*> mh_by_id_;
  std::unordered_map<NodeId, std::vector<NodeId>> br_members_;  // attached
  std::vector<SourceState> sources_;
  std::unordered_map<NodeId, std::vector<std::size_t>> sources_on_mh_;

  std::vector<NodeId> alive_ring_;  // current top ring (repairs shrink it)
  MobilityModel mobility_;
  DeliveryLog deliveries_;
  stats::Histogram lat_hist_;     // end-to-end, microseconds
  stats::Histogram assign_hist_;  // submit -> gseq assignment, microseconds

  std::unordered_map<NodeId, net::LossProcess> loss_;
  std::unordered_map<NodeId, std::uint64_t> membership_seq_;
  // Every assigned message (+ assignment time), keyed by gseq — the
  // stand-in for fetching a missing copy from a peer ordering node's MQ
  // when a BR has a hole (e.g. it was wrongly ejected from the ring).
  std::unordered_map<GlobalSeq, std::pair<proto::DataMsg, sim::SimTime>>
      assigned_archive_;

  std::uint64_t total_sent_ = 0;
  bool sources_running_ = false;
  bool started_ = false;

  // Token custody (simulator-level ground truth used for loss detection).
  std::uint64_t active_token_serial_ = 1;
  std::uint64_t next_token_serial_ = 2;
  std::uint64_t current_epoch_ = 1;
  NodeId token_custodian_ = NodeId::invalid();
  bool token_lost_ = false;
  bool regen_pending_ = false;
  GlobalSeq max_assigned_gseq_ = 0;
  bool any_assigned_ = false;
};

}  // namespace ringnet::core
