#pragma once
// RingNetProtocol: the paper's token-ring total-order multicast engine run
// inside a deterministic Simulation. One instance owns the whole deployment:
// the Figure 1 hierarchy, per-BR ordering state (staging + WQ + MQ + group
// view), per-MH delivery state, the rotating OrderingToken with its WTSNP
// table, link-layer ARQ over the channel models, DeliveryAck watermarks,
// batched membership, heartbeat failure detection with ring repair and
// Token-Regeneration, smooth-handoff mobility, and the metrics/trace hooks
// the experiment benches read.
//
// Hot-path state is dense-indexed: NodeId indices are contiguous per tier,
// so per-BR / per-MH / per-AP lookups are vector indexes, not hash probes.
// The only dynamic-keyed hot map left (per-link loss processes) is an
// open-addressing FlatHash per execution context.
//
// When the owning Simulation is planned with domains (one per BR subtree),
// every scheduled event names its target context explicitly: subtree-local
// work (uplink staging, downlink delivery, acks, resync) runs in the
// serving BR's domain, while ring-wide work (token hops, membership relay,
// heartbeats/repair, mobility, faults, archive) runs in the serialized
// global context. The same code runs identically on the single-heap oracle
// and the sharded engine — that is the equivalence the tests assert.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "core/message_queue.hpp"
#include "core/types.hpp"
#include "core/working_queue.hpp"
#include "net/channel.hpp"
#include "obs/span.hpp"
#include "proto/messages.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"
#include "topo/hierarchy.hpp"
#include "util/flat_hash.hpp"

namespace ringnet::core {

/// A border router's eventually-consistent view of group membership
/// (mh -> serving AP), maintained through the batched update scheme.
/// Per-MH event sequence numbers make relayed applications idempotent and
/// reordering-safe. Dense-indexed by MH index.
class GroupView {
 public:
  void reset(std::size_t n_mhs) { state_.assign(n_mhs, Slot{}); }

  void apply(NodeId mh, NodeId ap, std::uint64_t seq) {
    if (mh.index() >= state_.size()) state_.resize(mh.index() + 1);
    Slot& slot = state_[mh.index()];
    if (seq < slot.seq) return;
    slot.seq = seq;
    slot.ap = ap;
  }

  std::size_t member_count() const {
    std::size_t n = 0;
    for (const Slot& slot : state_) {
      if (slot.ap.valid()) ++n;
    }
    return n;
  }

  std::optional<NodeId> ap_of(NodeId mh) const {
    if (mh.index() >= state_.size() || !state_[mh.index()].ap.valid()) {
      return std::nullopt;
    }
    return state_[mh.index()].ap;
  }

 private:
  struct Slot {
    NodeId ap = NodeId::invalid();
    std::uint64_t seq = 0;
  };
  std::vector<Slot> state_;
};

/// Per-delivery record used to verify the protocol's core guarantee: every
/// member observes the same total order. Dense-indexed by MH index.
class DeliveryLog {
 public:
  struct Rec {
    GlobalSeq gseq;
    NodeId source;
    LocalSeq lseq;
    GroupId gid{0};  // destination group credited with the delivery
  };

  void reset(const std::vector<NodeId>& mhs) {
    ids_ = mhs;
    per_mh_.assign(mhs.size(), {});
  }

  void record(NodeId mh, GlobalSeq gseq, NodeId source, LocalSeq lseq,
              GroupId gid = GroupId{0}) {
    per_mh_[mh.index()].push_back(Rec{gseq, source, lseq, gid});
  }

  bool empty() const {
    for (const auto& recs : per_mh_) {
      if (!recs.empty()) return false;
    }
    return true;
  }

  /// nullopt when the log is violation-free: per-member gseq sequences are
  /// strictly increasing and every member agrees on which (source, lseq)
  /// each gseq names. Multi-group logs pass too: genuine multicast leaves
  /// per-member holes (non-destination gseqs), and this check never
  /// required contiguity — only monotonicity and binding agreement.
  std::optional<std::string> check_total_order() const;

  /// Raw per-member sequences, MH-index order (oracle-comparison export).
  const std::vector<std::vector<Rec>>& per_mh() const { return per_mh_; }

 private:
  std::vector<NodeId> ids_;  // index -> NodeId, for diagnostics
  std::vector<std::vector<Rec>> per_mh_;
};

class RingNetProtocol;

/// Per-source submit-time log indexed by lseq. A base-offset deque with a
/// pruned-prefix counter: entries are appended at submit, looked up by lseq
/// for latency accounting, and released once the message's archive entry
/// falls below the global acked floor. Release order can differ slightly
/// from lseq order (uplink ARQ can reorder assignment), so releases mark a
/// flag and the contiguous released prefix is popped — retained size stays
/// O(unacked window) while lseq indexing keeps working.
class SubmitLog {
 public:
  void push(sim::SimTime at) { entries_.push_back(Entry{at, false}); }

  std::optional<sim::SimTime> get(LocalSeq lseq) const {
    if (lseq < base_ || lseq - base_ >= entries_.size()) return std::nullopt;
    return entries_[static_cast<std::size_t>(lseq - base_)].at;
  }

  void release(LocalSeq lseq) {
    if (lseq < base_ || lseq - base_ >= entries_.size()) return;
    entries_[static_cast<std::size_t>(lseq - base_)].released = true;
    while (!entries_.empty() && entries_.front().released) {
      entries_.pop_front();
      ++base_;
    }
  }

  LocalSeq base() const { return base_; }
  std::size_t retained() const { return entries_.size(); }

 private:
  struct Entry {
    sim::SimTime at;
    bool released;
  };
  std::deque<Entry> entries_;
  LocalSeq base_ = 0;  // lseqs below are pruned
};

/// Mobile host: reorder buffer + delivery bookkeeping.
class MhNode {
 public:
  MhNode(NodeId id, NodeId ap) : id_(id), ap_(ap) {}

  NodeId id() const { return id_; }
  NodeId ap() const { return ap_; }
  bool attached() const { return attached_; }
  sim::SimTime last_delivery_at() const { return last_delivery_; }
  std::uint64_t delivered_count() const { return delivered_; }

 private:
  friend class RingNetProtocol;

  NodeId id_;
  NodeId ap_;
  bool attached_ = true;
  bool attach_pending_ = false;  // a complete_attach event is in flight
  MessageQueue mq_{4};  // reorder buffer; tiny retention for dedupe
  std::unordered_set<std::uint64_t> seen_unordered_;
  std::uint64_t delivered_ = 0;
  std::uint64_t ack_gen_ = 0;  // live ack-tick chain (bumps kill old chains)
  sim::SimTime last_delivery_ = sim::SimTime::zero();
  // Multi-group delivery chain (gseq contiguity no longer identifies
  // losses: a hole may just be a message for another group). The serving
  // BR stamps each downlink frame with prev_chain = the chain coordinate
  // (gseq + 1) of the previous frame forwarded to this member, and the MH
  // delivers in chain order: multi_tail_ is the coordinate of the last
  // delivered frame, and out-of-chain arrivals wait in multi_held_ (keyed
  // by their own coordinate) until their predecessor lands.
  GlobalSeq multi_tail_ = 0;
  // lint: map-ok — drained smallest-coordinate-first (begin() is the only
  // candidate whose prev_chain can extend the tail), so the hold buffer
  // needs an ordered walk; residency is bounded by the in-flight window.
  std::map<GlobalSeq, proto::DataMsg> multi_held_;
};

/// Border router / ordering node state.
class BrNode {
 public:
  BrNode(NodeId id, std::size_t mq_retention) : id_(id), mq_(mq_retention) {}

  NodeId id() const { return id_; }
  bool alive() const { return alive_; }
  const GroupView& group_view() const { return view_; }
  MessageQueue& mq() { return mq_; }
  WorkingQueue& wq() { return wq_; }

 private:
  friend class RingNetProtocol;

  struct MemberEvent {
    NodeId mh;
    NodeId ap;  // invalid() == detach
    std::uint64_t seq;
  };

  NodeId id_;
  bool alive_ = true;
  std::deque<proto::DataMsg> staging_;  // waiting for the next tau tick
  WorkingQueue wq_;
  MessageQueue mq_;
  GroupView view_;
  GlobalSeq acked_floor_ = 0;  // gseqs below are subtree-acked in mq_
  std::vector<MemberEvent> pending_membership_;
  sim::SimTime last_hb_from_prev_ = sim::SimTime::zero();
};

/// Poisson handoff process over the MH population.
class MobilityModel {
 public:
  void stop() { running_ = false; }
  bool running() const { return running_; }

 private:
  friend class RingNetProtocol;
  bool running_ = false;
};

class RingNetProtocol {
 public:
  RingNetProtocol(sim::Simulation& sim, ProtocolConfig config);

  /// Arm every periodic process (sources, token, acks, heartbeats,
  /// membership flushes, mobility) starting at the current sim time.
  void start();
  void stop_sources();

  /// Fail a node abruptly (used on BRs: the token-loss scenario).
  void crash_node(NodeId id);

  /// Inject a stale duplicate token at `at` (Multiple-Token scenario).
  void inject_duplicate_token(NodeId at, std::uint64_t epoch);

  /// Scenario hook: hand `mh` off to `target_ap` now (deterministic
  /// mobility for tests/benches). `target_ap == current AP` models a radio
  /// drop and re-attach into the same cell.
  void force_handoff(NodeId mh, NodeId target_ap);

  /// Scenario hook: eject a live BR from the ring as a false-positive
  /// failure detection would (the node itself stays up and merges back on
  /// its next heartbeat).
  void eject_br(NodeId br);

  /// Scenario hook: `mh` leaves its cell (member churn / power-off). The
  /// membership machinery detaches it; sources on the MH park submissions
  /// until a reattach.
  void detach_mh(NodeId mh);

  /// Scenario hook: reattach a churned-out `mh` at `ap` after the usual
  /// hot/cold attach cost. No-op while attached or mid-attach. An absence
  /// longer than the MQ retention window resumes via a gap skip (the
  /// missed range counts as really lost), never a wedge.
  void reattach_mh(NodeId mh, NodeId ap);

  /// Scenario hook: the active token frame vanishes in transit (WAN loss).
  /// The ring detects custody loss after the heartbeat miss budget and the
  /// leader runs Token-Regeneration with a fresh epoch (§4 Token-Loss).
  void lose_token();

  /// Scenario hook (multi-group mode): `mh` joins / leaves group `g` at
  /// runtime. Join takes effect for messages ordered after the call; leave
  /// stops future forwarding while already-chained frames still deliver.
  /// No-ops in the single-group degenerate deployment. Like the other
  /// membership mutators these must run in the serialized global context
  /// under sharding (the scenario engine schedules them there).
  void join_group(NodeId mh, GroupId g);
  void leave_group(NodeId mh, GroupId g);

  /// Scenario hook (multi-group mode): flash-crowd traffic shaping. While
  /// set, every source submits `boost`x faster whenever its next message
  /// targets `g` (destination groups are a pure function of (source, lseq),
  /// so the upcoming message's groups are known before it is drawn).
  /// boost = 1 or an invalid gid resets. Exact no-op while unset.
  void set_group_rate_boost(GroupId g, double boost);

  /// Scenario hook: blackout the wireless cell of `ap` (jamming, backhaul
  /// cut). While set, nothing crosses the AP<->MH radio in either
  /// direction: downlink frames, DeliveryAcks and uplink submissions are
  /// dropped. The gate sits where the wireless hop sits in each path —
  /// uplink at submit time, downlink at arrival — so a frame that cleared
  /// the radio before the window began still travels the wired tree.
  /// Members recover through ack-driven resync once the window lifts.
  void set_cell_blackout(NodeId ap, bool on);
  bool cell_blacked_out(NodeId ap) const {
    return blackout_count_ != 0 && cell_blackout_[ap.index()] != 0;
  }

  const topo::Topology& topology() const { return topo_; }
  const ProtocolConfig& config() const { return config_; }
  BrNode& node(NodeId id) { return brs_[id.index()]; }
  const std::vector<MhNode>& mhs() const { return mhs_; }
  /// Multi-group mode flag and the current membership of one MH (empty in
  /// the degenerate single-group deployment).
  bool multi_group() const { return multi_; }
  const proto::GroupSet& groups_of(NodeId mh) const {
    return mh_groups_[mh.index()];
  }
  MobilityModel& mobility() { return mobility_; }
  const DeliveryLog& deliveries() const { return deliveries_; }

  std::uint64_t total_sent() const {
    return total_sent_.load(std::memory_order_relaxed);
  }
  /// End-to-end latency histogram, merged over execution contexts.
  stats::Histogram lat_hist() const;
  const stats::Histogram& assign_hist() const { return assign_hist_; }
  /// Per-stage message-lifecycle breakdown, merged over execution
  /// contexts; empty unless config.record_spans was set.
  obs::SpanBreakdown span_breakdown() const;

  /// Bounded-memory observability (Theorem 5.1 soak assertions).
  GlobalSeq global_acked_floor() const { return global_acked_floor_; }
  std::size_t archive_retained() const { return assigned_archive_.size(); }
  std::size_t archive_peak() const { return archive_peak_; }
  std::size_t submit_log_retained() const {
    std::size_t n = 0;
    for (const auto& s : sources_) n += s.submit_log.retained();
    return n;
  }
  std::size_t submit_log_peak() const {
    return submit_log_peak_.load(std::memory_order_relaxed);
  }

 private:
  struct SourceState {
    std::uint32_t index;
    NodeId source_id;  // tier-less id carried in DataMsg.source
    NodeId mh;
    LocalSeq next_lseq = 0;
    std::uint64_t gen = 0;  // live tick chain (bumps kill old chains)
    std::deque<proto::DataMsg> parked;  // submitted while detached
    SubmitLog submit_log;  // lseq -> submit time, watermark-pruned
    double weight = 1.0;  // sender_skew rate multiplier (mean 1)
    // MMPP modulating-chain state. Pre-toggled ON with an expired dwell:
    // the first chain advance flips each source into OFF with its own
    // exponential dwell, so runs open idle and burst onsets desynchronize
    // instead of every sender bursting simultaneously at t=0.
    bool mmpp_on = true;
    sim::SimTime mmpp_until = sim::SimTime::zero();  // state dwell deadline
  };

  // --- context routing ----------------------------------------------------
  sim::Domain gdom() const { return sim_.global_domain(); }
  sim::Domain br_domain(NodeId br) const {
    return migrate_ ? static_cast<sim::Domain>(br.index()) : gdom();
  }
  BrNode& br_at(NodeId id) { return brs_[id.index()]; }
  MhNode& mh_at(NodeId id) { return mhs_[id.index()]; }

  // --- wiring -------------------------------------------------------------
  void start_sources();
  void spawn_source_chain(std::size_t idx, sim::SimTime delay);
  void source_tick(std::size_t idx, std::uint64_t gen);
  sim::SimTime next_submit_interval(SourceState& src);
  void submit(SourceState& src, proto::DataMsg msg);
  void uplink_to_br(const proto::DataMsg& msg, NodeId mh);

  // --- ordering -----------------------------------------------------------
  void tau_tick(NodeId br);
  void token_arrive(NodeId br, proto::OrderingToken token);
  void distribute(NodeId origin, const std::vector<proto::DataMsg>& batch);
  void br_receive_ordered(NodeId br, const proto::DataMsg& msg);
  void forward_down(NodeId br, const proto::DataMsg& msg);
  void forward_down_multi(NodeId br, const proto::DataMsg& msg);
  void mh_receive(NodeId mh, const proto::DataMsg& msg, bool retransmission);
  void mh_receive_multi(MhNode& m, const proto::DataMsg& msg);
  void deliver_at_mh(MhNode& node, const proto::DataMsg& msg);
  void record_span(const proto::DataMsg& msg);

  // --- acks / repair ------------------------------------------------------
  void spawn_ack_chain(NodeId mh, sim::SimTime delay);
  void ack_tick(NodeId mh, std::uint64_t gen);
  void br_receive_ack(NodeId br, NodeId mh, GlobalSeq next_expected);
  void br_receive_ack_multi(NodeId br, NodeId mh, GlobalSeq tail);
  /// Chain restart on (re)attach: rebuild the member's delivery chain at
  /// the new BR from the archive, forwarding every retained message whose
  /// destination groups intersect the member's from its watermark up.
  void resync_member_multi(NodeId br, NodeId mh);

  // --- membership ---------------------------------------------------------
  void queue_membership_event(NodeId mh, NodeId ap);
  void membership_flush_tick(NodeId br);
  void membership_relay(NodeId br, std::vector<NodeId> visited,
                        std::vector<BrNode::MemberEvent> events);

  // --- failure handling ---------------------------------------------------
  void heartbeat_tick(NodeId br);
  void handle_br_failure(NodeId dead);
  void rejoin_ring(NodeId br);
  void regenerate_token();

  // --- mobility -----------------------------------------------------------
  void schedule_next_handoff(NodeId mh);
  void perform_handoff(NodeId mh);
  sim::SimTime begin_handoff(NodeId mh, NodeId target_ap);
  sim::SimTime schedule_attach(MhNode& m, NodeId ap, bool hot);
  void detach_from_cell(MhNode& m);
  void complete_attach(NodeId mh, NodeId ap);
  bool ap_is_hot(NodeId ap, NodeId exclude_mh) const;

  // --- helpers ------------------------------------------------------------
  NodeId next_alive_br(NodeId from) const;
  NodeId leader_br() const;
  void rebuild_ring_index();
  sim::SimTime hop_delay(const net::ChannelModel& model, net::LinkKey link,
                         std::uint32_t bytes);
  net::LossProcess& loss_process(net::LinkKey link,
                                 const net::ChannelModel& model);
  sim::SimTime uplink_delay(NodeId mh, std::uint32_t bytes);
  sim::SimTime downlink_delay(NodeId mh, std::uint32_t bytes);
  void note_wq_depth(const BrNode& br);
  void note_submit_log_depth(std::size_t retained);
  void mark_acked(BrNode& br);
  void advance_global_floor();
  void prune_archive();
  void release_submit(const proto::DataMsg& msg);
  const proto::DataMsg* archive_lookup(GlobalSeq gseq) const;
  sim::SimTime archive_stored_at(GlobalSeq gseq) const;
  std::uint32_t data_bytes() const {
    // Envelope tag + DataMsg descriptor (proto::wire_size) + payload.
    return 41 + config_.source.payload_size;
  }
  std::uint32_t data_bytes(const proto::DataMsg& m) const {
    // The multi-group trailing section (count + gid/seq rows + chain link)
    // rides the frame; legacy messages carry no section, so this reduces
    // to data_bytes() byte-for-byte in the single-group deployment.
    if (m.groups.empty()) return data_bytes();
    // Clamped like the codec's encode_body, so the modeled frame size
    // matches what would actually go on the wire.
    return data_bytes() +
           static_cast<std::uint32_t>(
               1 + 12 * std::min(m.groups.size(), proto::kMaxDataGroups) + 8);
  }

  sim::Simulation& sim_;
  ProtocolConfig config_;
  topo::Topology topo_;
  bool migrate_;  // domain-planned simulation: per-subtree contexts exist

  // Pre-interned handles for every metric touched on a per-message or
  // per-tick path: incr/gauge_max through these is a vector index, not a
  // string lookup (see BM_MetricsIncr* in bench_micro for the delta).
  struct MetricIds {
    sim::Metrics::MetricId mh_delivered, acks_sent, retransmits, token_held,
        token_dup_destroyed, token_regenerated, token_dropped, wq_dropped,
        gaps_skipped, gap_skipped_msgs, membership_applied, membership_relayed,
        ring_repairs, ring_rejoins, handoff_count, handoff_hot, handoff_cold,
        archive_pruned, churn_leaves, churn_rejoins, blackout_dropped,
        blackout_uplink_lost, park_dropped, buf_wq_peak, buf_mq_peak,
        buf_archive_peak, buf_submitlog_peak;
  };
  MetricIds mid_;

  static constexpr std::size_t kNoRingPos = static_cast<std::size_t>(-1);

  // Dense per-tier state, indexed by NodeId::index() within each tier.
  std::vector<BrNode> brs_;                      // by BR index
  std::vector<MhNode> mhs_;                      // by MH index
  std::vector<std::vector<NodeId>> br_members_;  // by BR index: attached MHs
  std::vector<GlobalSeq> member_wm_;   // by MH index: next-expected watermark
  std::vector<NodeId> member_br_;      // by MH index: serving BR (invalid =
                                       // not currently a member anywhere)

  // --- multi-group (genuine multicast) state. Only populated when
  // config_.groups.count > 1; the legacy path never touches any of it, so
  // single-group runs stay bit-identical to the pre-group protocol.
  bool multi_ = false;
  std::vector<proto::GroupSet> mh_groups_;  // by MH index: joined groups
  // Per-BR, per-group member slabs (dense gid-1 index). forward_down only
  // walks the slabs of a message's destination groups, so a BR whose
  // subtree has no members of those groups does zero downlink work — the
  // genuineness property bench_groups measures.
  std::vector<std::vector<std::vector<NodeId>>> group_members_;
  // Per-member delivery-chain bookkeeping at the serving BR (all dense by
  // MH index, touched only from the member's owning domain):
  struct FwdEntry {
    GlobalSeq gseq;  // assigned global sequence of the forwarded frame
    GlobalSeq prev;  // chain link it was stamped with (predecessor's gseq+1)
  };
  std::vector<GlobalSeq> member_fwd_tail_;        // last forwarded coord
  std::vector<std::deque<FwdEntry>> member_fwd_log_;  // unacked forwards
  std::vector<GlobalSeq> member_seen_stamp_;  // forward dedupe (gseq+1 tag)
  // Per-group assigned-seq high water (next seq to hand out), maintained at
  // token assignment time in the serialized global context; Token
  // Regeneration restores the counters from it so per-group seqs survive a
  // lost token without a gap or a repeat.
  std::vector<std::uint64_t> group_seq_high_;
  GroupId boost_group_{0};     // flash-crowd target (0 = off)
  double group_boost_ = 1.0;   // submit-rate multiplier for boost_group_

  std::vector<sim::Domain> mh_domain_;  // by MH index: owning exec context
  std::vector<SourceState> sources_;
  std::vector<std::vector<std::uint32_t>> sources_on_mh_;  // by MH index

  std::vector<NodeId> alive_ring_;  // current top ring (repairs shrink it)
  std::vector<std::size_t> ring_pos_;  // by BR index; kNoRingPos = ejected
  std::vector<std::uint32_t> ap_occupancy_;  // by AP index: attached MHs
  std::vector<std::uint8_t> cell_blackout_;  // by AP index
  std::size_t blackout_count_ = 0;
  // Tree-path caches so the per-message delay math never descends the
  // topology's NodeDesc hash map.
  std::vector<NodeId> ap_ag_;  // by AP index: parent AG
  std::vector<NodeId> ap_br_;  // by AP index: subtree BR
  std::vector<NodeId> ag_br_;  // by AG index: parent BR
  MobilityModel mobility_;
  DeliveryLog deliveries_;
  std::vector<stats::Histogram> lat_hists_;  // per ctx; end-to-end, usec
  stats::Histogram assign_hist_;  // submit -> gseq assignment, microseconds
  // Per-ctx lifecycle span histograms (merge-on-read, like lat_hists_);
  // only written when config.record_spans is set.
  std::vector<obs::SpanBreakdown> span_breakdowns_;

  // Per-context loss processes: link keys are dynamic (they include MH
  // ids), so this stays a hash map — but flat and context-local, which
  // keeps the probe in-cache and the draw thread-safe under sharding.
  std::vector<util::FlatHash<net::LinkKey, net::LossProcess>> loss_;
  std::vector<std::uint64_t> membership_seq_;  // by MH index
  std::unordered_set<std::uint64_t> lost_serials_;  // token frames lost in
                                                    // transit (lose_token)
  // Every assigned message not yet pruned (+ assignment time) — the
  // stand-in for fetching a missing copy from a peer ordering node's MQ
  // when a BR has a hole (e.g. it was wrongly ejected from the ring).
  // Gseqs are assigned contiguously, so the archive is a base-offset deque:
  // entry for gseq g lives at index (g - archive_base_). Entries below
  // (global acked floor - archive_retention) are pruned from the front.
  struct ArchiveEntry {
    proto::DataMsg msg;
    sim::SimTime assigned_at;
  };
  std::deque<ArchiveEntry> assigned_archive_;
  GlobalSeq archive_base_ = 0;  // gseq of assigned_archive_.front()
  GlobalSeq global_acked_floor_ = 0;  // min acked_floor_ over alive BRs
  std::size_t archive_peak_ = 0;
  std::atomic<std::size_t> submit_log_peak_{0};

  std::atomic<std::uint64_t> total_sent_{0};
  bool sources_running_ = false;
  bool started_ = false;

  // Token custody (simulator-level ground truth used for loss detection).
  std::uint64_t active_token_serial_ = 1;
  std::uint64_t next_token_serial_ = 2;
  std::uint64_t current_epoch_ = 1;
  NodeId token_custodian_ = NodeId::invalid();
  bool token_lost_ = false;
  bool regen_pending_ = false;
  GlobalSeq max_assigned_gseq_ = 0;
  bool any_assigned_ = false;
};

}  // namespace ringnet::core
