#pragma once
// Non-blocking UDP socket transport: one IPv4 datagram socket per node,
// sendto/recvfrom with the runtime framing, poll()-based bounded receive.
// Binding with port 0 takes an ephemeral port (the orchestrator builds the
// address book from the actual bound ports, so parallel CI runs never
// collide); a fixed port plus SO_REUSEADDR supports the daemon's static
// port scheme and rebinding after a node restart.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/transport.hpp"

namespace ringnet::runtime {

class UdpTransport final : public Transport {
 public:
  /// Binds host:port at construction; throws std::runtime_error when the
  /// socket cannot be created or bound. port 0 = ephemeral.
  UdpTransport(NodeId self, std::shared_ptr<const AddressBook> book,
               std::uint16_t port = 0, std::uint32_t host = kLoopbackHost);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// The actual bound endpoint (resolves ephemeral ports).
  Endpoint local_endpoint() const { return local_; }

  /// Close and re-bind (node-restart path). With port 0 the old port is
  /// reused, so peers' address books stay valid across the restart.
  void rebind(std::uint16_t port = 0);

  bool send(NodeId to, const std::vector<std::uint8_t>& bytes) override;
  std::optional<Datagram> recv(std::int64_t timeout_us) override;

 private:
  void open_and_bind(std::uint16_t port);

  std::shared_ptr<const AddressBook> book_;
  std::uint32_t host_;
  Endpoint local_;
  int fd_ = -1;
  std::vector<std::uint8_t> rx_buf_;
};

}  // namespace ringnet::runtime
