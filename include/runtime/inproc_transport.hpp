#pragma once
// In-process transport twin: the channel-model counterpart of UdpTransport
// for deterministic runtime tests. An InProcNet owns one mailbox per node;
// send() appends to the destination mailbox under its mutex and recv()
// blocks on its condition variable. A drop hook lets tests script losses
// (e.g. "lose the first token frame BR0 forwards") and so exercise the
// wall-clock watchdog paths that never fire on a quiet loopback.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "runtime/transport.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace ringnet::runtime {

class InProcTransport;

/// The shared "wire": mailboxes for every registered node. Register every
/// node before starting any loop; the mailbox map is not resized after.
class InProcNet {
 public:
  /// Decide frame fate: return true to drop. Called on the sender's thread.
  /// Install before any loop starts; not synchronized against send().
  using DropHook = std::function<bool(NodeId from, NodeId to,
                                      const Datagram& d)>;

  std::unique_ptr<InProcTransport> attach(NodeId id);

  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

 private:
  friend class InProcTransport;

  struct Mailbox {
    util::Mutex mu;
    util::CondVar cv;
    std::deque<Datagram> queue RN_GUARDED_BY(mu);
  };

  bool deliver(NodeId from, NodeId to, Datagram d);

  std::unordered_map<NodeId, std::unique_ptr<Mailbox>> boxes_;
  DropHook drop_hook_;
};

class InProcTransport final : public Transport {
 public:
  bool send(NodeId to, const std::vector<std::uint8_t>& bytes) override {
    auto d = unframe(bytes.data(), bytes.size());
    if (!d) {
      ++send_failures_;
      return false;
    }
    if (!net_->deliver(self_, to, std::move(*d))) {
      ++send_failures_;
      return false;
    }
    ++sent_;
    return true;
  }

  std::optional<Datagram> recv(std::int64_t timeout_us) override {
    util::MutexLock lock(box_->mu);
    if (box_->queue.empty()) {
      (void)box_->cv.wait_for_us(box_->mu, timeout_us);
    }
    if (box_->queue.empty()) return std::nullopt;
    Datagram d = std::move(box_->queue.front());
    box_->queue.pop_front();
    ++received_;
    return d;
  }

 private:
  friend class InProcNet;

  InProcTransport(NodeId self, InProcNet* net, InProcNet::Mailbox* box)
      : Transport(self), net_(net), box_(box) {}

  InProcNet* net_;
  InProcNet::Mailbox* box_;
};

inline std::unique_ptr<InProcTransport> InProcNet::attach(NodeId id) {
  auto& slot = boxes_[id];
  if (!slot) slot = std::make_unique<Mailbox>();
  return std::unique_ptr<InProcTransport>(
      new InProcTransport(id, this, slot.get()));
}

inline bool InProcNet::deliver(NodeId from, NodeId to, Datagram d) {
  const auto it = boxes_.find(to);
  if (it == boxes_.end()) return false;
  if (drop_hook_ && drop_hook_(from, to, d)) return true;  // sent, "lost"
  Mailbox& box = *it->second;
  {
    util::MutexLock lock(box.mu);
    box.queue.push_back(std::move(d));
  }
  box.cv.notify_one();
  return true;
}

}  // namespace ringnet::runtime
