#pragma once
// Runtime role state machines: the protocol's node roles (border router /
// ordering node, access proxy, mobile host, supervisor) implemented over
// the Transport seam with wall-clock watchdog timers, mirroring the
// simulator's timeout logic — token-forward ARQ per ring hop, leader
// token-regeneration on custody loss, ack-driven downlink retransmission
// with MQ-floor gap skips, and uplink resubmission until assignment.
//
// Every method runs on the owning NodeLoop's protocol thread; reading a
// node's state from outside is safe only after the loop has been stopped
// (NodeLoop::stop joins). All time comes from the injected util::Clock via
// the loop — no direct wall-clock reads (RN006 boundary).

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "core/types.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "proto/messages.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/transport.hpp"
#include "stats/histogram.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace ringnet::runtime {

// RN007-ok: control-plane tag for acks/membership/token lineage frames, not
// an ordering-state index; data-plane groups come from core::GroupConfig.
constexpr GroupId kRuntimeGroup{1};
constexpr std::int64_t kNeverUs = -(std::int64_t{1} << 62);

/// Wall-clock timer settings, the runtime counterparts of the sim's
/// ProtocolOptions durations. scale_timers() stretches every duration
/// uniformly (TSan legs run 5-15x slower than real time).
struct RuntimeOptions {
  std::int64_t token_hold_us = 200;
  std::int64_t ack_period_us = 10'000;
  std::int64_t heartbeat_period_us = 25'000;
  int heartbeat_miss_limit = 4;
  std::int64_t retx_timeout_us = 30'000;
  int max_retx = 10;
  std::size_t mq_retention = 8192;
  std::int64_t handshake_resend_us = 50'000;
  // Record message-lifecycle span timestamps (uplink-rx / assignment /
  // relay arrival at the BR, submit / delivery at the MH) so the
  // orchestrator can join them into a per-stage latency breakdown after
  // the loops stop. Off by default: span logs grow with message count.
  bool record_spans = false;

  /// Custody-loss budget before the leader regenerates the token. Must
  /// exceed the forward-ARQ give-up budget ((max_retx+1) * retx_timeout):
  /// regenerating while some ring node is still retransmitting the old
  /// token puts two live tokens on the ring, and their assignments can
  /// bind one gseq to two different messages.
  std::int64_t token_regen_timeout_us() const {
    return heartbeat_miss_limit * heartbeat_period_us +
           (max_retx + 2) * retx_timeout_us;
  }

  void scale_timers(double f);
};

/// Per-node counters, aggregated by the orchestrator after the loops stop.
struct RuntimeCounters {
  std::uint64_t tokens_held = 0;
  std::uint64_t token_regenerated = 0;
  std::uint64_t token_dup_destroyed = 0;
  std::uint64_t token_retx = 0;
  std::uint64_t token_dropped = 0;
  std::uint64_t retransmits = 0;       // downlink resends from the MQ
  std::uint64_t floor_advances = 0;    // member pushed past a pruned MQ
  std::uint64_t duplicates = 0;        // dropped duplicate frames
  std::uint64_t acks_sent = 0;
  std::uint64_t uplink_retx = 0;       // resubmissions awaiting assignment
  std::uint64_t uplink_dropped = 0;    // resubmission budget exhausted
  std::uint64_t really_lost = 0;       // gap-skipped deliveries (per MH)
  std::uint64_t gaps_skipped = 0;
  std::uint64_t malformed = 0;         // undecodable proto payloads

  void merge(const RuntimeCounters& o);
};

/// Interned handles into a role's obs::Metrics registry — one per
/// RuntimeCounters field, under the same names the sim oracle reports
/// (obs/names.hpp), so counters line up across the two engines. Roles
/// increment through these on the protocol thread; the daemon reads the
/// atomic registry live from its main thread.
struct RuntimeMetricIds {
  obs::Metrics::MetricId tokens_held = 0;
  obs::Metrics::MetricId token_regenerated = 0;
  obs::Metrics::MetricId token_dup_destroyed = 0;
  obs::Metrics::MetricId token_retx = 0;
  obs::Metrics::MetricId token_dropped = 0;
  obs::Metrics::MetricId retransmits = 0;
  obs::Metrics::MetricId floor_advances = 0;
  obs::Metrics::MetricId duplicates = 0;
  obs::Metrics::MetricId acks_sent = 0;
  obs::Metrics::MetricId uplink_retx = 0;
  obs::Metrics::MetricId uplink_dropped = 0;
  obs::Metrics::MetricId really_lost = 0;
  obs::Metrics::MetricId gaps_skipped = 0;
  obs::Metrics::MetricId malformed = 0;

  void intern_all(obs::Metrics& m);
};

/// One gseq assignment witnessed by the ordering BR (record_spans mode):
/// when the uplink first arrived and when the token pass bound its gseq.
/// Joined post-run with the MH submit/deliver times and the delivering
/// BR's relay-arrival map into an obs::SpanBreakdown.
struct SpanAssignRec {
  NodeId source;
  LocalSeq lseq = 0;
  GlobalSeq gseq = 0;
  std::int64_t uplink_rx_us = 0;
  std::int64_t assigned_us = 0;
};

/// One delivery record, the runtime twin of core::DeliveryLog's entries.
struct DeliveredRec {
  GlobalSeq gseq = 0;
  NodeId source;
  LocalSeq lseq = 0;
};

/// Base-offset buffer of ordered messages keyed by contiguous GlobalSeq:
/// the BR's MQ retention window and the MH's reorder buffer. Slots below
/// base() have been pruned (BR) or delivered (MH).
class GseqBuffer {
 public:
  GlobalSeq base() const { return base_; }
  GlobalSeq end() const { return base_ + slots_.size(); }

  bool contains(GlobalSeq g) const {
    return g >= base_ && g < end() && slots_[idx(g)].has_value();
  }

  const proto::DataMsg* find(GlobalSeq g) const {
    if (!contains(g)) return nullptr;
    return &*slots_[idx(g)];
  }

  /// false when g is below base (stale) or already present (duplicate).
  bool insert(GlobalSeq g, const proto::DataMsg& msg) {
    if (g < base_) return false;
    if (g >= end()) slots_.resize(static_cast<std::size_t>(g - base_) + 1);
    if (slots_[idx(g)].has_value()) return false;
    slots_[idx(g)] = msg;
    return true;
  }

  /// Drop slots (filled or holes) from the front until at most `retention`
  /// remain. Returns how many were dropped.
  std::size_t prune_to(std::size_t retention) {
    std::size_t dropped = 0;
    while (slots_.size() > retention) {
      slots_.pop_front();
      ++base_;
      ++dropped;
    }
    return dropped;
  }

  /// Advance base to `g`, discarding everything below (MH delivery prune).
  void drop_below(GlobalSeq g) {
    while (base_ < g && !slots_.empty()) {
      slots_.pop_front();
      ++base_;
    }
    if (base_ < g) base_ = g;
  }

 private:
  std::size_t idx(GlobalSeq g) const {
    return static_cast<std::size_t>(g - base_);
  }

  std::deque<std::optional<proto::DataMsg>> slots_;
  GlobalSeq base_ = 0;
};

// ---------------------------------------------------------------------------
// Border router / ordering node

struct BrConfig {
  NodeId self;
  NodeId ss;
  std::vector<NodeId> ring;       // full top ring in index order
  std::vector<NodeId> own_aps;    // APs in this BR's subtree
  std::vector<NodeId> members;    // boot membership: MHs in this subtree
  std::vector<NodeId> member_ap;  // parallel to members: serving AP
  // Multi-group mode (groups.multi()): member group tables are derived from
  // core::member_groups so the sim oracle and the runtime agree byte-for-
  // byte on who receives what.
  core::GroupConfig groups;
  RuntimeOptions opts;
};

class BrRuntime final : public RuntimeNode {
 public:
  BrRuntime(BrConfig cfg, Transport& tr);

  void on_start(std::int64_t now_us) override;
  void on_datagram(const Datagram& d, std::int64_t now_us) override;
  void on_tick(std::int64_t now_us) override;

  // Post-stop inspection. counters() assembles the struct from the atomic
  // registry, so it is also safe to sample live (values may be mid-burst).
  RuntimeCounters counters() const;
  std::uint64_t assigned() const { return assigned_; }
  GlobalSeq mq_floor() const { return mq_.base(); }
  std::uint64_t epoch() const { return epoch_; }

  /// Unified metric registry (atomic — safe to read while the loop runs).
  const obs::Metrics& metrics() const { return metrics_; }
  /// Flight recorder (internally synchronized — safe to poll/dump live).
  obs::FlightRecorder& flight_recorder() { return fr_; }
  const obs::FlightRecorder& flight_recorder() const { return fr_; }

  // record_spans bookkeeping, valid after stop.
  const std::vector<SpanAssignRec>& span_assigned() const {
    return span_assigned_;
  }
  const std::unordered_map<std::uint64_t, std::int64_t>& span_relay_rx_us()
      const {
    return span_relay_rx_us_;
  }

  /// Safe to poll while the loop runs (daemon exit condition).
  bool stop_seen() const { return stop_seen_.load(std::memory_order_acquire); }

 private:
  struct SourceIn {
    LocalSeq next_expected = 0;
    std::unordered_map<LocalSeq, proto::DataMsg> pending;
  };
  // One link of a member's delivery chain: the forwarded message's gseq and
  // the chain coordinate (gseq + 1) of its predecessor on this member's
  // chain. Entries are appended in forwarding order, so coordinates rise
  // strictly along the log.
  struct FwdEntry {
    GlobalSeq gseq = 0;
    GlobalSeq prev = 0;
  };
  struct Member {
    NodeId ap = NodeId::invalid();
    // Acked watermark. Legacy mode: next expected gseq. Multi-group mode:
    // the member's chain tail — both live in the same gseq+1 coordinate
    // space, so the stall/resync machinery is shared.
    GlobalSeq next_expected = 0;
    GlobalSeq prev_ack_wm = 0;  // watermark of the previous ack (stall check)
    std::uint32_t stalled_acks = 0;  // consecutive acks with no progress
    std::int64_t last_resend_us = kNeverUs;
    // Multi-group chain state: memberships, the coordinate of the newest
    // chain-forwarded message, and the unacked chain links.
    proto::GroupSet groups;
    GlobalSeq fwd_tail = 0;
    std::deque<FwdEntry> fwd_log;
  };
  struct TokenKey {
    std::uint64_t epoch = 0, serial = 0, rotation = 0;
    bool valid = false;
  };
  struct AwaitedAck {
    bool active = false;
    std::uint64_t serial = 0, rotation = 0;
    std::vector<std::uint8_t> frame_bytes;
    int attempts = 0;
    std::int64_t next_resend_us = 0;
  };

  bool leader() const { return cfg_.ring.front() == cfg_.self; }
  bool multi() const { return cfg_.groups.multi(); }
  NodeId next_br() const;
  void handle_proto(const Datagram& d, std::int64_t now_us);
  void handle_uplink(const proto::DataMsg& msg, std::int64_t now_us);
  void ack_uplink(NodeId source, const SourceIn& si);
  void store_and_forward_ordered(const proto::DataMsg& msg,
                                 std::int64_t now_us);
  void forward_chain(const proto::DataMsg& msg);
  void handle_token(proto::OrderingToken token, NodeId from,
                    std::int64_t now_us);
  void accept_token(proto::OrderingToken token, std::int64_t now_us);
  void assign_staged(std::int64_t now_us);
  void release_token(std::int64_t now_us);
  void regenerate_token(std::int64_t now_us);
  void handle_member_ack(const proto::DeliveryAckMsg& ack,
                         std::int64_t now_us);
  void handle_chain_ack(Member& m, NodeId member, GlobalSeq tail,
                        std::int64_t now_us);
  void request_pull(GlobalSeq g, std::int64_t now_us);

  BrConfig cfg_;
  Transport& tr_;
  obs::Metrics metrics_;
  RuntimeMetricIds mid_;
  obs::FlightRecorder fr_;
  // record_spans mode: assignment records and first ordered arrival of
  // each gseq in this BR's MQ (relay endpoint for its subtree's members).
  std::vector<SpanAssignRec> span_assigned_;
  std::unordered_map<std::uint64_t, std::int64_t> span_relay_rx_us_;

  std::uint64_t epoch_ = 1;
  std::uint64_t next_serial_ = 2;  // regeneration lineage (initial token: 1)
  std::deque<proto::DataMsg> staging_;
  std::unordered_map<std::uint32_t, SourceIn> uplink_;
  GseqBuffer mq_;
  GlobalSeq max_seen_gseq_ = 0;
  bool any_seen_ = false;
  std::uint64_t assigned_ = 0;
  std::unordered_map<std::uint32_t, Member> members_;
  std::int64_t last_pull_us_ = kNeverUs;  // peer-pull request rate limit
  // Multi-group mode: next gseq to chain-forward. Chain links must rise
  // monotonically per member, so forwarding walks the MQ contiguously and
  // out-of-order peer distributions wait for their hole to fill.
  GlobalSeq chain_next_ = 0;
  // Next per-group sequence to seed into a regenerated token.
  std::unordered_map<std::uint32_t, std::uint64_t> group_seq_high_;

  bool has_token_ = false;
  proto::OrderingToken token_;
  std::int64_t release_deadline_us_ = 0;
  std::int64_t last_token_seen_us_ = 0;
  TokenKey last_rx_key_;
  AwaitedAck await_;

  std::uint64_t hb_beat_ = 0;
  std::int64_t next_hb_us_ = 0;
  bool start_seen_ = false;
  std::atomic<bool> stop_seen_{false};  // polled by the daemon's main thread
  std::int64_t next_ready_us_ = 0;
};

// ---------------------------------------------------------------------------
// Access proxy

struct ApConfig {
  NodeId self;
  NodeId br;
  NodeId ss;
  std::vector<NodeId> attached;  // boot membership of this cell
  RuntimeOptions opts;
};

class ApRuntime final : public RuntimeNode {
 public:
  ApRuntime(ApConfig cfg, Transport& tr);

  void on_start(std::int64_t now_us) override;
  void on_datagram(const Datagram& d, std::int64_t now_us) override;
  void on_tick(std::int64_t now_us) override;

  RuntimeCounters counters() const;
  const obs::Metrics& metrics() const { return metrics_; }
  obs::FlightRecorder& flight_recorder() { return fr_; }
  const obs::FlightRecorder& flight_recorder() const { return fr_; }

  /// Safe to poll while the loop runs (daemon exit condition).
  bool stop_seen() const { return stop_seen_.load(std::memory_order_acquire); }

 private:
  ApConfig cfg_;
  Transport& tr_;
  obs::Metrics metrics_;
  RuntimeMetricIds mid_;
  obs::FlightRecorder fr_;
  std::vector<NodeId> attached_;
  std::unordered_set<std::uint32_t> attached_set_;
  bool start_seen_ = false;
  std::atomic<bool> stop_seen_{false};  // polled by the daemon's main thread
  std::int64_t next_ready_us_ = 0;
};

// ---------------------------------------------------------------------------
// Mobile host

struct MhConfig {
  NodeId self;
  NodeId source_id;  // plain id carried in DataMsg.source (matches the sim)
  NodeId ap;
  NodeId ss;
  double rate_hz = 50.0;
  std::uint32_t msgs_to_send = 0;   // count-bounded source; 0 = no source
  std::uint64_t expected_total = 0;  // deliveries before reporting Done
  std::uint32_t payload_size = 64;
  std::int64_t submit_phase_us = 0;  // desynchronizes source onsets
  // Multi-group mode: destination sets come from core::dest_groups so the
  // runtime submits exactly the workload the sim oracle replays.
  core::GroupConfig groups;
  RuntimeOptions opts;
};

class MhRuntime final : public RuntimeNode {
 public:
  MhRuntime(MhConfig cfg, Transport& tr);

  void on_start(std::int64_t now_us) override;
  void on_datagram(const Datagram& d, std::int64_t now_us) override;
  void on_tick(std::int64_t now_us) override;

  // Post-stop inspection. counters() assembles the struct from the atomic
  // registry, so it is also safe to sample live (values may be mid-burst).
  RuntimeCounters counters() const;
  const std::vector<DeliveredRec>& deliveries() const { return log_; }
  std::uint64_t delivered_count() const { return delivered_; }
  std::uint64_t submitted_count() const { return next_lseq_; }
  const std::vector<std::int64_t>& latencies_us() const { return lat_us_; }

  /// Unified metric registry (atomic — safe to read while the loop runs).
  const obs::Metrics& metrics() const { return metrics_; }
  /// Flight recorder (internally synchronized — safe to poll/dump live).
  obs::FlightRecorder& flight_recorder() { return fr_; }
  const obs::FlightRecorder& flight_recorder() const { return fr_; }
  /// Mutex-guarded live latency snapshot; safe to poll while the loop runs
  /// (the daemon's periodic stats frame quotes its quantiles).
  stats::Histogram latency_hist() const;

  // record_spans bookkeeping, valid after stop: (lseq, submit time) pairs
  // and per-delivery times parallel to deliveries().
  const std::vector<std::pair<std::uint64_t, std::int64_t>>& span_submits()
      const {
    return span_submits_;
  }
  const std::vector<std::int64_t>& deliver_times_us() const {
    return deliver_times_us_;
  }

  /// Safe to poll while the loop runs (daemon exit condition).
  bool stop_seen() const { return stop_seen_.load(std::memory_order_acquire); }

 private:
  struct PendingSubmit {
    proto::DataMsg msg;
    std::int64_t submitted_us = 0;
    std::int64_t last_send_us = 0;
    int attempts = 0;
  };

  void submit_one(std::int64_t now_us);
  void receive_ordered(const proto::DataMsg& msg, std::int64_t now_us);
  void receive_chain(const proto::DataMsg& msg, std::int64_t now_us);
  void deliver(const proto::DataMsg& msg, std::int64_t now_us);
  void record_latency(std::int64_t lat_us);
  void gap_skip_to(GlobalSeq floor, std::int64_t now_us);
  void send_ack();

  MhConfig cfg_;
  Transport& tr_;
  obs::Metrics metrics_;
  RuntimeMetricIds mid_;
  obs::FlightRecorder fr_;
  mutable util::Mutex lat_mu_;
  stats::Histogram live_lat_ RN_GUARDED_BY(lat_mu_);
  // record_spans mode: submit stamps and delivery stamps (parallel to log_).
  std::vector<std::pair<std::uint64_t, std::int64_t>> span_submits_;
  std::vector<std::int64_t> deliver_times_us_;

  bool start_seen_ = false;
  std::atomic<bool> stop_seen_{false};  // polled by the daemon's main thread
  std::int64_t next_ready_us_ = 0;
  std::int64_t period_us_ = 0;
  std::int64_t next_submit_us_ = kNeverUs;
  LocalSeq next_lseq_ = 0;
  std::deque<PendingSubmit> pending_;
  // Multi-group latency bookkeeping: the submit-ack prunes pending_ as soon
  // as the BR accepts the uplink (the source need not be a destination of
  // its own messages), so submit->delivery timing keeps its own lseq map.
  // Bounded by the scripted msgs_to_send.
  std::unordered_map<std::uint64_t, std::int64_t> submit_times_us_;

  GseqBuffer buf_;
  GlobalSeq next_expected_ = 0;
  // Multi-group chain state: tail coordinate (gseq + 1 of the last chain
  // delivery) and out-of-chain arrivals held keyed by their own coordinate.
  GlobalSeq multi_tail_ = 0;
  std::map<GlobalSeq, proto::DataMsg> held_;
  std::vector<DeliveredRec> log_;
  std::uint64_t delivered_ = 0;
  std::vector<std::int64_t> lat_us_;
  std::int64_t next_ack_us_ = 0;
  bool done_ = false;
  std::int64_t next_done_us_ = 0;
};

// ---------------------------------------------------------------------------
// Supervisor (SS): boot barrier, liveness sink, teardown fan-out. Its
// atomics are the one intentional exception to the "inspect after stop"
// rule — the orchestrator polls them while the deployment runs.

struct SsConfig {
  NodeId self;
  std::vector<NodeId> all_nodes;  // broadcast targets (everything but SS)
  std::size_t expected_ready = 0;
  std::size_t expected_done = 0;
  RuntimeOptions opts;
};

class SsRuntime final : public RuntimeNode {
 public:
  SsRuntime(SsConfig cfg, Transport& tr);

  void on_start(std::int64_t now_us) override;
  void on_datagram(const Datagram& d, std::int64_t now_us) override;
  void on_tick(std::int64_t now_us) override;

  bool started() const { return started_.load(std::memory_order_acquire); }
  std::size_t done_count() const {
    return done_count_.load(std::memory_order_acquire);
  }
  bool all_done() const {
    return done_count() >= cfg_.expected_done;
  }
  void request_stop() {
    stop_requested_.store(true, std::memory_order_release);
  }

  /// Unified metric registry (atomic — safe to read while the loop runs).
  const obs::Metrics& metrics() const { return metrics_; }
  /// Flight recorder (internally synchronized — safe to poll/dump live).
  obs::FlightRecorder& flight_recorder() { return fr_; }
  const obs::FlightRecorder& flight_recorder() const { return fr_; }

 private:
  void broadcast(ControlMsg msg);

  SsConfig cfg_;
  Transport& tr_;
  obs::Metrics metrics_;
  obs::Metrics::MetricId mid_heartbeats_ = 0;
  obs::FlightRecorder fr_;
  std::unordered_set<std::uint32_t> ready_;
  std::unordered_set<std::uint32_t> done_;
  std::unordered_map<std::uint32_t, std::uint64_t> last_beat_;
  std::atomic<bool> started_{false};
  std::atomic<std::size_t> done_count_{0};
  std::atomic<bool> stop_requested_{false};
  std::int64_t next_bcast_us_ = 0;
};

}  // namespace ringnet::runtime
