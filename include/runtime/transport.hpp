#pragma once
// Transport seam for the real-socket runtime. A Transport moves framed
// datagrams between named nodes; the protocol-side runtime code is written
// against this interface only, so the same node state machines run over
// real UDP sockets (UdpTransport), the in-process channel-model twin
// (InProcTransport — the deterministic stand-in for the simulator's
// channels), or anything else.
//
// Framing: every datagram carries a fixed header in front of the payload —
//   [0..3]  magic 0x31474E52 ("RNG1", little-endian)
//   [4]     kind (0 = proto::Message payload, 1 = runtime control)
//   [5..8]  source NodeId
//   [9..12] relay target NodeId (invalid = none; an AP forwards a relayed
//           downlink frame to exactly this member instead of the cell)
//   [13..16] payload length
//   [17..20] FNV-1a checksum over the payload
// unframe() validates magic, length consistency and checksum, and returns
// nullopt on any mismatch — a truncated or bit-flipped datagram is dropped
// at the transport edge, never handed to the protocol decoder.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "proto/messages.hpp"

namespace ringnet::runtime {

/// IPv4 endpoint in host byte order.
struct Endpoint {
  std::uint32_t host = 0;  // e.g. 0x7F000001 for 127.0.0.1
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.host == b.host && a.port == b.port;
  }
};

constexpr std::uint32_t kLoopbackHost = 0x7F000001u;

/// NodeId -> Endpoint map. Built once by the orchestrator (or from the
/// daemon's static port scheme) before any node starts, then read-only —
/// which is what makes sharing it across node threads safe.
class AddressBook {
 public:
  void set(NodeId id, Endpoint ep) { map_[id] = ep; }

  std::optional<Endpoint> find(NodeId id) const {
    const auto it = map_.find(id);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<NodeId, Endpoint> map_;
};

enum class FrameKind : std::uint8_t { Proto = 0, Control = 1 };

/// One received datagram, already unframed and checksum-verified.
struct Datagram {
  NodeId src;
  NodeId relay = NodeId::invalid();
  FrameKind kind = FrameKind::Proto;
  std::vector<std::uint8_t> payload;
};

constexpr std::size_t kFrameHeaderBytes = 21;
constexpr std::size_t kMaxDatagramBytes = 60000;  // stays under one UDP frame

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size);

/// Wrap `payload` in the frame header.
std::vector<std::uint8_t> frame(NodeId src, FrameKind kind,
                                const std::vector<std::uint8_t>& payload,
                                NodeId relay = NodeId::invalid());

/// Validate and strip the frame header; nullopt on truncation, bad magic,
/// length mismatch, oversize, or checksum failure.
std::optional<Datagram> unframe(const std::uint8_t* data, std::size_t size);

// ---------------------------------------------------------------------------
// Runtime control vocabulary (orchestration, not protocol): the supervisor
// handshake that boots a deployment and tears it down.

enum class ControlOp : std::uint8_t {
  Ready = 1,  // node -> SS: event loop up, resent until Start is seen
  Start = 2,  // SS -> all: begin sources (idempotent, rebroadcast)
  Stop = 3,   // SS -> all: stop sources / wind down
  Done = 4,   // MH -> SS: delivered everything expected (arg = count)
};

struct ControlMsg {
  ControlOp op = ControlOp::Ready;
  std::uint64_t arg = 0;
};

std::vector<std::uint8_t> encode_control(const ControlMsg& msg);
std::optional<ControlMsg> decode_control(const std::uint8_t* data,
                                         std::size_t size);

// ---------------------------------------------------------------------------
// Transport interface

class Transport {
 public:
  virtual ~Transport() = default;

  NodeId self() const { return self_; }

  /// Send pre-framed bytes to `to`. Non-blocking, UDP semantics: false
  /// means the frame was dropped locally (unknown address, full socket
  /// buffer); true is no delivery guarantee.
  virtual bool send(NodeId to, const std::vector<std::uint8_t>& bytes) = 0;

  /// Block up to timeout_us for one datagram; nullopt on timeout (and on
  /// malformed frames, which are counted and dropped).
  virtual std::optional<Datagram> recv(std::int64_t timeout_us) = 0;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t dropped_malformed() const { return dropped_malformed_; }
  std::uint64_t send_failures() const { return send_failures_; }

  // Framing conveniences.
  bool send_msg(NodeId to, const proto::Message& msg,
                NodeId relay = NodeId::invalid()) {
    return send(to, frame(self_, FrameKind::Proto, proto::encode(msg), relay));
  }
  bool send_control(NodeId to, ControlMsg ctl) {
    return send(to, frame(self_, FrameKind::Control, encode_control(ctl)));
  }

 protected:
  explicit Transport(NodeId self) : self_(self) {}

  NodeId self_;
  // Touched by the owning node's rx/protocol threads only; reads from the
  // orchestrator happen after the loops have joined.
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_malformed_ = 0;
  std::uint64_t send_failures_ = 0;
};

}  // namespace ringnet::runtime
