#pragma once
// Loopback orchestrator: boots a full Figure-1 deployment (SS + BR ring +
// APs + MH cells) as real processes-in-miniature — one threaded NodeLoop
// per node over UDP sockets on 127.0.0.1 (or the in-process transport twin
// for deterministic tests) — runs a count-bounded scripted workload through
// the supervisor handshake, and collects per-MH delivery logs plus
// aggregated counters for comparison against the simulator oracle.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "obs/span.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/node.hpp"

namespace ringnet::runtime {

struct LoopbackSpec {
  // Hierarchy shape (no AG tier in the runtime: BRs serve their APs
  // directly, the degenerate ags_per_br == 1 configuration of the sim).
  std::size_t num_brs = 2;
  std::size_t aps_per_br = 2;
  std::size_t mhs_per_ap = 8;
  // Workload: every MH hosts one count-bounded source.
  double rate_hz = 50.0;
  std::uint32_t msgs_per_source = 20;
  std::uint32_t payload_size = 64;
  // Multi-group mode (groups.multi()): memberships and destination sets are
  // derived via core::member_groups / core::dest_groups, so the same spec
  // replayed through the sim oracle produces the identical workload.
  core::GroupConfig groups;
  RuntimeOptions opts;
  // Stretches every watchdog and slows the workload uniformly; >1 keeps
  // sanitizer legs (5-15x slower than real time) inside the same timing
  // envelope. Fold in with scaled() before reading any field.
  double time_scale = 1.0;
  std::int64_t tick_us = 1000;
  std::int64_t boot_timeout_us = 10'000'000;
  std::int64_t run_timeout_us = 120'000'000;
  bool use_udp = true;
  // Honored only when use_udp is false: scripted losses for watchdog tests.
  InProcNet::DropHook drop_hook;

  std::size_t n_aps() const { return num_brs * aps_per_br; }
  std::size_t n_mhs() const { return n_aps() * mhs_per_ap; }
  /// Expected deliveries at MH #m: every message in legacy mode, only the
  /// destined subsequence (membership intersects destination set) in
  /// multi-group mode.
  std::uint64_t expected_at(std::size_t m) const;
  std::uint64_t expected_total() const {
    if (!groups.multi()) {
      return static_cast<std::uint64_t>(n_mhs()) * msgs_per_source;
    }
    std::uint64_t total = 0;
    for (std::size_t m = 0; m < n_mhs(); ++m) total += expected_at(m);
    return total;
  }
};

/// The spec with time_scale folded into every duration (and the source rate
/// slowed to match); idempotent once time_scale is 1.
LoopbackSpec scaled(LoopbackSpec spec);

struct LoopbackResult {
  bool completed = false;  // every MH reported Done before the deadline
  std::size_t n_mh = 0;
  std::uint64_t expected_total = 0;
  // Per-MH delivery sequences (MH global index order) and the same data
  // loaded into a core::DeliveryLog for check_total_order().
  std::vector<std::vector<DeliveredRec>> per_mh;
  std::vector<std::uint64_t> delivered_counts;
  core::DeliveryLog log;
  std::optional<std::string> order_violation;
  std::vector<std::int64_t> latencies_us;  // pooled submit->delivery, all MHs
  RuntimeCounters counters;                // merged over every node
  // Per-stage lifecycle breakdown (spec.opts.record_spans): MH submit and
  // delivery stamps joined with the assigning BR's uplink-rx/assignment
  // records and the delivering BR's relay-arrival map. All node loops share
  // one WallClock, so cross-node differences are well-defined.
  obs::SpanBreakdown spans;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_malformed = 0;
  std::uint64_t send_failures = 0;
};

LoopbackResult run_loopback(const LoopbackSpec& spec);

}  // namespace ringnet::runtime
