#pragma once
// Threaded per-node event loop. Each node runs three threads behind the
// annotated util::sync primitives:
//   rx thread       — blocks in Transport::recv, pushes datagrams into the
//                     inbox
//   timer thread    — a fixed-cadence ticker (default 1ms) that marks a
//                     tick pending, driving every wall-clock watchdog
//   protocol thread — the only thread that touches node state: drains the
//                     inbox into RuntimeNode::on_datagram and fires
//                     RuntimeNode::on_tick when a tick is pending
// The node's role logic is therefore single-threaded by construction; all
// cross-thread state is RN_GUARDED_BY the loop mutex, and reading node
// state from outside is safe only after stop() has joined the threads.

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>

#include "runtime/transport.hpp"
#include "util/annotations.hpp"
#include "util/clock.hpp"
#include "util/sync.hpp"

namespace ringnet::runtime {

/// Role logic driven by a NodeLoop. Every method is called from the
/// protocol thread only, with `now_us` read from the injected clock.
class RuntimeNode {
 public:
  virtual ~RuntimeNode() = default;
  virtual void on_start(std::int64_t now_us) = 0;
  virtual void on_datagram(const Datagram& d, std::int64_t now_us) = 0;
  virtual void on_tick(std::int64_t now_us) = 0;
};

class NodeLoop {
 public:
  NodeLoop(RuntimeNode& node, Transport& transport, util::Clock& clock,
           std::int64_t tick_us = 1000);
  ~NodeLoop();

  NodeLoop(const NodeLoop&) = delete;
  NodeLoop& operator=(const NodeLoop&) = delete;

  void start();
  /// Signal all three threads and join them. Pending inbox datagrams are
  /// drained through the node before the protocol thread exits. Idempotent.
  void stop();

 private:
  void rx_main();
  void timer_main() RN_EXCLUDES(mu_);
  void proto_main() RN_EXCLUDES(mu_);

  RuntimeNode& node_;
  Transport& transport_;
  util::Clock& clock_;
  const std::int64_t tick_us_;

  util::Mutex mu_;
  util::CondVar work_cv_;   // protocol thread: inbox growth, tick, stop
  util::CondVar timer_cv_;  // timer thread: stop only
  std::deque<Datagram> inbox_ RN_GUARDED_BY(mu_);
  bool tick_pending_ RN_GUARDED_BY(mu_) = false;
  bool stopping_ RN_GUARDED_BY(mu_) = false;
  std::atomic<bool> stop_flag_{false};  // rx thread's lock-free exit check

  std::thread rx_thread_;
  std::thread timer_thread_;
  std::thread proto_thread_;
  bool started_ = false;
};

}  // namespace ringnet::runtime
