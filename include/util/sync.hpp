#pragma once
// Annotated synchronization primitives. libstdc++'s <mutex> carries no
// capability attributes, so clang's -Wthread-safety analysis cannot see
// std::mutex acquisitions; these thin wrappers re-export std::mutex /
// std::condition_variable with the annotations attached (the pattern from
// clang's thread-safety documentation). All annotated concurrent code in
// the repo locks through Mutex/MutexLock so the analysis has full
// visibility; std::mutex stays fine in code that is not annotated.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/annotations.hpp"

namespace ringnet::util {

/// std::mutex with the `capability` attribute, so members can be declared
/// RN_GUARDED_BY(mu_) and functions RN_REQUIRES(mu_).
class RN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RN_ACQUIRE() { mu_.lock(); }
  void unlock() RN_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop (CondVar waits on it).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::lock_guard shape). The body locks through
/// native() — invisible to the analysis — because the scoped-capability
/// attributes on the constructor/destructor already declare the effect;
/// routing through the annotated lock()/unlock() would double-count.
class RN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RN_ACQUIRE(mu) : mu_(&mu) {
    mu_->native().lock();
  }
  ~MutexLock() RN_RELEASE() { mu_->native().unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable under MutexLock. wait() must be called with
/// `mu` held (enforced by RN_REQUIRES); it atomically releases the native
/// mutex while blocked and re-acquires before returning, so the capability
/// is held again on return — exactly the invariant the analysis assumes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) RN_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release ownership back to the caller's MutexLock un-unlocked.
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// wait() with a relative deadline: returns true when notified, false on
  /// timeout. Same capability contract as wait(). Used by the runtime's
  /// timer threads (a duration-bounded block is not a wall-clock *read*,
  /// so this stays outside the RN006 boundary).
  bool wait_for_us(Mutex& mu, std::int64_t timeout_us) RN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    const auto status =
        cv_.wait_for(lk, std::chrono::microseconds(timeout_us));
    lk.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ringnet::util
