#pragma once
// Injected time source for the real-socket runtime. Protocol-facing code
// never reads the OS clock directly: it asks a util::Clock, so the sim can
// substitute virtual time and tests can substitute a ManualClock. This
// header (plus runtime/) is the only place allowed to read a wall clock —
// the RN006 lint rule enforces the boundary so core/ stays
// simulation-deterministic.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace ringnet::util {

/// Monotonic microsecond time source. now_us() is relative to an arbitrary
/// per-instance origin; only differences are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::int64_t now_us() = 0;
  virtual void sleep_us(std::int64_t us) = 0;
};

/// The real monotonic clock, rebased to 0 at construction so timestamps
/// stay small and diffable in traces.
class WallClock final : public Clock {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  std::int64_t now_us() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  void sleep_us(std::int64_t us) override {
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Hand-advanced clock for deterministic unit tests of timer logic.
/// sleep_us() advances the clock instead of blocking, so a test driving a
/// watchdog loop runs in virtual time.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t start_us = 0) : now_(start_us) {}

  std::int64_t now_us() override {
    return now_.load(std::memory_order_relaxed);
  }

  void sleep_us(std::int64_t us) override { advance(us); }

  void advance(std::int64_t us) {
    if (us > 0) now_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_;
};

}  // namespace ringnet::util
