#pragma once
// FlatHash: a minimal open-addressing hash map (linear probing, power-of-
// two capacity, ~70% max load). The dynamic-key hot paths the protocol
// keeps after the dense-index flattening — per-link loss processes above
// all — want contiguous probe storage, not node-based buckets: one cache
// line per lookup instead of a pointer chase per collision.
//
// Deliberately small API: find / find_or_emplace / size / clear / reserve.
// No erase (the protocol's dynamic maps only grow), and references are
// invalidated by rehash, so callers must not hold a mapped reference
// across an insertion.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ringnet::util {

inline std::uint64_t hash_mix64(std::uint64_t x) {
  // splitmix64 finalizer: cheap and well-distributed for integer keys.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename K, typename V>
class FlatHash {
 public:
  FlatHash() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = 16;
    while (cap * 7 / 10 < n) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  V* find(const K& key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = index_of(key, mask);
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatHash*>(this)->find(key);
  }

  /// The mapped value for `key`, inserting `V(args...)` if absent.
  template <typename... Args>
  V& find_or_emplace(const K& key, Args&&... args) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = index_of(key, mask);
    while (slots_[i].used) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask;
    }
    slots_[i].used = true;
    slots_[i].key = key;
    slots_[i].value = V(std::forward<Args>(args)...);
    ++size_;
    return slots_[i].value;
  }

 private:
  struct Slot {
    K key{};
    V value{};
    bool used = false;
  };

  static std::size_t index_of(const K& key, std::size_t mask) {
    return static_cast<std::size_t>(
               hash_mix64(static_cast<std::uint64_t>(key))) &
           mask;
  }

  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    size_ = 0;
    for (auto& s : old) {
      if (s.used) find_or_emplace(s.key, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace ringnet::util
