#pragma once
// ThreadPool: a persistent, fully thread-safety-annotated worker pool
// (fixed worker set, FIFO task queue, drain-on-shutdown), plus
// parallel_map(): run `fn(0..n)` across the pool and return the results in
// index order with exception propagation. Each parallel_map call site owns
// a deterministic unit of work (one Simulation per sweep point), so the
// requirements are order preservation and error propagation — not
// scheduling fairness. The pool is the concurrency keystone for the
// threaded runtime and domain-sharded simulation work: all shared state is
// RN_GUARDED_BY the pool mutex and clang builds enforce the discipline
// with -Wthread-safety -Werror (dynamic counterpart: the TSan CI job).

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace ringnet::util {

inline std::size_t default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// Fixed-size worker pool over a FIFO task queue.
///
/// Lifecycle contract (exercised by test_thread_pool):
///  - submit() enqueues a task and returns true; after shutdown has begun
///    it drops the task and returns false (never blocks, never throws).
///  - wait_idle() blocks until every submitted task has completed, then
///    rethrows the first exception any task raised since the previous
///    wait_idle() (tasks continue running after a failure; the error is
///    latched, not cancelling).
///  - The destructor drains: queued tasks still run to completion before
///    the workers exit and join. Errors latched but never collected by a
///    wait_idle() are discarded with the pool.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers = 0) {
    const std::size_t n = workers == 0 ? default_parallelism() : workers;
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueue `task`; false (task dropped) once shutdown has begun.
  bool submit(std::function<void()> task) RN_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (stopping_) return false;
      queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
    return true;
  }

  /// Block until the queue is empty and no task is running; rethrow the
  /// first task exception latched since the last wait_idle().
  void wait_idle() RN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!queue_.empty() || active_ != 0) idle_cv_.wait(mu_);
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

 private:
  void worker_loop() RN_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (queue_.empty() && !stopping_) work_cv_.wait(mu_);
        if (queue_.empty()) return;  // stopping and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      try {
        task();
      } catch (...) {
        MutexLock lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      bool idle = false;
      {
        MutexLock lock(mu_);
        --active_;
        idle = queue_.empty() && active_ == 0;
      }
      if (idle) idle_cv_.notify_all();
    }
  }

  Mutex mu_;
  CondVar work_cv_;  // signalled on: queue growth, shutdown
  CondVar idle_cv_;  // signalled on: pool went idle
  std::deque<std::function<void()>> queue_ RN_GUARDED_BY(mu_);
  std::size_t active_ RN_GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stopping_ RN_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ RN_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // written only in the constructor
};

template <typename R, typename Fn>
std::vector<R> parallel_map(std::size_t n, Fn&& fn,
                            std::size_t max_threads = 0) {
  if (n == 0) return {};
  std::size_t workers = max_threads == 0 ? default_parallelism() : max_threads;
  if (workers > n) workers = n;

  if (workers <= 1) {
    std::vector<R> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }

  // Results land in individually-addressable slots, never a std::vector<R>
  // written concurrently: vector<bool> packs elements into shared words, so
  // parallel writes to adjacent indexes would race (caught by TSan;
  // regression-tested by parallel_map_bool_results in test_util).
  auto slots = std::make_unique<R[]>(n);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  R* const out = slots.get();

  {
    ThreadPool pool(workers);
    for (std::size_t t = 0; t < workers; ++t) {
      pool.submit([&next, &failed, &fn, out, n] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n || failed.load(std::memory_order_relaxed)) return;
          try {
            out[i] = fn(i);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            throw;  // latched by the pool, rethrown from wait_idle()
          }
        }
      });
    }
    pool.wait_idle();  // propagates the first worker exception
  }

  return std::vector<R>(std::make_move_iterator(out),
                        std::make_move_iterator(out + n));
}

}  // namespace ringnet::util
