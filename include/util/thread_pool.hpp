#pragma once
// parallel_map: run `fn(0..n)` across a transient pool of std::threads and
// return the results in index order. Each call site owns a deterministic
// unit of work (one Simulation per sweep point), so the only requirement
// here is order preservation and exception propagation — not scheduling
// fairness.

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ringnet::util {

inline std::size_t default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

template <typename R, typename Fn>
std::vector<R> parallel_map(std::size_t n, Fn&& fn,
                            std::size_t max_threads = 0) {
  std::vector<R> out(n);
  if (n == 0) return out;
  std::size_t workers = max_threads == 0 ? default_parallelism() : max_threads;
  if (workers > n) workers = n;

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        out[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace ringnet::util
