#pragma once
// Clang thread-safety (capability) analysis macros. Under clang with
// -Wthread-safety these expand to the capability attributes, turning
// lock-discipline violations (touching an RN_GUARDED_BY member without its
// mutex, calling an RN_REQUIRES function unlocked, leaking a lock) into
// compile errors; under gcc and other compilers they expand to nothing.
// libstdc++'s <mutex> carries no capability attributes, so annotated code
// locks through util/sync.hpp's Mutex/MutexLock/CondVar wrappers, which
// re-export std::mutex with the attributes attached.
//
// Usage sketch (see util/thread_pool.hpp for the canonical instance):
//
//   std::mutex mu_;
//   std::deque<Task> queue_ RN_GUARDED_BY(mu_);
//   void push_locked(Task t) RN_REQUIRES(mu_);
//   bool idle() const RN_EXCLUDES(mu_);

// NOLINTBEGIN(bugprone-macro-parentheses): the macro arguments are
// attribute tokens (e.g. `capability("mutex")`), not expressions —
// parenthesizing them would break the attribute syntax.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RN_THREAD_ANNOTATION
#define RN_THREAD_ANNOTATION(x)  // no-op outside clang's analysis
#endif

/// Names a struct/class as a lockable capability (rarely needed directly;
/// std::mutex is pre-annotated).
#define RN_CAPABILITY(x) RN_THREAD_ANNOTATION(capability(x))

/// A scoped lock type (acquires in its constructor, releases in its
/// destructor), like std::lock_guard.
#define RN_SCOPED_CAPABILITY RN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define RN_GUARDED_BY(x) RN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define RN_PT_GUARDED_BY(x) RN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding every listed capability.
#define RN_REQUIRES(...) \
  RN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function callable only while holding the listed capabilities shared.
#define RN_REQUIRES_SHARED(...) \
  RN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability and returns holding it.
#define RN_ACQUIRE(...) \
  RN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability it was called holding.
#define RN_RELEASE(...) \
  RN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the listed capabilities
/// (it takes them itself; calling it locked would self-deadlock).
#define RN_EXCLUDES(...) RN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is a reference to data guarded by `x`.
#define RN_RETURN_CAPABILITY(x) RN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot model (e.g. the worker
/// loop's interleaved lock/unlock around task execution). Every use must
/// carry a comment saying why.
#define RN_NO_THREAD_SAFETY_ANALYSIS \
  RN_THREAD_ANNOTATION(no_thread_safety_analysis)
// NOLINTEND(bugprone-macro-parentheses)
