#pragma once
// Deterministic, seedable PRNG (splitmix64 core). Every stochastic choice in
// the simulator draws from one of these so a (seed, config) pair replays
// bit-identically across runs and platforms.

#include <cmath>
#include <cstdint>

namespace ringnet::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t bounded(std::uint64_t n) { return next() % n; }

  /// Exponential with the given rate (mean 1/rate), for Poisson processes.
  double exponential(double rate) {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace ringnet::util
