#pragma once
// Domain-sharded conservative parallel scheduler. One event heap per BR
// subtree (shards 0..D-1) plus a serialized global context (index D) for
// everything ring-wide: token hops, heartbeats/ring repair, mobility and
// churn, fault injection, archive maintenance.
//
// Execution alternates between two phases:
//
//  * serial step — when the next global event is due no later than every
//    shard's next event, shards stay paused and all events at that exact
//    timestamp (global and shard alike) run on the calling thread in key
//    order. Global handlers may therefore touch any state; this is the
//    synchronization point at top-ring token hops.
//
//  * parallel window — otherwise, every shard independently executes its
//    events with timestamp < window_end on the thread pool, where
//    window_end = min(next global event, min shard horizon + lookahead).
//    The conservative lookahead is the inter-domain latency floor: a shard
//    event at local time u can only affect another shard at >= u + L, so
//    no shard can receive anything that lands inside the current window.
//
// Cross-shard schedules made *during* a window go through a per-shard
// mutex-protected inbox and are ingested at the next barrier; their
// timestamps are asserted >= window_end (the lookahead contract). Events
// are keyed exactly as in the single-heap Scheduler, so both engines
// execute identical per-context event sequences — the oracle equivalence
// the tests assert.

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sim/event_heap.hpp"
#include "sim/time.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace ringnet::sim {

class ShardedScheduler {
 public:
  using Action = sim::Action;

  ShardedScheduler(Domain domains, SimTime lookahead, std::size_t threads)
      : global_(domains),
        lookahead_(lookahead < usecs(1) ? usecs(1) : lookahead),
        pool_(threads == 0 ? util::default_parallelism() : threads) {
    shards_.reserve(static_cast<std::size_t>(domains) + 1);
    for (Domain d = 0; d <= domains; ++d) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  Domain global_domain() const { return global_; }
  SimTime lookahead() const { return lookahead_; }
  std::size_t worker_count() const { return pool_.worker_count(); }

  /// Report engine-level counters (serial steps, parallel windows,
  /// barrier-deferred cross-shard events) into the unified registry.
  void set_metrics(obs::Metrics* metrics) {
    metrics_ = metrics;
    if (metrics_ != nullptr) {
      mid_serial_ = metrics_->intern(obs::names::kSchedSerialSteps);
      mid_windows_ = metrics_->intern(obs::names::kSchedWindows);
      mid_inbox_ = metrics_->intern(obs::names::kSchedInboxDeferred);
    }
  }

  void schedule(Domain target, SimTime t, Action action) {
    const ExecContext* ec = tls_exec_ctx;
    const Domain src = ec ? ec->domain : global_;
    Shard& s = *shards_[src];
    Event ev{EventKey{t, src, s.seq++}, target, std::move(action)};
    if (parallel_phase_ && src != global_ && src != target) {
      // A running shard reaching across: the lookahead contract says this
      // cannot land inside the open window.
      assert(t >= window_end_);
      if (metrics_ != nullptr) metrics_->incr(mid_inbox_);
      Shard& dst = *shards_[target];
      util::MutexLock lock(dst.inbox_mu);
      dst.inbox.push_back(std::move(ev));
      return;
    }
    shards_[target]->heap.push(std::move(ev));
  }

  void schedule_at(SimTime t, Action action) {
    const Domain src = tls_exec_ctx ? tls_exec_ctx->domain : global_;
    schedule(src, t, std::move(action));
  }

  SimTime now() const { return now_; }

  bool empty() const {
    for (const auto& s : shards_) {
      if (!s->heap.empty()) return false;
    }
    return pending_inbox() == 0;
  }

  std::size_t pending() const {
    std::size_t n = pending_inbox();
    for (const auto& s : shards_) n += s->heap.size();
    return n;
  }

  std::uint64_t executed() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->executed;
    return n;
  }

  /// Run all events with timestamp <= `until`, then advance now to `until`.
  void run_until(SimTime until) {
    for (;;) {
      drain_inboxes();
      const SimTime t_g =
          shards_[global_]->heap.empty() ? SimTime::max()
                                         : shards_[global_]->heap.top_key().at;
      SimTime t_min = SimTime::max();
      for (Domain d = 0; d < global_; ++d) {
        const Shard& s = *shards_[d];
        if (!s.heap.empty() && s.heap.top_key().at < t_min) {
          t_min = s.heap.top_key().at;
        }
      }
      const SimTime next = t_g < t_min ? t_g : t_min;
      if (next == SimTime::max() || next > until) break;
      if (t_g <= t_min) {
        serial_step(t_g);
        continue;
      }
      // Parallel window [t_min, end): saturate the additions so an
      // unbounded `until` cannot overflow the int64 microsecond clock.
      SimTime end = t_g;
      if (sat_add(t_min, lookahead_) < end) end = sat_add(t_min, lookahead_);
      if (sat_add(until, usecs(1)) < end) end = sat_add(until, usecs(1));
      run_window(end);
    }
    if (until > now_) now_ = until;
  }

  void run_to_completion() {
    while (!empty()) run_until(SimTime::max());
  }

 private:
  struct Shard {
    EventHeap heap;            // owner: the shard's worker inside a window,
                               // the coordinating thread at barriers
    std::uint64_t seq = 0;     // schedule counter (stamped into keys)
    std::uint64_t executed = 0;
    mutable util::Mutex inbox_mu;
    std::vector<Event> inbox RN_GUARDED_BY(inbox_mu);
  };

  static SimTime sat_add(SimTime a, SimTime b) {
    if (a.us > SimTime::max().us - b.us) return SimTime::max();
    return a + b;
  }

  std::size_t pending_inbox() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      util::MutexLock lock(s->inbox_mu);
      n += s->inbox.size();
    }
    return n;
  }

  void drain_inboxes() {
    for (auto& s : shards_) {
      util::MutexLock lock(s->inbox_mu);
      for (auto& ev : s->inbox) s->heap.push(std::move(ev));
      s->inbox.clear();
    }
  }

  /// Run every event at exactly time `t`, across all heaps, in key order,
  /// on the calling thread. Shards are paused, so global handlers may read
  /// and write shard-owned state.
  void serial_step(SimTime t) {
    if (t > now_) now_ = t;
    if (metrics_ != nullptr) metrics_->incr(mid_serial_);
    for (;;) {
      Shard* best = nullptr;
      for (auto& s : shards_) {
        if (s->heap.empty() || s->heap.top_key().at != t) continue;
        if (best == nullptr || s->heap.top_key() < best->heap.top_key()) {
          best = s.get();
        }
      }
      if (best == nullptr) return;
      Event ev = best->heap.pop_min();
      ++best->executed;
      ExecContext ctx{ev.target, t};
      ExecScope scope(&ctx);
      ev.action();
    }
  }

  void run_window(SimTime end) {
    window_end_ = end;
    parallel_phase_ = true;
    if (metrics_ != nullptr) metrics_->incr(mid_windows_);
    for (Domain d = 0; d < global_; ++d) {
      Shard* s = shards_[d].get();
      if (s->heap.empty() || !(s->heap.top_key().at < end)) continue;
      pool_.submit([s, d, end] {
        ExecContext ctx{d, SimTime::zero()};
        ExecScope scope(&ctx);
        while (!s->heap.empty() && s->heap.top_key().at < end) {
          Event ev = s->heap.pop_min();
          ctx.now = ev.key.at;
          ++s->executed;
          ev.action();
        }
      });
    }
    try {
      pool_.wait_idle();
    } catch (...) {
      parallel_phase_ = false;
      throw;
    }
    parallel_phase_ = false;
    if (end > now_) now_ = end;
  }

  std::vector<std::unique_ptr<Shard>> shards_;  // sized in the constructor
  Domain global_;
  SimTime lookahead_;
  SimTime now_ = SimTime::zero();
  SimTime window_end_ = SimTime::zero();
  bool parallel_phase_ = false;
  obs::Metrics* metrics_ = nullptr;
  obs::Metrics::MetricId mid_serial_ = 0;
  obs::Metrics::MetricId mid_windows_ = 0;
  obs::Metrics::MetricId mid_inbox_ = 0;
  util::ThreadPool pool_;
};

}  // namespace ringnet::sim
