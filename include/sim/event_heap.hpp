#pragma once
// The event container shared by both schedulers: a binary min-heap over a
// plain vector, ordered by a mode-independent event key. Unlike
// std::priority_queue, pop_min() hands the event out by value (the action
// is moved, never const_cast away), and top_key() exposes the ordering key
// without exposing mutable access to the stored action.
//
// The key K = (at, src_domain, src_seq) is what makes the single-heap
// oracle and the domain-sharded engine execute the *same* total order:
// src_seq is a per-source-domain schedule counter, so an event's key
// depends only on (a) its timestamp and (b) how many events its scheduling
// context had scheduled before it — both identical across execution modes.
// Equal-timestamp events from one context keep FIFO order; cross-context
// ties break by domain id, deterministically everywhere.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ringnet::sim {

/// Execution-context index. Domains 0..D-1 are the parallel shards (one
/// per BR subtree); index D is the serialized global context. A
/// non-sharded simulation has D == 0, so everything runs in context 0.
using Domain = std::uint32_t;

using Action = std::function<void()>;

struct EventKey {
  SimTime at = SimTime::zero();
  Domain src = 0;          // scheduling context
  std::uint64_t seq = 0;   // per-src monotone schedule counter

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
};

struct Event {
  EventKey key;
  Domain target = 0;  // context this event executes in
  Action action;
};

/// Binary min-heap keyed by EventKey. pop_min() returns the minimum event
/// by value; no const_cast, no UB-adjacent move-from-top.
class EventHeap {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  const EventKey& top_key() const { return v_.front().key; }

  void push(Event ev) {
    v_.push_back(std::move(ev));
    sift_up(v_.size() - 1);
  }

  Event pop_min() {
    Event out = std::move(v_.front());
    if (v_.size() > 1) {
      v_.front() = std::move(v_.back());
      v_.pop_back();
      sift_down(0);
    } else {
      v_.pop_back();
    }
    return out;
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(v_[i].key < v_[parent].key)) break;
      std::swap(v_[i], v_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = v_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && v_[l].key < v_[best].key) best = l;
      if (r < n && v_[r].key < v_[best].key) best = r;
      if (best == i) return;
      std::swap(v_[i], v_[best]);
      i = best;
    }
  }

  std::vector<Event> v_;
};

/// The context an event is currently executing in, published thread-locally
/// by whichever scheduler is driving this thread. Simulation routes rng(),
/// trace() and now() through it so protocol code is context-oblivious.
struct ExecContext {
  Domain domain = 0;
  SimTime now = SimTime::zero();
};

inline thread_local const ExecContext* tls_exec_ctx = nullptr;

/// RAII publish/restore of the executing context for one event batch.
class ExecScope {
 public:
  explicit ExecScope(const ExecContext* ctx) : prev_(tls_exec_ctx) {
    tls_exec_ctx = ctx;
  }
  ~ExecScope() { tls_exec_ctx = prev_; }
  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  const ExecContext* prev_;
};

}  // namespace ringnet::sim
