#pragma once
// Simulated time: a strong integer type counting microseconds. All protocol
// timers and channel delays are expressed as SimTime so arithmetic is exact
// and runs replay deterministically (no floating-point event times).

#include <cmath>
#include <cstdint>
#include <limits>

namespace ringnet::sim {

struct SimTime {
  std::int64_t us = 0;  // microseconds

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr double seconds() const { return static_cast<double>(us) * 1e-6; }
  constexpr std::int64_t micros() const { return us; }

  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.us == b.us;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) {
    return a.us != b.us;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) { return a.us < b.us; }
  friend constexpr bool operator<=(SimTime a, SimTime b) {
    return a.us <= b.us;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) { return a.us > b.us; }
  friend constexpr bool operator>=(SimTime a, SimTime b) {
    return a.us >= b.us;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us + b.us};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us - b.us};
  }
  SimTime& operator+=(SimTime b) {
    us += b.us;
    return *this;
  }
};

constexpr SimTime usecs(std::int64_t n) { return SimTime{n}; }
constexpr SimTime msecs(std::int64_t n) { return SimTime{n * 1000}; }
inline SimTime secs(double s) {
  return SimTime{static_cast<std::int64_t>(std::llround(s * 1e6))};
}

}  // namespace ringnet::sim
