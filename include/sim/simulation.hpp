#pragma once
// Simulation: the deterministic world one experiment runs in — an event
// scheduler, seeded RNG streams, a metrics registry (counters + high-
// watermark gauges) and optional structured traces. Protocol code never
// touches wall-clock time or global RNG state, only this object.
//
// A Simulation can be planned with execution contexts ("domains", one per
// BR subtree, plus a serialized global context). rng(), trace() and now()
// route to the currently-executing context, so the same protocol code runs
// unchanged on the single-heap oracle Scheduler (threads == 0) or the
// domain-sharded parallel engine (threads > 0) — and, because both engines
// execute the identical per-context event order with identical per-context
// RNG streams, the two modes produce identical delivery traces.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/sharded_scheduler.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace ringnet::sim {

enum class TraceKind : std::uint8_t {
  TokenPass,     // a = epoch, b = rotation counter
  TokenRegen,    // a = new epoch
  TokenDestroy,  // a = epoch of the destroyed duplicate
  NodeCrash,
  RingRepair,    // a = surviving ring size
  Handoff,       // a = 1 hot attach, 0 cold
  GapSkip,       // a = number of sequence numbers skipped
  Deliver,       // a = gseq
};

struct TraceEvent {
  TraceKind kind{};
  SimTime at;
  NodeId node;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Trace {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  /// Cap retained events at `cap` (keep-latest ring); 0 restores the
  /// unbounded default. A capped trace can stay enabled through soak runs:
  /// memory is O(cap) and `dropped()` counts what fell off the front.
  void set_capacity(std::size_t cap) {
    capacity_ = cap;
    while (over_capacity()) {
      events_.pop_front();
      ++dropped_;
    }
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  void record(TraceKind kind, SimTime at, NodeId node, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{kind, at, node, a, b});
    if (over_capacity()) {
      events_.pop_front();
      ++dropped_;
    }
  }

  const std::deque<TraceEvent>& events() const { return events_; }

  /// Visit every retained event of `kind` in order without materializing a
  /// filtered copy.
  template <typename Fn>
  void for_each(TraceKind kind, Fn&& fn) const {
    for (const auto& ev : events_) {
      if (ev.kind == kind) fn(ev);
    }
  }

  std::size_t count(TraceKind kind) const {
    std::size_t n = 0;
    for_each(kind, [&n](const TraceEvent&) { ++n; });
    return n;
  }

  std::vector<TraceEvent> filter(TraceKind kind) const {
    std::vector<TraceEvent> out;
    out.reserve(count(kind));
    for_each(kind, [&out](const TraceEvent& ev) { out.push_back(ev); });
    return out;
  }

 private:
  bool over_capacity() const {
    return capacity_ != 0 && events_.size() > capacity_;
  }

  bool enabled_ = false;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;
  std::deque<TraceEvent> events_;
};

/// The unified registry now lives in obs/metrics.hpp (thread-safe intern,
/// atomic counters/gauges, sharded histograms) and is shared verbatim with
/// the real-socket runtime; the sim-era name stays as an alias so every
/// existing call site keeps compiling.
using Metrics = obs::Metrics;

/// Execution plan for a Simulation. domains == 0 is the classic
/// single-context simulation. With domains > 0, threads selects the
/// engine: 0 runs the single-heap deterministic oracle (same contexts,
/// same event keys, serial execution); > 0 runs the domain-sharded
/// conservative-lookahead engine on that many pool workers.
struct ShardPlan {
  Domain domains = 0;
  SimTime lookahead = msecs(5);  // inter-domain latency floor
  std::size_t threads = 0;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : Simulation(seed, ShardPlan{}) {}

  Simulation(std::uint64_t seed, ShardPlan plan)
      : plan_(plan),
        seed_(seed),
        single_(plan.domains),
        metrics_(static_cast<std::size_t>(plan.domains) + 1) {
    const std::size_t n_ctx = static_cast<std::size_t>(plan.domains) + 1;
    rngs_.reserve(n_ctx);
    for (std::size_t i = 0; i < n_ctx; ++i) {
      // The global context keeps the raw seed (bit-compatible with the
      // pre-sharding single-stream simulation); shard streams split off
      // with a fixed odd multiplier.
      rngs_.emplace_back(i + 1 == n_ctx
                             ? seed
                             : seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
    }
    traces_.resize(n_ctx);
    if (plan.domains > 0 && plan.threads > 0) {
      sharded_ = std::make_unique<ShardedScheduler>(
          plan.domains, plan.lookahead, plan.threads);
      sharded_->set_metrics(&metrics_);
    }
  }

  std::uint64_t seed() const { return seed_; }
  const ShardPlan& plan() const { return plan_; }
  Domain domain_count() const { return plan_.domains; }
  Domain global_domain() const { return plan_.domains; }
  bool sharded() const { return sharded_ != nullptr; }
  SimTime lookahead() const { return plan_.lookahead; }

  /// The context currently executing (global when called between runs).
  Domain current_ctx() const {
    return tls_exec_ctx ? tls_exec_ctx->domain : global_domain();
  }

  SimTime now() const {
    if (tls_exec_ctx) return tls_exec_ctx->now;
    return sharded_ ? sharded_->now() : single_.now();
  }

  Scheduler& scheduler() { return single_; }
  util::Rng& rng() { return rngs_[current_ctx()]; }
  Trace& trace() { return traces_[current_ctx()]; }
  const Trace& trace() const { return traces_[current_ctx()]; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Every per-context trace (index global_domain() is the global one).
  const std::vector<Trace>& traces() const { return traces_; }

  /// Enable (and optionally cap) tracing in every context.
  void enable_trace(std::size_t capacity = 0) {
    for (auto& t : traces_) {
      t.enable();
      if (capacity != 0) t.set_capacity(capacity);
    }
  }

  std::uint64_t executed_events() const {
    return sharded_ ? sharded_->executed() : single_.executed();
  }
  std::size_t pending_events() const {
    return sharded_ ? sharded_->pending() : single_.pending();
  }

  /// Schedule into the currently-executing context.
  void at(SimTime t, Action action) {
    if (sharded_) {
      sharded_->schedule_at(t, std::move(action));
    } else {
      single_.schedule_at(t, std::move(action));
    }
  }
  void after(SimTime delay, Action action) {
    at(now() + delay, std::move(action));
  }

  /// Schedule into an explicit target context.
  void at(Domain target, SimTime t, Action action) {
    if (sharded_) {
      sharded_->schedule(target, t, std::move(action));
    } else {
      single_.schedule(target, t, std::move(action));
    }
  }
  void after(Domain target, SimTime delay, Action action) {
    at(target, now() + delay, std::move(action));
  }

  /// Advance simulated time by `span`, running everything due in between.
  void run_for(SimTime span) {
    const SimTime until = now() + span;
    if (sharded_) {
      sharded_->run_until(until);
    } else {
      single_.run_until(until);
    }
  }
  void run_to_completion() {
    if (sharded_) {
      sharded_->run_to_completion();
    } else {
      single_.run_to_completion();
    }
  }

 private:
  ShardPlan plan_;
  std::uint64_t seed_;
  Scheduler single_;
  std::unique_ptr<ShardedScheduler> sharded_;
  std::vector<util::Rng> rngs_;
  std::vector<Trace> traces_;
  Metrics metrics_;
};

}  // namespace ringnet::sim
