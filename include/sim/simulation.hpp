#pragma once
// Simulation: the deterministic world one experiment runs in — an event
// scheduler, a seeded RNG, a metrics registry (counters + high-watermark
// gauges) and an optional structured trace. Protocol code never touches
// wall-clock time or global RNG state, only this object.

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace ringnet::sim {

enum class TraceKind : std::uint8_t {
  TokenPass,     // a = epoch, b = rotation counter
  TokenRegen,    // a = new epoch
  TokenDestroy,  // a = epoch of the destroyed duplicate
  NodeCrash,
  RingRepair,    // a = surviving ring size
  Handoff,       // a = 1 hot attach, 0 cold
  GapSkip,       // a = number of sequence numbers skipped
  Deliver,       // a = gseq
};

struct TraceEvent {
  TraceKind kind{};
  SimTime at;
  NodeId node;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Trace {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  /// Cap retained events at `cap` (keep-latest ring); 0 restores the
  /// unbounded default. A capped trace can stay enabled through soak runs:
  /// memory is O(cap) and `dropped()` counts what fell off the front.
  void set_capacity(std::size_t cap) {
    capacity_ = cap;
    while (over_capacity()) {
      events_.pop_front();
      ++dropped_;
    }
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  void record(TraceKind kind, SimTime at, NodeId node, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{kind, at, node, a, b});
    if (over_capacity()) {
      events_.pop_front();
      ++dropped_;
    }
  }

  const std::deque<TraceEvent>& events() const { return events_; }

  /// Visit every retained event of `kind` in order without materializing a
  /// filtered copy.
  template <typename Fn>
  void for_each(TraceKind kind, Fn&& fn) const {
    for (const auto& ev : events_) {
      if (ev.kind == kind) fn(ev);
    }
  }

  std::size_t count(TraceKind kind) const {
    std::size_t n = 0;
    for_each(kind, [&n](const TraceEvent&) { ++n; });
    return n;
  }

  std::vector<TraceEvent> filter(TraceKind kind) const {
    std::vector<TraceEvent> out;
    out.reserve(count(kind));
    for_each(kind, [&out](const TraceEvent& ev) { out.push_back(ev); });
    return out;
  }

 private:
  bool over_capacity() const {
    return capacity_ != 0 && events_.size() > capacity_;
  }

  bool enabled_ = false;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;
  std::deque<TraceEvent> events_;
};

/// Counters and high-watermark gauges. Names are interned once into dense
/// handles; hot paths hold a MetricId and every incr/gauge_max is a vector
/// index, not a string-keyed tree lookup. The string-keyed overloads remain
/// for cold paths (benches, tests, result distillation).
class Metrics {
 public:
  using MetricId = std::uint32_t;

  /// Idempotent: interning the same name again returns the same handle.
  MetricId intern(const std::string& name) {
    const auto [it, inserted] =
        ids_.emplace(name, static_cast<MetricId>(counters_.size()));
    if (inserted) {
      counters_.push_back(0);
      gauges_.push_back(0.0);
    }
    return it->second;
  }

  void incr(MetricId id, std::uint64_t delta = 1) { counters_[id] += delta; }
  std::uint64_t counter(MetricId id) const { return counters_[id]; }

  /// Record an observation; the gauge keeps the maximum ever seen.
  void gauge_max(MetricId id, double value) {
    if (value > gauges_[id]) gauges_[id] = value;
  }
  double gauge(MetricId id) const { return gauges_[id]; }

  void incr(const std::string& name, std::uint64_t delta = 1) {
    incr(intern(name), delta);
  }
  std::uint64_t counter(const std::string& name) const {
    const auto it = ids_.find(name);
    return it == ids_.end() ? 0 : counters_[it->second];
  }
  void gauge_max(const std::string& name, double value) {
    gauge_max(intern(name), value);
  }
  double gauge(const std::string& name) const {
    const auto it = ids_.find(name);
    return it == ids_.end() ? 0.0 : gauges_[it->second];
  }

 private:
  std::unordered_map<std::string, MetricId> ids_;
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  SimTime now() const { return scheduler_.now(); }
  std::uint64_t seed() const { return seed_; }

  Scheduler& scheduler() { return scheduler_; }
  util::Rng& rng() { return rng_; }
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  void at(SimTime t, Scheduler::Action action) {
    scheduler_.schedule_at(t, std::move(action));
  }
  void after(SimTime delay, Scheduler::Action action) {
    scheduler_.schedule_at(scheduler_.now() + delay, std::move(action));
  }

  /// Advance simulated time by `span`, running everything due in between.
  void run_for(SimTime span) { scheduler_.run_until(scheduler_.now() + span); }
  void run_to_completion() { scheduler_.run_to_completion(); }

 private:
  Scheduler scheduler_;
  util::Rng rng_;
  Trace trace_;
  Metrics metrics_;
  std::uint64_t seed_;
};

}  // namespace ringnet::sim
