#pragma once
// Simulation: the deterministic world one experiment runs in — an event
// scheduler, a seeded RNG, a metrics registry (counters + high-watermark
// gauges) and an optional structured trace. Protocol code never touches
// wall-clock time or global RNG state, only this object.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace ringnet::sim {

enum class TraceKind : std::uint8_t {
  TokenPass,     // a = epoch, b = rotation counter
  TokenRegen,    // a = new epoch
  TokenDestroy,  // a = epoch of the destroyed duplicate
  NodeCrash,
  RingRepair,    // a = surviving ring size
  Handoff,       // a = 1 hot attach, 0 cold
  GapSkip,       // a = number of sequence numbers skipped
  Deliver,       // a = gseq
};

struct TraceEvent {
  TraceKind kind{};
  SimTime at;
  NodeId node;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Trace {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  void record(TraceKind kind, SimTime at, NodeId node, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    if (enabled_) events_.push_back(TraceEvent{kind, at, node, a, b});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  std::vector<TraceEvent> filter(TraceKind kind) const {
    std::vector<TraceEvent> out;
    for (const auto& ev : events_) {
      if (ev.kind == kind) out.push_back(ev);
    }
    return out;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

class Metrics {
 public:
  void incr(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Record an observation; the gauge keeps the maximum ever seen.
  void gauge_max(const std::string& name, double value) {
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }
  double gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  SimTime now() const { return scheduler_.now(); }
  std::uint64_t seed() const { return seed_; }

  Scheduler& scheduler() { return scheduler_; }
  util::Rng& rng() { return rng_; }
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  void at(SimTime t, Scheduler::Action action) {
    scheduler_.schedule_at(t, std::move(action));
  }
  void after(SimTime delay, Scheduler::Action action) {
    scheduler_.schedule_at(scheduler_.now() + delay, std::move(action));
  }

  /// Advance simulated time by `span`, running everything due in between.
  void run_for(SimTime span) { scheduler_.run_until(scheduler_.now() + span); }
  void run_to_completion() { scheduler_.run_to_completion(); }

 private:
  Scheduler scheduler_;
  util::Rng rng_;
  Trace trace_;
  Metrics metrics_;
  std::uint64_t seed_;
};

}  // namespace ringnet::sim
