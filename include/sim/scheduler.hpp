#pragma once
// Event-heap scheduler. Events at equal timestamps run in insertion order
// (a monotone sequence number breaks ties), which is what makes whole-run
// determinism possible: the heap never observes platform-dependent ordering.

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ringnet::sim {

class Scheduler {
 public:
  using Action = std::function<void()>;

  void schedule_at(SimTime t, Action action) {
    heap_.push(Event{t, next_seq_++, std::move(action)});
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Run every pending event (including ones scheduled while running).
  void run_to_completion() {
    while (!heap_.empty()) pop_and_run();
  }

  /// Run all events with timestamp <= `until`, then advance `now` to
  /// `until` even if the heap still holds later events.
  void run_until(SimTime until) {
    while (!heap_.empty() && heap_.top().at <= until) pop_and_run();
    if (until > now_) now_ = until;
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;  // FIFO among equal timestamps
    }
  };

  void pop_and_run() {
    // std::priority_queue::top() is const; the action must be moved out
    // before pop so re-entrant schedule_at calls see a consistent heap.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    if (ev.at > now_) now_ = ev.at;
    ev.action();
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
};

}  // namespace ringnet::sim
