#pragma once
// Single-heap event scheduler: the deterministic oracle. Events are
// ordered by the mode-independent key K = (at, src_domain, src_seq) from
// event_heap.hpp, so a run here executes the exact event sequence the
// domain-sharded engine executes in parallel — that is what the
// sharded-vs-oracle equivalence tests lean on. A non-sharded scheduler
// (domains == 0) has a single context and degenerates to the classic
// "timestamp, then FIFO" order.

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/time.hpp"

namespace ringnet::sim {

class Scheduler {
 public:
  using Action = sim::Action;

  /// `domains` parallel-capable contexts + one global context (index
  /// `domains`). The default is the classic single-context scheduler.
  explicit Scheduler(Domain domains = 0)
      : global_(domains), seq_(static_cast<std::size_t>(domains) + 1, 0) {}

  Domain global_domain() const { return global_; }

  /// Schedule into `target`'s context. The key is stamped from the
  /// currently-executing context (global when called from outside a run).
  void schedule(Domain target, SimTime t, Action action) {
    const Domain src = tls_exec_ctx ? tls_exec_ctx->domain : global_;
    heap_.push(Event{EventKey{t, src, seq_[src]++}, target,
                     std::move(action)});
  }

  /// Context-oblivious schedule: runs in whichever context scheduled it.
  void schedule_at(SimTime t, Action action) {
    const Domain src = tls_exec_ctx ? tls_exec_ctx->domain : global_;
    schedule(src, t, std::move(action));
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

  /// Run every pending event (including ones scheduled while running).
  void run_to_completion() {
    while (!heap_.empty()) pop_and_run();
  }

  /// Run all events with timestamp <= `until`, then advance `now` to
  /// `until` even if the heap still holds later events.
  void run_until(SimTime until) {
    while (!heap_.empty() && heap_.top_key().at <= until) pop_and_run();
    if (until > now_) now_ = until;
  }

 private:
  void pop_and_run() {
    Event ev = heap_.pop_min();
    if (ev.key.at > now_) now_ = ev.key.at;
    ++executed_;
    ExecContext ctx{ev.target, now_};
    ExecScope scope(&ctx);
    ev.action();
  }

  EventHeap heap_;
  Domain global_;
  std::vector<std::uint64_t> seq_;  // per-context schedule counters
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
};

}  // namespace ringnet::sim
