#pragma once
// Channel models for the three link classes of the RingNet hierarchy:
// WAN links between border routers (the top logical ring), wired LAN links
// inside a domain (BR–AG–AP tree) and the wireless cell between an AP and
// its mobile hosts. Wireless loss can be burst-correlated (Gilbert-Elliott)
// — the regime the paper's §5 closing note defers to future work.

#include <cstdint>

#include "core/types.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace ringnet::net {

/// Identifies one directed (src, dst) link instance. Loss processes are
/// keyed per link, not per origin node: a burst on one WAN path must not
/// correlate loss across every destination the origin multicasts to.
using LinkKey = std::uint64_t;

constexpr LinkKey link_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src.v) << 32) |
         static_cast<std::uint64_t>(dst.v);
}

struct ChannelModel {
  sim::SimTime latency = sim::msecs(1);  // one-way propagation
  double bandwidth_bps = 1e9;            // serialization rate
  double loss_rate = 0.0;                // long-run average loss probability
  bool burst_loss = false;               // Gilbert-Elliott vs Bernoulli
  double burst_mean_len = 5.0;           // mean bad-state burst length (pkts)

  static ChannelModel wired_wan(double loss = 0.0) {
    ChannelModel m;
    m.latency = sim::msecs(5);
    m.bandwidth_bps = 100e6;
    m.loss_rate = loss;
    return m;
  }

  static ChannelModel wired_lan(double loss = 0.0) {
    ChannelModel m;
    m.latency = sim::msecs(1);
    m.bandwidth_bps = 1e9;
    m.loss_rate = loss;
    return m;
  }

  static ChannelModel wireless(double loss = 0.01) {
    ChannelModel m;
    m.latency = sim::msecs(2);
    m.bandwidth_bps = 10e6;
    m.loss_rate = loss;
    m.burst_loss = true;
    return m;
  }

  /// Time to serialize `bytes` onto the link.
  sim::SimTime transmit_time(std::uint32_t bytes) const {
    if (bandwidth_bps <= 0.0) return sim::SimTime::zero();
    return sim::secs(static_cast<double>(bytes) * 8.0 / bandwidth_bps);
  }

  /// One-way delay for a frame of `bytes`: serialization + propagation.
  sim::SimTime one_way(std::uint32_t bytes) const {
    return latency + transmit_time(bytes);
  }
};

/// Per-link loss process. Bernoulli by default; with burst_loss set it is a
/// two-state Gilbert-Elliott chain whose stationary loss matches loss_rate
/// and whose bad-state dwell time averages burst_mean_len packets.
class LossProcess {
 public:
  LossProcess() = default;  // lossless default (flat-map slot requirement)
  explicit LossProcess(const ChannelModel& model) : model_(model) {}

  bool lost(util::Rng& rng) {
    const double p = model_.loss_rate;
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    if (!model_.burst_loss) return rng.chance(p);
    // Gilbert-Elliott: P(bad->good) = 1/burst_len;
    // stationary bad fraction p => P(good->bad) = p / (burst_len * (1 - p)).
    const double p_exit_bad = 1.0 / model_.burst_mean_len;
    const double p_enter_bad = p * p_exit_bad / (1.0 - p);
    if (bad_) {
      if (rng.chance(p_exit_bad)) bad_ = false;
    } else if (rng.chance(p_enter_bad)) {
      bad_ = true;
    }
    return bad_;
  }

 private:
  ChannelModel model_;
  bool bad_ = false;
};

}  // namespace ringnet::net
