// ringnet_node: one protocol node as a standalone daemon over real UDP.
// Every process is told the same deployment shape and derives the same
// static port scheme, so a full Figure-1 hierarchy boots from a shell loop
// (see README "Running on real sockets") with no discovery service:
//   port-base + 0                     supervisor (SS)
//   port-base + 1 + i                 BR i
//   port-base + 1 + B + a             AP a        (B BRs)
//   port-base + 1 + B + A + m         MH m        (A = B * aps-per-br APs)
// The supervisor exits once every MH reports Done (broadcasting Stop on
// the way out); MHs exit when they see Stop; BRs and APs serve until Stop
// arrives or SIGINT. Exit status 0 = clean shutdown.
//
// Live introspection: SIGUSR1 makes the node spill its flight recorder —
// the bounded ring of recent protocol events — to stderr as one JSON line;
// the same dump fires automatically on token-regeneration watchdog expiry,
// a dropped token, or a delivery-order violation. A periodic one-line
// stats frame (--stats-period, default 5s, 0 = off) reports the node's
// metric counters and, on MHs, delivery-latency quantiles.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/node.hpp"
#include "runtime/udp_transport.hpp"
#include "util/clock.hpp"

namespace {

using namespace ringnet;
using namespace ringnet::runtime;

volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }
volatile std::sig_atomic_t g_dump_requested = 0;
void on_sigusr1(int) { g_dump_requested = 1; }

constexpr NodeId kSupervisorId{0x00FFFFFEu};

struct Cli {
  std::string role;  // ss | br | ap | mh
  std::size_t index = 0;
  std::size_t brs = 2;
  std::size_t aps_per_br = 2;
  std::size_t mhs_per_ap = 8;
  std::uint32_t host = kLoopbackHost;
  std::uint16_t port_base = 29000;
  double rate_hz = 50.0;
  std::uint32_t msgs = 40;
  double time_scale = 1.0;
  std::int64_t tick_us = 1000;
  double duration_secs = 0.0;  // br/ap fallback exit; 0 = until Stop/SIGINT
  double stats_period_secs = 5.0;  // one-line stats frame cadence; 0 = off
};

/// One line of live counters (plus MH latency quantiles), sorted by name
/// so frames diff cleanly across captures.
std::string stats_frame(const std::string& node, const obs::Metrics& metrics,
                        const MhRuntime* mh, std::int64_t t_us) {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  metrics.for_each_counter(
      [&](const std::string& name, std::uint64_t count, double) {
        if (count != 0) counters.emplace_back(name, count);
      });
  std::sort(counters.begin(), counters.end());
  std::string out = "ringnet_node stats " + node + " t_us=" +
                    std::to_string(t_us);
  for (const auto& [name, count] : counters) {
    out += " " + name + "=" + std::to_string(count);
  }
  if (mh != nullptr) {
    const stats::Histogram lat = mh->latency_hist();
    if (lat.count() > 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    " lat_us_p50=%llu lat_us_p90=%llu lat_us_p99=%llu",
                    static_cast<unsigned long long>(lat.quantile(0.50)),
                    static_cast<unsigned long long>(lat.quantile(0.90)),
                    static_cast<unsigned long long>(lat.quantile(0.99)));
      out += buf;
    }
  }
  return out;
}

[[noreturn]] void usage_and_exit(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --role ss|br|ap|mh --index N [--brs N] [--aps-per-br N]\n"
      "          [--mhs-per-ap N] [--port-base P] [--host A.B.C.D]\n"
      "          [--rate HZ] [--msgs N] [--time-scale F] [--duration SECS]\n"
      "          [--stats-period SECS]\n",
      prog);
  std::exit(2);
}

std::uint32_t parse_host(const std::string& dotted, const char* prog) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    usage_and_exit(prog);
  }
  return (a << 24) | (b << 16) | (c << 8) | d;
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    const auto num = [&](const std::string& v) -> std::uint64_t {
      char* end = nullptr;
      const std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0') {
        usage_and_exit(argv[0]);
      }
      return n;
    };
    if (arg == "--role") {
      cli.role = value();
    } else if (arg == "--index") {
      cli.index = num(value());
    } else if (arg == "--brs") {
      cli.brs = num(value());
    } else if (arg == "--aps-per-br") {
      cli.aps_per_br = num(value());
    } else if (arg == "--mhs-per-ap") {
      cli.mhs_per_ap = num(value());
    } else if (arg == "--port-base") {
      cli.port_base = static_cast<std::uint16_t>(num(value()));
    } else if (arg == "--host") {
      cli.host = parse_host(value(), argv[0]);
    } else if (arg == "--rate") {
      cli.rate_hz = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--msgs") {
      cli.msgs = static_cast<std::uint32_t>(num(value()));
    } else if (arg == "--time-scale") {
      cli.time_scale = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--tick-us") {
      cli.tick_us = static_cast<std::int64_t>(num(value()));
    } else if (arg == "--duration") {
      cli.duration_secs = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--stats-period") {
      cli.stats_period_secs = std::strtod(value().c_str(), nullptr);
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (cli.role != "ss" && cli.role != "br" && cli.role != "ap" &&
      cli.role != "mh") {
    usage_and_exit(argv[0]);
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  const std::size_t n_ap = cli.brs * cli.aps_per_br;
  const std::size_t n_mh = n_ap * cli.mhs_per_ap;

  std::vector<NodeId> brs, aps, mhs, all;
  auto book = std::make_shared<AddressBook>();
  std::uint16_t port = cli.port_base;
  book->set(kSupervisorId, Endpoint{cli.host, port++});
  for (std::size_t i = 0; i < cli.brs; ++i) {
    brs.push_back(NodeId::make(Tier::BR, static_cast<std::uint32_t>(i)));
    book->set(brs.back(), Endpoint{cli.host, port++});
  }
  for (std::size_t a = 0; a < n_ap; ++a) {
    aps.push_back(NodeId::make(Tier::AP, static_cast<std::uint32_t>(a)));
    book->set(aps.back(), Endpoint{cli.host, port++});
  }
  for (std::size_t m = 0; m < n_mh; ++m) {
    mhs.push_back(NodeId::make(Tier::MH, static_cast<std::uint32_t>(m)));
    book->set(mhs.back(), Endpoint{cli.host, port++});
  }
  all = brs;
  all.insert(all.end(), aps.begin(), aps.end());
  all.insert(all.end(), mhs.begin(), mhs.end());

  RuntimeOptions opts;
  opts.scale_timers(cli.time_scale);
  const double rate = cli.rate_hz / cli.time_scale;
  const std::int64_t tick_us =
      static_cast<std::int64_t>(cli.tick_us * cli.time_scale);

  NodeId self;
  if (cli.role == "ss") {
    self = kSupervisorId;
  } else if (cli.role == "br" && cli.index < cli.brs) {
    self = brs[cli.index];
  } else if (cli.role == "ap" && cli.index < n_ap) {
    self = aps[cli.index];
  } else if (cli.role == "mh" && cli.index < n_mh) {
    self = mhs[cli.index];
  } else {
    std::fprintf(stderr, "--index out of range for role %s\n",
                 cli.role.c_str());
    return 2;
  }
  const auto ep = *book->find(self);
  UdpTransport transport(self, book, ep.port, cli.host);

  std::unique_ptr<RuntimeNode> node;
  MhRuntime* mh_node = nullptr;
  SsRuntime* ss_node = nullptr;
  BrRuntime* br_node = nullptr;
  ApRuntime* ap_node = nullptr;
  if (cli.role == "ss") {
    SsConfig cfg;
    cfg.self = self;
    cfg.all_nodes = all;
    cfg.expected_ready = all.size();
    cfg.expected_done = n_mh;
    cfg.opts = opts;
    auto owned = std::make_unique<SsRuntime>(cfg, transport);
    ss_node = owned.get();
    node = std::move(owned);
  } else if (cli.role == "br") {
    BrConfig cfg;
    cfg.self = self;
    cfg.ss = kSupervisorId;
    cfg.ring = brs;
    for (std::size_t a = 0; a < n_ap; ++a) {
      if (a / cli.aps_per_br == cli.index) cfg.own_aps.push_back(aps[a]);
    }
    for (std::size_t m = 0; m < n_mh; ++m) {
      const std::size_t a = m / cli.mhs_per_ap;
      if (a / cli.aps_per_br != cli.index) continue;
      cfg.members.push_back(mhs[m]);
      cfg.member_ap.push_back(aps[a]);
    }
    cfg.opts = opts;
    auto owned = std::make_unique<BrRuntime>(std::move(cfg), transport);
    br_node = owned.get();
    node = std::move(owned);
  } else if (cli.role == "ap") {
    ApConfig cfg;
    cfg.self = self;
    cfg.br = brs[cli.index / cli.aps_per_br];
    cfg.ss = kSupervisorId;
    for (std::size_t m = 0; m < n_mh; ++m) {
      if (m / cli.mhs_per_ap == cli.index) cfg.attached.push_back(mhs[m]);
    }
    cfg.opts = opts;
    auto owned = std::make_unique<ApRuntime>(std::move(cfg), transport);
    ap_node = owned.get();
    node = std::move(owned);
  } else {
    MhConfig cfg;
    cfg.self = self;
    cfg.source_id = NodeId{static_cast<std::uint32_t>(cli.index)};
    cfg.ap = aps[cli.index / cli.mhs_per_ap];
    cfg.ss = kSupervisorId;
    cfg.rate_hz = rate;
    cfg.msgs_to_send = cli.msgs;
    cfg.expected_total = static_cast<std::uint64_t>(n_mh) * cli.msgs;
    cfg.submit_phase_us = rate > 0
                              ? static_cast<std::int64_t>(cli.index) *
                                    static_cast<std::int64_t>(1e6 / rate) /
                                    static_cast<std::int64_t>(n_mh)
                              : 0;
    cfg.opts = opts;
    auto owned = std::make_unique<MhRuntime>(std::move(cfg), transport);
    mh_node = owned.get();
    node = std::move(owned);
  }

  // Every role exposes the same observability surface: an atomic metric
  // registry, a mutex-guarded flight recorder, and (MH only) a live
  // latency histogram — all safe to read from this thread mid-run.
  obs::FlightRecorder* fr = nullptr;
  const obs::Metrics* metrics = nullptr;
  if (ss_node) {
    fr = &ss_node->flight_recorder();
    metrics = &ss_node->metrics();
  } else if (br_node) {
    fr = &br_node->flight_recorder();
    metrics = &br_node->metrics();
  } else if (ap_node) {
    fr = &ap_node->flight_recorder();
    metrics = &ap_node->metrics();
  } else {
    fr = &mh_node->flight_recorder();
    metrics = &mh_node->metrics();
  }
  const std::string node_label =
      cli.role + "[" + std::to_string(cli.index) + "]";

  std::signal(SIGINT, on_sigint);
  std::signal(SIGTERM, on_sigint);
  std::signal(SIGUSR1, on_sigusr1);
  util::WallClock clock;
  NodeLoop loop(*node, transport, clock, tick_us);
  loop.start();
  std::printf("ringnet_node %s[%zu] up on %u.%u.%u.%u:%u (%zu nodes total)\n",
              cli.role.c_str(), cli.index, (cli.host >> 24) & 255,
              (cli.host >> 16) & 255, (cli.host >> 8) & 255, cli.host & 255,
              ep.port, all.size() + 1);
  std::fflush(stdout);

  const std::int64_t deadline =
      cli.duration_secs > 0
          ? clock.now_us() + static_cast<std::int64_t>(cli.duration_secs * 1e6)
          : 0;
  const std::int64_t stats_period_us =
      cli.stats_period_secs > 0
          ? static_cast<std::int64_t>(cli.stats_period_secs * 1e6)
          : 0;
  std::int64_t next_stats_us =
      stats_period_us > 0 ? clock.now_us() + stats_period_us : 0;
  while (!g_interrupted) {
    clock.sleep_us(50'000);
    if (g_dump_requested) {
      g_dump_requested = 0;
      fr->take_dump_request();  // fold any pending auto-dump into this one
      std::fprintf(stderr, "%s\n",
                   fr->dump_json(node_label, "sigusr1").c_str());
      std::fflush(stderr);
    } else if (fr->take_dump_request()) {
      // Armed by the role loop itself: token regeneration (watchdog
      // expiry), a dropped token, or a delivery-order violation.
      std::fprintf(stderr, "%s\n", fr->dump_json(node_label, "auto").c_str());
      std::fflush(stderr);
    }
    if (stats_period_us > 0 && clock.now_us() >= next_stats_us) {
      next_stats_us = clock.now_us() + stats_period_us;
      std::fprintf(stderr, "%s\n",
                   stats_frame(node_label, *metrics, mh_node, clock.now_us())
                       .c_str());
      std::fflush(stderr);
    }
    if (ss_node && ss_node->all_done()) {
      ss_node->request_stop();
      clock.sleep_us(4 * opts.handshake_resend_us);  // let Stop fan out
      break;
    }
    if (mh_node && mh_node->stop_seen()) break;
    if (br_node && br_node->stop_seen()) break;
    if (ap_node && ap_node->stop_seen()) break;
    if (deadline != 0 && clock.now_us() >= deadline) break;
  }
  loop.stop();

  if (mh_node) {
    std::printf("ringnet_node mh[%zu]: delivered=%llu submitted=%llu "
                "really_lost=%llu\n",
                cli.index,
                static_cast<unsigned long long>(mh_node->delivered_count()),
                static_cast<unsigned long long>(mh_node->submitted_count()),
                static_cast<unsigned long long>(
                    mh_node->counters().really_lost));
  }
  std::printf("ringnet_node %s[%zu]: sent=%llu received=%llu malformed=%llu\n",
              cli.role.c_str(), cli.index,
              static_cast<unsigned long long>(transport.sent()),
              static_cast<unsigned long long>(transport.received()),
              static_cast<unsigned long long>(transport.dropped_malformed()));
  return 0;
}
