#pragma once
// Shared helpers for the experiment benches: parallel sweep execution (one
// deterministic Simulation per sweep point, fanned across a thread pool),
// table headers, and common CLI parsing (seed / duration / scenario
// overrides) so benches stop duplicating argv handling. Analytic bounds
// live in the library proper (core/analysis.hpp) so applications can size
// deployments with the same model the benches validate.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baseline/harness.hpp"
#include "core/analysis.hpp"
#include "scenario/catalogue.hpp"
#include "stats/table.hpp"
#include "util/thread_pool.hpp"

namespace ringnet::bench {

/// Run `specs` concurrently (deterministic per spec), preserving order.
inline std::vector<baseline::RunResult> run_all(
    const std::vector<baseline::RunSpec>& specs) {
  return util::parallel_map<baseline::RunResult>(
      specs.size(),
      [&specs](std::size_t i) { return baseline::run_experiment(specs[i]); });
}

inline void print_header(const std::string& title, const std::string& claim) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("# Paper claim: %s\n", claim.c_str());
  std::printf("################################################################\n\n");
}

/// Common bench CLI:
///   --seed N       override every sweep point's seed
///   --run SECONDS  override the measured-run duration
///   --scenario S   canned scenario name or ad-hoc parse_scenario() text
///   --smoke        short-run preset (run 1.6s — the smallest window that
///                  still covers every canned fault time with live sources)
///   --shard N      run every sweep point on the domain-sharded parallel
///                  engine with N worker threads (N=0: single-heap oracle
///                  over the same domain plan)
///   --spans        record message-lifecycle spans on every sweep point
///                  (benches that support it print the per-stage breakdown)
///   --list         print the canned scenario catalogue and exit
struct Options {
  std::optional<std::uint64_t> seed;
  std::optional<double> run_secs;
  std::optional<std::string> scenario;
  std::optional<std::size_t> shard_threads;
  bool smoke = false;
  bool spans = false;
};

[[noreturn]] inline void usage_and_exit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--run SECONDS] [--scenario NAME|TEXT] "
               "[--shard THREADS] [--smoke] [--spans] [--list]\n",
               prog);
  std::exit(2);
}

inline Options parse_cli(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      const std::string v = value();
      char* end = nullptr;
      opts.seed = std::strtoull(v.c_str(), &end, 10);
      // strtoull silently wraps negatives: reject them like any other typo.
      if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0') {
        usage_and_exit(argv[0]);
      }
    } else if (arg == "--run") {
      const std::string v = value();
      char* end = nullptr;
      opts.run_secs = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || *opts.run_secs <= 0.0) {
        usage_and_exit(argv[0]);
      }
    } else if (arg == "--scenario") {
      opts.scenario = value();
    } else if (arg == "--shard") {
      const std::string v = value();
      char* end = nullptr;
      opts.shard_threads = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0') {
        usage_and_exit(argv[0]);
      }
    } else if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--spans") {
      opts.spans = true;
    } else if (arg == "--list") {
      for (const auto& c : scenario::catalogue()) {
        std::printf("%-14s %s\n    %s\n", c.name.c_str(), c.summary.c_str(),
                    c.text.c_str());
      }
      std::exit(0);
    } else {
      usage_and_exit(argv[0]);
    }
  }
  return opts;
}

/// Resolve a scenario name (or ad-hoc parse_scenario text) through the
/// catalogue, printing the parser's diagnostic and a --list hint on stderr
/// when it fails. The single resolution path shared by every scenario-aware
/// bench — per-bench copies of this lambda had already drifted apart in
/// their diagnostics before it was hoisted here.
inline std::optional<scenario::ScenarioSpec> resolve_scenario(
    const std::string& text) {
  std::string error;
  auto parsed = scenario::find_scenario(text, &error);
  if (!parsed) {
    std::fprintf(stderr, "bad scenario '%s': %s (try --list)\n", text.c_str(),
                 error.c_str());
  }
  return parsed;
}

/// Apply the shared overrides to one sweep point. The scenario override
/// resolves through the catalogue (exiting with a message on an unknown
/// name) so every bench accepts the same `--scenario` vocabulary.
inline void apply_cli(const Options& opts, baseline::RunSpec& spec) {
  if (opts.seed) spec.seed = *opts.seed;
  if (opts.shard_threads) {
    spec.shard = true;
    spec.shard_threads = *opts.shard_threads;
  }
  if (opts.smoke) {
    // The measured window must still cover every canned fault/churn event
    // time (latest: token-storm's second loss at 1.5s) with live sources,
    // or the smoke gate would pass vacuously on the fault scenarios.
    spec.warmup = sim::secs(0.2);
    spec.run = sim::secs(1.6);
    spec.drain = sim::secs(0.75);
  }
  if (opts.run_secs) spec.run = sim::secs(*opts.run_secs);
  if (opts.spans) spec.config.record_spans = true;
  if (opts.scenario) {
    auto parsed = resolve_scenario(*opts.scenario);
    if (!parsed) std::exit(2);
    spec.scenario = std::move(*parsed);
  }
}

}  // namespace ringnet::bench
