#pragma once
// Shared helpers for the experiment benches: parallel sweep execution (one
// deterministic Simulation per sweep point, fanned across a thread pool)
// and table headers. Analytic bounds live in the library proper
// (core/analysis.hpp) so applications can size deployments with the same
// model the benches validate.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "baseline/harness.hpp"
#include "core/analysis.hpp"
#include "stats/table.hpp"
#include "util/thread_pool.hpp"

namespace ringnet::bench {

/// Run `specs` concurrently (deterministic per spec), preserving order.
inline std::vector<baseline::RunResult> run_all(
    const std::vector<baseline::RunSpec>& specs) {
  return util::parallel_map<baseline::RunResult>(
      specs.size(),
      [&specs](std::size_t i) { return baseline::run_experiment(specs[i]); });
}

inline void print_header(const std::string& title, const std::string& claim) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("# Paper claim: %s\n", claim.c_str());
  std::printf("################################################################\n\n");
}

}  // namespace ringnet::bench
