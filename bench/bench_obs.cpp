// bench_obs: instrumentation-overhead micros. Each pair runs the same
// protocol hot path with observability off (baseline) and on (spans +
// per-delivery spans recording), so the bench-diff gate catches a metrics
// or span change that taxes the data path. Target: < 3% overhead on the
// token-forward and distribute micros (the 10% bench_diff gate is the
// hard wall).

#include <benchmark/benchmark.h>

#include "baseline/harness.hpp"
#include "core/config.hpp"
#include "core/protocol.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace ringnet;

core::ProtocolConfig ring_config(std::size_t brs, double rate_hz) {
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = brs;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 1;
  cfg.hierarchy.mhs_per_ap = 1;
  cfg.num_sources = 1;
  cfg.source.rate_hz = rate_hz;
  cfg.record_deliveries = false;
  return cfg;
}

core::ProtocolConfig distribute_config() {
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 4;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 8;
  cfg.hierarchy.mhs_per_ap = 8;
  cfg.num_sources = 8;
  cfg.source.rate_hz = 400.0;
  cfg.record_deliveries = false;
  return cfg;
}

// Token ring rotation with no traffic: the pure ordering-pass hot path.
void BM_TokenForwardRing_NoSpans(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(7);
    core::RingNetProtocol proto(sim, ring_config(8, 0.0));
    proto.start();
    sim.run_for(sim::msecs(50));
    benchmark::DoNotOptimize(
        sim.metrics().counter(obs::names::kTokenHeld));
  }
}
BENCHMARK(BM_TokenForwardRing_NoSpans)->Unit(benchmark::kMillisecond);

void BM_TokenForwardRing_Spans(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(7);
    core::ProtocolConfig cfg = ring_config(8, 0.0);
    cfg.record_spans = true;
    core::RingNetProtocol proto(sim, cfg);
    proto.start();
    sim.run_for(sim::msecs(50));
    benchmark::DoNotOptimize(
        sim.metrics().counter(obs::names::kTokenHeld));
  }
}
BENCHMARK(BM_TokenForwardRing_Spans)->Unit(benchmark::kMillisecond);

// Batched distribute/deliver under live sources: the delivery hot path.
void BM_DistributeBatchDeliver_NoSpans(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(11);
    core::RingNetProtocol proto(sim, distribute_config());
    proto.start();
    sim.run_for(sim::msecs(10));
    benchmark::DoNotOptimize(
        sim.metrics().counter(obs::names::kMhDelivered));
  }
}
BENCHMARK(BM_DistributeBatchDeliver_NoSpans)->Unit(benchmark::kMillisecond);

void BM_DistributeBatchDeliver_Spans(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(11);
    core::ProtocolConfig cfg = distribute_config();
    cfg.record_spans = true;
    core::RingNetProtocol proto(sim, cfg);
    proto.start();
    sim.run_for(sim::msecs(10));
    benchmark::DoNotOptimize(
        sim.metrics().counter(obs::names::kMhDelivered));
  }
}
BENCHMARK(BM_DistributeBatchDeliver_Spans)->Unit(benchmark::kMillisecond);

// Registry micro: hot-path incr through an interned handle, with and
// without a concurrent-interning-shaped access pattern. Guards the chunked
// atomic slot design against an accidental lock on the incr path.
void BM_MetricsIncr(benchmark::State& state) {
  obs::Metrics m;
  const auto id = m.intern(obs::names::kMhDelivered);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) m.incr(id);
    benchmark::DoNotOptimize(m.counter(id));
  }
}
BENCHMARK(BM_MetricsIncr);

void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder fr;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      fr.record(obs::FrEvent::Deliver, ++t, static_cast<std::uint64_t>(i));
    }
    benchmark::DoNotOptimize(fr.total_recorded());
  }
}
BENCHMARK(BM_FlightRecorderRecord);

}  // namespace

BENCHMARK_MAIN();
