// E11 (Theorem 5.1 at soak scale): "all the buffers only need limited
// sizes" must hold for arbitrarily long runs, not just 2-second windows.
// Drives up to millions of messages through the ordering tier and reports
// peak vs retained state for the assigned-message archive, the per-source
// submit logs, and the MQs — all pruned by the global acked-floor
// watermark — plus the wall-clock event rate of the hot paths.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "core/protocol.hpp"

using namespace ringnet;

int main() {
  bench::print_header(
      "E11 — bounded-memory soak",
      "buffer occupancy is bounded by the ack/token cadence (Theorem 5.1): "
      "steady-state state is O(retention window), independent of run length");

  struct Point {
    std::size_t brs;
    std::size_t sources;
    double rate_hz;
    std::uint64_t target_msgs;
  };
  const std::vector<Point> points = {
      {2, 2, 2500.0, 100'000},
      {4, 4, 2500.0, 500'000},
      {2, 2, 6500.0, 1'000'000},
  };

  stats::Table table("soak state: peak vs retained (messages)",
                     {"BRs", "s", "lambda", "sent", "arch peak", "arch end",
                      "sublog peak", "sublog end", "MQ peak", "wall ms",
                      "msg/s wall"});
  for (const auto& p : points) {
    sim::Simulation sim(42);
    core::ProtocolConfig cfg;
    cfg.hierarchy.num_brs = p.brs;
    cfg.hierarchy.ags_per_br = 1;
    cfg.hierarchy.aps_per_ag = 1;
    cfg.hierarchy.mhs_per_ap = 1;
    auto wireless = net::ChannelModel::wireless(0.0);
    wireless.burst_loss = false;
    wireless.bandwidth_bps = 100e6;
    cfg.hierarchy.wireless = wireless;
    cfg.num_sources = p.sources;
    cfg.source.rate_hz = p.rate_hz;
    cfg.record_deliveries = false;  // O(total) debug log defeats the point
    const double seconds =
        static_cast<double>(p.target_msgs) /
        (static_cast<double>(p.sources) * p.rate_hz);

    const auto wall0 = std::chrono::steady_clock::now();
    core::RingNetProtocol proto(sim, cfg);
    proto.start();
    sim.run_for(sim::secs(seconds));
    proto.stop_sources();
    sim.run_for(sim::secs(2.0));
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    table.row()
        .cell(static_cast<std::uint64_t>(p.brs))
        .cell(static_cast<std::uint64_t>(p.sources))
        .cell(p.rate_hz, 0)
        .cell(proto.total_sent())
        .cell(static_cast<std::uint64_t>(proto.archive_peak()))
        .cell(static_cast<std::uint64_t>(proto.archive_retained()))
        .cell(static_cast<std::uint64_t>(proto.submit_log_peak()))
        .cell(static_cast<std::uint64_t>(proto.submit_log_retained()))
        .cell(sim.metrics().gauge("buf.mq.peak"), 0)
        .cell(wall_ms, 1)
        .cell(static_cast<double>(proto.total_sent()) / wall_ms * 1000.0, 0);
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: 'arch peak' / 'sublog peak' / 'MQ peak' sit at\n"
      "O(archive_retention + mq_retention + in-flight window) and do NOT\n"
      "grow with 'sent' (rows differ 10x in volume, peaks stay flat);\n"
      "before watermark pruning the archive peak equaled 'sent'.\n");
  return 0;
}
