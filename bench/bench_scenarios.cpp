// E12: the scenario catalogue sweep. Every canned workload — mobility
// models over the cell grid, churn processes, bursty/skewed/diurnal
// traffic, and scripted fault timelines — runs against the ordered
// protocol and the Remark 3 unordered variant, tabulating delivery,
// latency percentiles, gap-skips, mobility/churn volume and recovery
// machinery. Exits non-zero if any run reports an order violation, so CI
// can use it directly as the scenario smoke gate. Runs are deterministic:
// the same --seed reproduces the tables bit-for-bit.

#include <iostream>
#include <iterator>

#include "bench_util.hpp"

using namespace ringnet;

int main(int argc, char** argv) {
  const auto opts = bench::parse_cli(argc, argv);
  bench::print_header(
      "E12 / scenario catalogue — declarative mobility, churn, traffic, "
      "faults",
      "total order survives every workload the engine can express; loss is "
      "confined to gap-skipped ranges, dark cells and dead domains");

  const struct {
    baseline::Variant v;
    const char* name;
  } variants[] = {
      {baseline::Variant::RingNet, "ringnet"},
      {baseline::Variant::RingNetUnordered, "unordered"},
  };

  // Resolve the scenario set up front: the verbatim parsed spec for an
  // ad-hoc --scenario (no describe/re-parse round-trip), the canonical
  // text for catalogue entries.
  std::vector<std::pair<std::string, scenario::ScenarioSpec>> entries;
  if (opts.scenario) {
    const auto parsed = bench::resolve_scenario(*opts.scenario);
    if (!parsed) return 2;
    entries.emplace_back(parsed->name, *parsed);
  } else {
    for (const auto& c : scenario::catalogue()) {
      const auto parsed = bench::resolve_scenario(c.text);
      if (!parsed) return 2;  // a canned entry must always parse
      entries.emplace_back(c.name, *parsed);
    }
  }

  // The sweep assigns each resolved spec itself; keep apply_cli to the
  // seed/duration overrides so --scenario is not re-resolved per spec.
  bench::Options run_opts = opts;
  run_opts.scenario.reset();

  std::vector<baseline::RunSpec> specs;
  for (const auto& [name, sc] : entries) {
    for (const auto& var : variants) {
      baseline::RunSpec spec;
      spec.config.hierarchy.num_brs = 3;
      spec.config.hierarchy.ags_per_br = 1;
      spec.config.hierarchy.aps_per_ag = 4;
      spec.config.hierarchy.mhs_per_ap = 1;
      spec.config.num_sources = 2;
      spec.variant = var.v;
      spec.seed = 7;
      bench::apply_cli(run_opts, spec);
      spec.scenario = sc;
      specs.push_back(spec);
    }
  }
  const auto results = bench::run_all(specs);

  stats::Table table(
      "scenario x variant (12 cells / 3 BR domains, 2 sources; lat in ms)",
      {"scenario", "variant", "delivery", "p50", "p99", "gaps", "lost",
       "handoffs", "leaves", "blk drop", "upl lost", "retx", "regen",
       "order ok"});
  int violations = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& r = results[i];
    const auto& name = entries[i / std::size(variants)].first;
    if (r.order_violation) {
      ++violations;
      std::fprintf(stderr, "ORDER VIOLATION in '%s': %s\n", name.c_str(),
                   r.order_violation->c_str());
    }
    table.row()
        .cell(name)
        .cell(variants[i % std::size(variants)].name)
        .cell(r.min_delivery_ratio, 3)
        .cell(static_cast<double>(r.lat_p50_us) / 1e3, 2)
        .cell(static_cast<double>(r.lat_p99_us) / 1e3, 2)
        .cell(r.mh_gaps_skipped)
        .cell(r.really_lost)
        .cell(r.handoffs)
        .cell(r.churn_leaves)
        .cell(r.blackout_drops)
        .cell(r.uplink_lost)
        .cell(r.retransmits)
        .cell(r.token_regenerations)
        .cell(r.order_violation.has_value() ? "NO" : "yes");
  }
  table.print(std::cout);
  if (opts.spans) {
    // Per-stage lifecycle breakdown for the ordered variant of each
    // scenario (the unordered variant skips the assignment pass, so its
    // breakdown degenerates and is omitted).
    std::printf("\n");
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].variant != baseline::Variant::RingNet) continue;
      if (results[i].spans.empty()) continue;
      const auto& name = entries[i / std::size(variants)].first;
      std::printf("%s\n",
                  results[i].spans.table("spans / " + name + " (us)").c_str());
    }
  }
  std::printf(
      "\nExpected shape: 'order ok' everywhere (the engine can delay and\n"
      "drop, never reorder). Mobility scenarios show handoffs, churn\n"
      "scenarios show leaves (long-absence converts them into gap-skips\n"
      "counted as lost, not a wedge), dark-cells shows blackout drops\n"
      "(downlink: repaired by post-window resync) alongside unrecoverable\n"
      "uplink losses (no end-to-end source ARQ — these cap its delivery\n"
      "ratio), and the fault scenarios show token regenerations. The\n"
      "unordered variant trades the ordering pass for lower latency but\n"
      "loses the resync machinery under churn.\n");
  return violations == 0 ? 0 : 1;
}
