// E3 (Theorem 5.1, latency bound): "any message will be ordered, forwarded,
// and delivered within the message latency bound of
// Max(Torder, Ttransmit) + tau + Tdeliver" (retransmission excluded, so all
// channels run loss-free here). Ordering latency (source submit -> copied
// into a top-ring MQ) is measured against the bound; end-to-end MH latency
// against bound + Tdeliver. The table prints both the paper's constant and
// the corrected tight constant 2*Torder + tau (Proof 5.1 misses the second
// rotation a WTSNP entry needs to reach every other ring node; see
// EXPERIMENTS.md E3 for the analysis). Sweeps tau and the ring size r.

#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec base_spec() {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 4;
  spec.config.hierarchy.ags_per_br = 2;
  spec.config.hierarchy.aps_per_ag = 2;
  spec.config.hierarchy.mhs_per_ap = 1;
  // Theorem 5.1 is stated "without considering retransmission": loss-free
  // channels everywhere, including the wireless cells.
  auto wireless = net::ChannelModel::wireless(0.0);
  wireless.burst_loss = false;
  spec.config.hierarchy.wireless = wireless;
  spec.config.num_sources = 2;
  spec.config.source.rate_hz = 100.0;
  spec.config.record_deliveries = false;
  spec.run = sim::secs(2.0);
  return spec;
}

}  // namespace

int main() {
  bench::print_header(
      "E3 / Theorem 5.1 — latency bound",
      "ordering latency <= Max(Torder, Ttransmit) + tau (paper) / 2*Torder + "
      "tau (tight); end-to-end adds Tdeliver (no retransmission)");

  // --- tau sweep -----------------------------------------------------------
  {
    std::vector<baseline::RunSpec> specs;
    const std::vector<int> taus_ms = {1, 2, 5, 10, 15};
    for (int tau : taus_ms) {
      auto spec = base_spec();
      spec.config.options.tau = sim::msecs(tau);
      specs.push_back(spec);
    }
    const auto results = bench::run_all(specs);

    stats::Table table("latency vs tau (r=4, s=2, lambda=100/s; times in ms)",
                       {"tau", "paper bound", "tight bound", "order p99",
                        "order max", "e2e tight bound", "e2e max",
                        "within tight"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto bounds = core::analyze(specs[i].config);
      const auto& r = results[i];
      const bool ok =
          r.assign_max_us <=
              static_cast<std::uint64_t>(bounds.tight_order_bound_s() * 1.15e6) &&
          r.lat_max_us <=
              static_cast<std::uint64_t>(bounds.tight_e2e_bound_s() * 1.15e6);
      table.row()
          .cell(static_cast<std::int64_t>(taus_ms[i]))
          .cell(bounds.paper_order_bound_s() * 1e3, 2)
          .cell(bounds.tight_order_bound_s() * 1e3, 2)
          .cell(static_cast<double>(r.assign_p99_us) / 1e3, 2)
          .cell(static_cast<double>(r.assign_max_us) / 1e3, 2)
          .cell(bounds.tight_e2e_bound_s() * 1e3, 2)
          .cell(static_cast<double>(r.lat_max_us) / 1e3, 2)
          .cell(ok ? "yes" : "NO");
    }
    table.print(std::cout);
  }

  // --- ring-size sweep -------------------------------------------------------
  {
    std::vector<baseline::RunSpec> specs;
    const std::vector<std::size_t> rings = {2, 3, 4, 6, 8, 12, 16};
    for (std::size_t r : rings) {
      auto spec = base_spec();
      spec.config.hierarchy.num_brs = r;
      specs.push_back(spec);
    }
    const auto results = bench::run_all(specs);

    stats::Table table(
        "latency vs top-ring size r (tau=5ms; times in ms)",
        {"r", "Torder est", "paper bound", "tight bound", "order max",
         "e2e tight bound", "e2e max", "within tight"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto bounds = core::analyze(specs[i].config);
      const auto& r = results[i];
      const bool ok =
          r.assign_max_us <=
              static_cast<std::uint64_t>(bounds.tight_order_bound_s() * 1.15e6) &&
          r.lat_max_us <=
              static_cast<std::uint64_t>(bounds.tight_e2e_bound_s() * 1.15e6);
      table.row()
          .cell(static_cast<std::uint64_t>(rings[i]))
          .cell(bounds.torder_s * 1e3, 2)
          .cell(bounds.paper_order_bound_s() * 1e3, 2)
          .cell(bounds.tight_order_bound_s() * 1e3, 2)
          .cell(static_cast<double>(r.assign_max_us) / 1e3, 2)
          .cell(bounds.tight_e2e_bound_s() * 1e3, 2)
          .cell(static_cast<double>(r.lat_max_us) / 1e3, 2)
          .cell(ok ? "yes" : "NO");
    }
    table.print(std::cout);
  }

  std::printf(
      "\nExpected shape: measured maxima sit below the TIGHT bound\n"
      "2*Torder + tau (+ Tdeliver); the paper's Max(Torder,Ttransmit)+tau\n"
      "misses the second token rotation a WTSNP entry needs to reach every\n"
      "other ring node and is exceeded by ~2x — a constant-factor\n"
      "correction, the linear-in-r / additive-in-tau shape is confirmed.\n");
  return 0;
}
