// E4 (Theorem 5.1, buffer bound): "the size of WQ can be set to
// s*lambda*(Max(Torder,Ttransmit)+tau); the size [of MQ] can be set to
// s*lambda*Torder" — i.e. buffers are bounded and scale with s*lambda and
// the rotation/assignment times. Peak occupancies are measured with the
// handoff retention disabled (the theorem has no retention policy).

#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

int main() {
  bench::print_header(
      "E4 / Theorem 5.1 — buffer bounds",
      "WQ <= s*lambda*(Max(Torder,Ttransmit)+tau), MQ <= s*lambda*Torder "
      "(plus delivery/ack lag the theorem's instant-tagging model ignores)");

  struct Point {
    std::size_t s;
    double rate;
    int tau_ms;
  };
  const std::vector<Point> points = {
      {1, 100, 5}, {2, 100, 5},  {4, 100, 5},  {4, 200, 5},
      {4, 400, 5}, {2, 200, 2},  {2, 200, 10}, {2, 200, 20},
  };

  std::vector<baseline::RunSpec> specs;
  for (const auto& p : points) {
    baseline::RunSpec spec;
    spec.config.hierarchy.num_brs = 4;
    spec.config.hierarchy.ags_per_br = 1;
    spec.config.hierarchy.aps_per_ag = 1;
    spec.config.hierarchy.mhs_per_ap = 1;
    // Theorem 5.1 excludes retransmission and assumes every link carries
    // the offered load; a lossy 10 Mb/s cell at s*lambda = 1600 msg/s
    // violates that precondition with radio-queueing spikes (see E8 for
    // the lossy regime).
    auto wireless = net::ChannelModel::wireless(0.0);
    wireless.burst_loss = false;
    wireless.bandwidth_bps = 100e6;
    spec.config.hierarchy.wireless = wireless;
    spec.config.num_sources = p.s;
    spec.config.source.rate_hz = p.rate;
    spec.config.options.tau = sim::msecs(p.tau_ms);
    spec.config.options.mq_retention = 0;  // measure the theorem's quantity
    spec.config.record_deliveries = false;
    spec.run = sim::secs(2.0);
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);

  stats::Table table(
      "peak buffer occupancy (messages) vs Theorem 5.1 sizing",
      {"s", "lambda", "tau ms", "WQ bound", "WQ peak", "MQ bound(+lag)",
       "MQ peak", "bounded"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const auto bounds = core::analyze(specs[i].config);
    // WQ uses the paper's sizing directly; the MQ budget uses the tight
    // ordering constant plus delivery/ack lag (core/analysis.hpp, validated
    // here and discussed in EXPERIMENTS.md E4).
    const double wq_bound = bounds.wq_bound_msgs();
    const double mq_bound =
        bounds.mq_bound_msgs(specs[i].config.options.ack_period.seconds());
    const auto& r = results[i];
    // 2x slack: the bound models steady flow, while τ-tick batch assignment
    // creates transient occupancy spikes at high rates.
    const bool ok = r.wq_peak <= wq_bound * 2.0 + 4 &&
                    r.mq_peak <= mq_bound * 2.0 + 4;
    table.row()
        .cell(static_cast<std::uint64_t>(p.s))
        .cell(p.rate, 0)
        .cell(static_cast<std::int64_t>(p.tau_ms))
        .cell(wq_bound, 1)
        .cell(r.wq_peak, 0)
        .cell(mq_bound, 1)
        .cell(r.mq_peak, 0)
        .cell(ok ? "yes" : "NO");
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: peaks stay within a small constant of the analytic\n"
      "sizing and scale linearly with s*lambda (rows 1-5) and with tau\n"
      "(rows 6-8, WQ only) — 'all the buffers only need limited sizes'.\n");
  return 0;
}
