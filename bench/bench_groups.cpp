// E15: multi-group genuineness sweep. One deployment shape swept over the
// total group count (1 -> 256, overlap fixed) and then over the overlap
// degree (memberships per MH at a fixed group count), measuring deliveries
// per submitted message — the per-message delivery cost. Genuine multicast
// means that cost tracks the destination groups' membership size, not the
// number of groups sharing the ring: it must fall as the population spreads
// over more groups and rise with the overlap degree. Both monotonicity
// gates and the zero-pairwise-order-violation gate exit non-zero on
// failure, so CI can run this as a correctness smoke as well as a bench.
//
//   bench_groups [--smoke] [--seed N] [--shard THREADS] [--json FILE]
//
// --json emits google-benchmark format for tools/bench_diff.py trajectory
// tracking; --smoke shrinks both sweeps to a seconds-long CI gate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/harness.hpp"
#include "net/channel.hpp"

namespace {

using namespace ringnet;

struct SweepResult {
  std::size_t groups = 0;
  std::size_t per_mh = 0;
  double wall_s = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double deliveries_per_msg = 0.0;
};

baseline::RunSpec make_spec(std::size_t groups, std::size_t per_mh,
                            std::uint64_t seed, bool smoke,
                            std::size_t shard_threads, bool shard) {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 4;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 4;
  spec.config.hierarchy.mhs_per_ap = 4;  // 64 MHs
  // Zero-loss channels: the sweep measures delivery fan-out, not ARQ.
  spec.config.hierarchy.wan = net::ChannelModel::wired_wan(0.0);
  spec.config.hierarchy.lan = net::ChannelModel::wired_lan(0.0);
  spec.config.hierarchy.wireless = net::ChannelModel::wireless(0.0);
  spec.config.num_sources = 8;
  spec.config.source.rate_hz = smoke ? 60.0 : 120.0;
  spec.config.groups.count = groups;
  spec.config.groups.groups_per_mh = per_mh;
  spec.config.groups.dest_groups = 2;
  spec.warmup = sim::secs(0.1);
  spec.run = smoke ? sim::secs(0.5) : sim::secs(1.5);
  spec.drain = sim::secs(0.5);
  spec.seed = seed;
  spec.shard = shard;
  spec.shard_threads = shard_threads;
  return spec;
}

int failures = 0;

SweepResult run_point(std::size_t groups, std::size_t per_mh,
                      std::uint64_t seed, bool smoke,
                      std::size_t shard_threads, bool shard) {
  const auto spec =
      make_spec(groups, per_mh, seed, smoke, shard_threads, shard);
  const auto t0 = std::chrono::steady_clock::now();
  const baseline::RunResult res = baseline::run_experiment(spec);
  const auto t1 = std::chrono::steady_clock::now();

  SweepResult r;
  r.groups = groups;
  r.per_mh = per_mh;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.sent = res.total_sent;
  r.delivered = res.delivered_total;
  r.deliveries_per_msg =
      r.sent > 0 ? static_cast<double>(r.delivered) /
                       static_cast<double>(r.sent)
                 : 0.0;
  if (res.order_violation) {
    std::fprintf(stderr, "FAIL: order violation at groups=%zu per_mh=%zu: %s\n",
                 groups, per_mh, res.order_violation->c_str());
    ++failures;
  }
  if (r.sent == 0 || r.delivered == 0) {
    std::fprintf(stderr, "FAIL: empty run at groups=%zu per_mh=%zu\n", groups,
                 per_mh);
    ++failures;
  }
  std::printf("%8zu %8zu %10.3f %10llu %12llu %16.2f\n", groups, per_mh,
              r.wall_s, static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.delivered),
              r.deliveries_per_msg);
  return r;
}

void write_json(const std::string& path,
                const std::vector<SweepResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"library_build_type\": \"release\"\n  },\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f,
                 "      \"name\": \"BM_GroupSweep/groups:%zu/per_mh:%zu\",\n",
                 r.groups, r.per_mh);
    std::fprintf(f, "      \"run_type\": \"iteration\",\n");
    std::fprintf(f, "      \"iterations\": 1,\n");
    std::fprintf(f, "      \"real_time\": %.6e,\n", r.wall_s * 1e3);
    std::fprintf(f, "      \"cpu_time\": %.6e,\n", r.wall_s * 1e3);
    std::fprintf(f, "      \"time_unit\": \"ms\",\n");
    std::fprintf(f, "      \"deliveries_per_msg\": %.4f\n",
                 r.deliveries_per_msg);
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool shard = false;
  std::size_t shard_threads = 0;
  std::uint64_t seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      shard = true;
      shard_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seed N] [--shard THREADS] "
                   "[--json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf(
      "# E15 multi-group genuineness sweep: 4 BR domains, 64 MHs, "
      "8 sources, dest=2, seed %llu%s\n"
      "# deliveries/msg must fall with group count and rise with overlap\n\n",
      static_cast<unsigned long long>(seed), smoke ? " (smoke)" : "");
  std::printf("%8s %8s %10s %10s %12s %16s\n", "groups", "per_mh", "wall_s",
              "sent", "delivered", "deliveries/msg");

  const std::vector<std::size_t> group_sweep =
      smoke ? std::vector<std::size_t>{1, 8, 64}
            : std::vector<std::size_t>{1, 4, 16, 64, 256};
  const std::vector<std::size_t> overlap_sweep =
      smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2,
                                                                        4, 8};
  std::vector<SweepResult> results;

  // Sweep A: total group count at fixed overlap. Per-message cost must not
  // grow: the destination groups' membership shrinks as the fixed
  // population spreads over more groups, and non-destination groups must
  // cost nothing (genuineness).
  std::vector<double> by_groups;
  for (const std::size_t g : group_sweep) {
    const SweepResult r = run_point(g, 2, seed, smoke, shard_threads, shard);
    by_groups.push_back(r.deliveries_per_msg);
    results.push_back(r);
  }
  for (std::size_t i = 1; i < by_groups.size(); ++i) {
    // Allow 5% jitter between adjacent points; the endpoints must show a
    // clear fall (spreading 64 MHs over 64x more groups shrinks every
    // destination set).
    if (by_groups[i] > by_groups[i - 1] * 1.05) {
      std::fprintf(stderr,
                   "FAIL: deliveries/msg rose with group count "
                   "(%zu groups: %.2f -> %zu groups: %.2f)\n",
                   group_sweep[i - 1], by_groups[i - 1], group_sweep[i],
                   by_groups[i]);
      ++failures;
    }
  }
  if (by_groups.back() >= by_groups.front() * 0.5) {
    std::fprintf(stderr,
                 "FAIL: per-message cost barely fell across the group sweep "
                 "(%.2f -> %.2f): relay is not genuine\n",
                 by_groups.front(), by_groups.back());
    ++failures;
  }

  std::printf("\n");

  // Sweep B: overlap degree at a fixed group count. Per-message cost must
  // track destination membership, which grows with memberships per MH.
  std::vector<double> by_overlap;
  const std::size_t fixed_groups = 16;
  for (const std::size_t per : overlap_sweep) {
    const SweepResult r =
        run_point(fixed_groups, per, seed, smoke, shard_threads, shard);
    by_overlap.push_back(r.deliveries_per_msg);
    results.push_back(r);
  }
  for (std::size_t i = 1; i < by_overlap.size(); ++i) {
    if (by_overlap[i] < by_overlap[i - 1] * 0.95) {
      std::fprintf(stderr,
                   "FAIL: deliveries/msg fell as overlap grew "
                   "(per_mh %zu: %.2f -> per_mh %zu: %.2f)\n",
                   overlap_sweep[i - 1], by_overlap[i - 1], overlap_sweep[i],
                   by_overlap[i]);
      ++failures;
    }
  }

  if (!json_path.empty()) write_json(json_path, results);
  std::printf("\nbench_groups: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}
