// E10: google-benchmark micro suite — the per-operation costs of the data
// structures on the protocol's hot paths: MQ store/deliver, WQ add/assign,
// token WTSNP update/lookup, wire codec, event scheduler and histogram.

#include <benchmark/benchmark.h>

#include "core/message_queue.hpp"
#include "core/protocol.hpp"
#include "core/working_queue.hpp"
#include "net/channel.hpp"
#include "proto/messages.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"
#include "util/rng.hpp"

namespace {

using namespace ringnet;

proto::DataMsg make_data(GlobalSeq g) {
  proto::DataMsg m;
  m.gid = GroupId{1};
  m.source = NodeId{1};
  m.lseq = g;
  m.ordering_node = NodeId{1};
  m.gseq = g;
  m.epoch = 1;
  m.payload_size = 256;
  return m;
}

void BM_MessageQueueStoreDeliver(benchmark::State& state) {
  core::MessageQueue mq(1024);
  GlobalSeq g = 0;
  for (auto _ : state) {
    mq.store(make_data(g), sim::SimTime{0});
    mq.mark_delivered(g);
    ++g;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g));
}
BENCHMARK(BM_MessageQueueStoreDeliver);

void BM_MessageQueueOutOfOrderWindow(benchmark::State& state) {
  const auto window = static_cast<GlobalSeq>(state.range(0));
  core::MessageQueue mq(16);
  GlobalSeq base = 0;
  for (auto _ : state) {
    // Arrivals in reverse inside a window: worst-case gap materialization.
    for (GlobalSeq i = window; i-- > 0;) {
      mq.store(make_data(base + i), sim::SimTime{0});
    }
    for (GlobalSeq i = 0; i < window; ++i) mq.mark_delivered(base + i);
    base += window;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(base));
}
BENCHMARK(BM_MessageQueueOutOfOrderWindow)->Arg(8)->Arg(64)->Arg(512);

void BM_WorkingQueueAddAssign(benchmark::State& state) {
  const auto sources = static_cast<std::uint32_t>(state.range(0));
  core::WorkingQueue wq;
  std::vector<LocalSeq> next(sources, 0);
  std::uint64_t items = 0;
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < sources; ++s) {
      proto::DataMsg m;
      m.source = NodeId{s};
      m.lseq = next[s]++;
      wq.add(m);
    }
    std::size_t dropped = 0;
    auto out = wq.assign(
        [](proto::DataMsg& m) {
          m.gseq = m.lseq;
          return true;
        },
        dropped);
    items += out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_WorkingQueueAddAssign)->Arg(1)->Arg(4)->Arg(16);

void BM_TokenUpdateAndLookup(benchmark::State& state) {
  const auto ring = static_cast<std::uint32_t>(state.range(0));
  proto::OrderingToken token(GroupId{1}, 1);
  LocalSeq lseq = 0;
  std::uint32_t holder = 0;
  for (auto _ : state) {
    token.prune_entries_of(NodeId{holder});
    token.append_range(NodeId{holder}, NodeId{holder}, lseq, lseq + 9);
    benchmark::DoNotOptimize(token.lookup(NodeId{holder}, lseq + 5));
    lseq += 10;
    holder = (holder + 1) % ring;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenUpdateAndLookup)->Arg(3)->Arg(8)->Arg(32);

void BM_TokenSerialize(benchmark::State& state) {
  proto::OrderingToken token(GroupId{1}, 1);
  for (int i = 0; i < state.range(0); ++i) {
    token.append_range(NodeId{static_cast<std::uint32_t>(i)},
                       NodeId{static_cast<std::uint32_t>(i)}, 0, 99);
  }
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    proto::WireWriter w;
    token.serialize(w);
    bytes += w.size();
    benchmark::DoNotOptimize(w);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TokenSerialize)->Arg(4)->Arg(32);

void BM_TokenDecodeOwned(benchmark::State& state) {
  // Relay-side cost of materializing a received token: full deserialize
  // into an owned OrderingToken (vector<WtsnpEntry> allocation + copy),
  // then one WTSNP lookup.
  proto::OrderingToken token(GroupId{1}, 1);
  for (int i = 0; i < state.range(0); ++i) {
    token.append_range(NodeId{static_cast<std::uint32_t>(i)},
                       NodeId{static_cast<std::uint32_t>(i)}, 0, 99);
  }
  proto::WireWriter w;
  token.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();
  for (auto _ : state) {
    proto::WireReader r(bytes);
    auto decoded = proto::OrderingToken::deserialize(r);
    benchmark::DoNotOptimize(decoded->lookup(NodeId{0}, 50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenDecodeOwned)->Arg(4)->Arg(32);

void BM_TokenDecodeView(benchmark::State& state) {
  // Same frame, zero-copy: TokenView::parse validates the length once and
  // the lookup reads WTSNP rows in place — no per-hop entry vector.
  proto::OrderingToken token(GroupId{1}, 1);
  for (int i = 0; i < state.range(0); ++i) {
    token.append_range(NodeId{static_cast<std::uint32_t>(i)},
                       NodeId{static_cast<std::uint32_t>(i)}, 0, 99);
  }
  proto::WireWriter w;
  token.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();
  for (auto _ : state) {
    auto view = proto::TokenView::parse(bytes);
    benchmark::DoNotOptimize(view->lookup(NodeId{0}, 50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenDecodeView)->Arg(4)->Arg(32);

void BM_TokenForwardRing(benchmark::State& state) {
  // The ordering loop with members and traffic stripped out: the token
  // circulates an 8-BR ring, so each iteration pays token_arrive (serial
  // check, rotation bump, WTSNP prune, empty WQ assign, next-hop pick) and
  // the scheduler hop — the flat alive-ring/ring-pos hot path.
  sim::Simulation sim(1);
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 8;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 1;
  cfg.hierarchy.mhs_per_ap = 1;
  cfg.hierarchy.wan = net::ChannelModel::wired_wan(0.0);
  cfg.hierarchy.lan = net::ChannelModel::wired_lan(0.0);
  cfg.hierarchy.wireless = net::ChannelModel::wireless(0.0);
  cfg.num_sources = 1;
  cfg.source.rate_hz = 0.0;  // no traffic: pure token machinery
  cfg.record_deliveries = false;
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  for (auto _ : state) {
    sim.run_for(sim::msecs(50));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.metrics().counter("token.held")));
}
BENCHMARK(BM_TokenForwardRing);

void BM_DistributeBatchDeliver(benchmark::State& state) {
  // The delivery fan-out path end to end: ordered batches distributed
  // ring-wide, forwarded down 64-member subtrees and delivered in gseq
  // order — dominated by forward_down + mh_receive + MQ store/deliver.
  sim::Simulation sim(1);
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 4;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 8;
  cfg.hierarchy.mhs_per_ap = 8;
  cfg.hierarchy.wan = net::ChannelModel::wired_wan(0.0);
  cfg.hierarchy.lan = net::ChannelModel::wired_lan(0.0);
  cfg.hierarchy.wireless = net::ChannelModel::wireless(0.0);
  cfg.num_sources = 8;
  cfg.source.rate_hz = 400.0;
  cfg.options.ack_period = sim::msecs(50);
  cfg.record_deliveries = false;
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  for (auto _ : state) {
    sim.run_for(sim::msecs(10));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.metrics().counter("mh.delivered")));
}
BENCHMARK(BM_DistributeBatchDeliver);

void BM_DataMsgCodecRoundTrip(benchmark::State& state) {
  const proto::Message msg = make_data(123456789);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto encoded = proto::encode(msg);
    bytes += encoded.size();
    auto decoded = proto::decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DataMsgCodecRoundTrip);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(sim::SimTime{i}, [&sink] { ++sink; });
    }
    sched.run_to_completion();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_MetricsIncrStringKey(benchmark::State& state) {
  // The pre-interning hot path: every incr pays a string hash + lookup.
  sim::Metrics m;
  for (auto _ : state) {
    m.incr("arq.retransmits");
  }
  benchmark::DoNotOptimize(m.counter("arq.retransmits"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsIncrStringKey);

void BM_MetricsIncrInterned(benchmark::State& state) {
  // The protocol's hot path: handles interned once, incr is a vector index.
  sim::Metrics m;
  const auto id = m.intern("arq.retransmits");
  for (auto _ : state) {
    m.incr(id);
  }
  benchmark::DoNotOptimize(m.counter(id));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsIncrInterned);

void BM_TraceRecordCapped(benchmark::State& state) {
  // Ring-capped tracing: steady-state cost of record + keep-latest trim.
  sim::Trace trace;
  trace.enable();
  trace.set_capacity(static_cast<std::size_t>(state.range(0)));
  std::int64_t t = 0;
  for (auto _ : state) {
    trace.record(sim::TraceKind::Deliver, sim::SimTime{t++}, NodeId{1}, 7);
  }
  benchmark::DoNotOptimize(trace.events().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordCapped)->Arg(1024)->Arg(65536);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  util::Rng rng(1);
  for (auto _ : state) {
    h.record(rng.next() & 0xFFFFF);
  }
  benchmark::DoNotOptimize(h.p99());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

BENCHMARK_MAIN();
