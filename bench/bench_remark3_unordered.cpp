// E5 (Remark 3): "If totally-ordered property is not required, then
// multicast using the RingNet hierarchy will be more efficient and message
// latency will decrease due to the fact that ordering operations are not
// required in the top logical ring." Compares the latency distribution of
// the ordered protocol and the unordered variant on identical hierarchies.

#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

int main() {
  bench::print_header(
      "E5 / Remark 3 — ordered vs unordered latency",
      "without ordering, latency drops (same hierarchy, same load); "
      "throughput is identical");

  stats::Table table("latency: RingNet ordered vs unordered (ms)",
                     {"r", "lambda", "variant", "mean", "p50", "p90", "p99",
                      "thr/MH"});
  for (const std::size_t r : {3u, 6u, 12u}) {
    for (const double rate : {100.0, 300.0}) {
      baseline::RunSpec spec;
      spec.config.hierarchy.num_brs = r;
      spec.config.hierarchy.ags_per_br = 2;
      spec.config.hierarchy.aps_per_ag = 2;
      spec.config.hierarchy.mhs_per_ap = 1;
      spec.config.num_sources = 2;
      spec.config.source.rate_hz = rate;
      spec.config.record_deliveries = false;
      spec.run = sim::secs(2.0);

      auto unordered = spec;
      unordered.variant = baseline::Variant::RingNetUnordered;
      const auto results = bench::run_all({spec, unordered});

      for (std::size_t i = 0; i < 2; ++i) {
        const auto& res = results[i];
        table.row()
            .cell(static_cast<std::uint64_t>(r))
            .cell(rate, 0)
            .cell(i == 0 ? "ordered" : "unordered")
            .cell(res.lat_mean_us / 1e3, 2)
            .cell(static_cast<double>(res.lat_p50_us) / 1e3, 2)
            .cell(static_cast<double>(res.lat_p90_us) / 1e3, 2)
            .cell(static_cast<double>(res.lat_p99_us) / 1e3, 2)
            .cell(res.throughput_per_mh_hz, 1);
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: the unordered rows show markedly lower latency at\n"
      "every percentile (no token wait, no tau), identical throughput; the\n"
      "ordered/unordered latency gap widens with ring size r.\n");
  return 0;
}
