// E2 (Theorem 5.1, throughput): "our totally-ordered multicast protocol
// provides the same multicast throughput [as the protocol without ordering]
// as s*λ messages each time unit". The table reports per-MH delivered rate
// for the ordered protocol, the unordered baseline, and the offered load,
// across ring sizes r, source counts s and rates λ.

#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

int main() {
  bench::print_header(
      "E2 / Theorem 5.1 — throughput parity",
      "ordered throughput = unordered throughput = s*lambda per time unit");

  struct Point {
    std::size_t r, s;
    double rate;
  };
  const std::vector<Point> points = {
      {2, 1, 100}, {2, 2, 100},  {4, 2, 100},  {4, 4, 100},
      {8, 4, 100}, {8, 8, 100},  {4, 2, 400},  {4, 4, 250},
      {16, 8, 50}, {16, 16, 50},
  };

  std::vector<baseline::RunSpec> specs;
  for (const auto& p : points) {
    baseline::RunSpec spec;
    spec.config.hierarchy.num_brs = p.r;
    spec.config.hierarchy.ags_per_br = 1;
    spec.config.hierarchy.aps_per_ag = 1;
    spec.config.hierarchy.mhs_per_ap = 1;
    spec.config.num_sources = p.s;
    spec.config.source.rate_hz = p.rate;
    spec.config.record_deliveries = false;  // volume: metrics only
    spec.run = sim::secs(2.0);
    specs.push_back(spec);
    spec.variant = baseline::Variant::RingNetUnordered;
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);

  stats::Table table("throughput parity (per-MH delivered msg/s)",
                     {"r", "s", "lambda", "offered s*l", "ordered", "unordered",
                      "ordered/offered"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const auto& ordered = results[2 * i];
    const auto& unordered = results[2 * i + 1];
    const double offered = static_cast<double>(p.s) * p.rate;
    table.row()
        .cell(static_cast<std::uint64_t>(p.r))
        .cell(static_cast<std::uint64_t>(p.s))
        .cell(p.rate, 0)
        .cell(offered, 0)
        .cell(ordered.throughput_per_mh_hz, 1)
        .cell(unordered.throughput_per_mh_hz, 1)
        .cell(ordered.throughput_per_mh_hz / offered, 3);
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: both protocol columns track the offered column\n"
      "(ratio ~= 1.0) at every (r, s, lambda) the ring can carry — ordering\n"
      "costs latency and buffers, never throughput.\n");
  return 0;
}
