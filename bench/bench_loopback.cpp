// Loopback soak: boot the Figure-1 hierarchy as real threaded nodes over
// UDP sockets on 127.0.0.1, run a count-bounded scripted workload through
// the supervisor handshake, and gate the outcome against the deterministic
// simulator as oracle. The exact gseq->message binding is timing-dependent
// (each execution is its own serialization), so the cross-execution gate
// compares what must be invariant: each MH's delivered multiset of
// (source, lseq), per-MH delivered counts, zero total-order violations
// within each run, and really-lost parity. Non-zero exit on any mismatch.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "baseline/harness.hpp"
#include "net/channel.hpp"
#include "runtime/orchestrator.hpp"

namespace {

using ringnet::baseline::RunResult;
using ringnet::baseline::RunSpec;
using ringnet::runtime::LoopbackResult;
using ringnet::runtime::LoopbackSpec;

[[noreturn]] void usage_and_exit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--smoke] [--spans] [--brs N] [--aps-per-br N] "
               "[--mhs-per-ap N] [--msgs N] [--rate HZ] [--seed N] "
               "[--time-scale F] [--groups N] [--per-mh N] [--dest N]\n",
               prog);
  std::exit(2);
}

std::int64_t percentile(std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// The invariant delivery content of one MH: its (source, lseq) multiset.
std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted_pairs(
    const ringnet::core::DeliveryLog::Rec* recs, std::size_t n) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(recs[i].source.v, recs[i].lseq);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  LoopbackSpec spec;
  spec.num_brs = 2;
  spec.aps_per_br = 2;
  spec.mhs_per_ap = 8;
  spec.rate_hz = 50.0;
  spec.msgs_per_source = 40;
  std::uint64_t seed = 1;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    const auto num = [&](const std::string& v) -> std::uint64_t {
      char* end = nullptr;
      const std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0') {
        usage_and_exit(argv[0]);
      }
      return n;
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--spans") {
      spec.opts.record_spans = true;
    } else if (arg == "--brs") {
      spec.num_brs = num(value());
    } else if (arg == "--aps-per-br") {
      spec.aps_per_br = num(value());
    } else if (arg == "--mhs-per-ap") {
      spec.mhs_per_ap = num(value());
    } else if (arg == "--msgs") {
      spec.msgs_per_source = static_cast<std::uint32_t>(num(value()));
    } else if (arg == "--rate") {
      spec.rate_hz = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--seed") {
      seed = num(value());
    } else if (arg == "--time-scale") {
      spec.time_scale = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--groups") {
      spec.groups.count = num(value());
    } else if (arg == "--per-mh") {
      spec.groups.groups_per_mh = num(value());
    } else if (arg == "--dest") {
      spec.groups.dest_groups = num(value());
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (smoke) {
    // Still the acceptance floor (2 BRs / 4 APs / 32 MHs), just a shorter
    // script so sanitizer legs finish quickly.
    spec.msgs_per_source = 12;
    spec.rate_hz = 40.0;
  }
  if (spec.num_brs < 1 || spec.aps_per_br < 1 || spec.mhs_per_ap < 1 ||
      spec.rate_hz <= 0.0 || spec.msgs_per_source == 0) {
    usage_and_exit(argv[0]);
  }

  const LoopbackSpec eff = ringnet::runtime::scaled(spec);
  const std::size_t n_mh = eff.n_mhs();
  const double script_secs =
      static_cast<double>(eff.msgs_per_source) / eff.rate_hz;

  std::printf("loopback soak: %zu BRs x %zu APs x %zu MHs = %zu nodes, "
              "%u msgs/source @ %.1f Hz (%s)\n",
              eff.num_brs, eff.n_aps(), n_mh,
              eff.num_brs + eff.n_aps() + n_mh + 1, eff.msgs_per_source,
              eff.rate_hz, eff.use_udp ? "udp loopback" : "in-process");
  if (eff.groups.multi()) {
    std::printf("  multi-group: %zu groups, %zu per MH, %zu dest/msg "
                "(genuine chain delivery)\n",
                eff.groups.count, eff.groups.groups_per_mh,
                eff.groups.dest_groups);
  }

  LoopbackResult rt = ringnet::runtime::run_loopback(eff);

  // Same deployment and workload in the simulator (lossless channels; the
  // wired loopback loses nothing the ARQ doesn't recover).
  RunSpec oracle;
  oracle.config.hierarchy.num_brs = eff.num_brs;
  oracle.config.hierarchy.ags_per_br = 1;
  oracle.config.hierarchy.aps_per_ag = eff.aps_per_br;
  oracle.config.hierarchy.mhs_per_ap = eff.mhs_per_ap;
  oracle.config.hierarchy.wan = ringnet::net::ChannelModel::wired_wan(0.0);
  oracle.config.hierarchy.lan = ringnet::net::ChannelModel::wired_lan(0.0);
  oracle.config.hierarchy.wireless = ringnet::net::ChannelModel::wireless(0.0);
  oracle.config.num_sources = n_mh;
  oracle.config.groups = eff.groups;
  oracle.config.source.rate_hz = eff.rate_hz;
  oracle.config.source.payload_size = eff.payload_size;
  oracle.config.source.max_messages = eff.msgs_per_source;
  oracle.warmup = ringnet::sim::secs(0.0);
  oracle.run = ringnet::sim::secs(script_secs + 1.0);
  oracle.drain = ringnet::sim::secs(2.0);
  oracle.seed = seed;
  oracle.export_deliveries = true;
  // Same --spans switch on the oracle, so both runs decompose delivery
  // latency into the identical submit/assign/relay/deliver stages.
  oracle.config.record_spans = eff.opts.record_spans;
  RunResult sim = ringnet::baseline::run_experiment(oracle);

  int failures = 0;
  char buf0[128];
  const auto gate = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };

  const char* order_what = eff.groups.multi()
                               ? "zero pairwise-order violations"
                               : "zero total-order violations";
  gate(rt.completed, "runtime: every MH reported Done before the deadline");
  std::snprintf(buf0, sizeof(buf0), "runtime: %s across MHs", order_what);
  gate(!rt.order_violation, buf0);
  if (rt.order_violation) {
    std::printf("         %s\n", rt.order_violation->c_str());
  }
  std::snprintf(buf0, sizeof(buf0), "oracle: %s", order_what);
  gate(!sim.order_violation, buf0);
  gate(sim.total_sent ==
           static_cast<std::uint64_t>(n_mh) * eff.msgs_per_source,
       "oracle: sources submitted the full script");

  std::size_t mismatched = 0;
  std::size_t count_mismatched = 0;
  for (std::size_t m = 0; m < n_mh; ++m) {
    const auto [recs, n] = sim.deliveries_of(m);
    if (rt.delivered_counts[m] != n) ++count_mismatched;
    const auto sim_pairs = sorted_pairs(recs, n);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> rt_pairs;
    rt_pairs.reserve(rt.per_mh[m].size());
    for (const auto& r : rt.per_mh[m]) {
      rt_pairs.emplace_back(r.source.v, r.lseq);
    }
    std::sort(rt_pairs.begin(), rt_pairs.end());
    if (rt_pairs != sim_pairs) ++mismatched;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "delivered (source,lseq) multisets match the oracle on all "
                "%zu MHs (%zu mismatched)",
                n_mh, mismatched);
  gate(mismatched == 0, buf);
  std::snprintf(buf, sizeof(buf),
                "per-MH delivered counts match the oracle (%zu mismatched)",
                count_mismatched);
  gate(count_mismatched == 0, buf);
  std::snprintf(buf, sizeof(buf),
                "really-lost parity: runtime %llu vs oracle %llu",
                static_cast<unsigned long long>(rt.counters.really_lost),
                static_cast<unsigned long long>(sim.really_lost));
  gate(rt.counters.really_lost == sim.really_lost, buf);

  std::vector<std::int64_t> lat = rt.latencies_us;
  std::sort(lat.begin(), lat.end());
  std::printf(
      "\n  runtime latency us (submit->delivery, wall): "
      "p50=%lld p90=%lld p99=%lld max=%lld (n=%zu)\n",
      static_cast<long long>(percentile(lat, 0.50)),
      static_cast<long long>(percentile(lat, 0.90)),
      static_cast<long long>(percentile(lat, 0.99)),
      lat.empty() ? 0LL : static_cast<long long>(lat.back()), lat.size());
  std::printf("  oracle  latency us (sim time):               "
              "p50=%llu p90=%llu p99=%llu max=%llu\n",
              static_cast<unsigned long long>(sim.lat_p50_us),
              static_cast<unsigned long long>(sim.lat_p90_us),
              static_cast<unsigned long long>(sim.lat_p99_us),
              static_cast<unsigned long long>(sim.lat_max_us));
  std::printf("  frames: sent=%llu received=%llu malformed=%llu "
              "send_failures=%llu\n",
              static_cast<unsigned long long>(rt.frames_sent),
              static_cast<unsigned long long>(rt.frames_received),
              static_cast<unsigned long long>(rt.frames_malformed),
              static_cast<unsigned long long>(rt.send_failures));
  std::printf("  token: held=%llu retx=%llu regen=%llu dup_destroyed=%llu "
              "dropped=%llu\n",
              static_cast<unsigned long long>(rt.counters.tokens_held),
              static_cast<unsigned long long>(rt.counters.token_retx),
              static_cast<unsigned long long>(rt.counters.token_regenerated),
              static_cast<unsigned long long>(rt.counters.token_dup_destroyed),
              static_cast<unsigned long long>(rt.counters.token_dropped));
  std::printf("  arq: downlink_retx=%llu uplink_retx=%llu duplicates=%llu "
              "acks=%llu floor_advances=%llu\n",
              static_cast<unsigned long long>(rt.counters.retransmits),
              static_cast<unsigned long long>(rt.counters.uplink_retx),
              static_cast<unsigned long long>(rt.counters.duplicates),
              static_cast<unsigned long long>(rt.counters.acks_sent),
              static_cast<unsigned long long>(rt.counters.floor_advances));

  if (eff.opts.record_spans) {
    // Side-by-side per-stage lifecycle breakdown: real UDP wall time vs.
    // the simulator's modelled time for the same scenario. Stages must
    // match (same names, same count rows); absolute magnitudes differ
    // because loopback wall time includes scheduling noise.
    std::printf("\n%s", rt.spans.table("runtime spans (udp loopback, wall us)")
                            .c_str());
    std::printf("\n%s",
                sim.spans.table("oracle spans (simulated us)").c_str());
    gate(!rt.spans.empty(), "runtime: span breakdown captured deliveries");
    gate(!sim.spans.empty(), "oracle: span breakdown captured deliveries");
  }

  std::printf("\nloopback soak: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}
