// E13: domain-sharded scaling sweep. One deployment shape (16 BR subtrees,
// zero-loss channels, ack-driven pruning throttled so delivery fan-out
// dominates) swept over the MH population (10k -> 1M) and the worker count
// (serial oracle, then 1 -> hardware_concurrency threads). Reports wall
// time, simulated events/second and speedup over the single-heap oracle;
// --json emits the numbers in google-benchmark format so tools/bench_diff.py
// and plotting scripts can consume them like any micro run.
//
//   bench_scale [--smoke] [--seed N] [--json FILE]
//
// --smoke shrinks the sweep to the 10k population and <=2 threads: a
// seconds-long CI gate that still exercises the full parallel machinery.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "baseline/harness.hpp"
#include "core/protocol.hpp"
#include "sim/simulation.hpp"
#include "stats/table.hpp"

namespace {

using namespace ringnet;

struct SweepPoint {
  std::size_t mhs = 0;
  std::size_t threads = 0;  // 0 = single-heap oracle
};

struct SweepResult {
  SweepPoint point;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  double events_per_s = 0.0;
  double speedup = 1.0;  // vs the oracle at the same population
};

constexpr std::size_t kBrs = 16;
constexpr std::size_t kApsPerAg = 25;

baseline::RunSpec make_spec(std::size_t mhs, std::size_t threads,
                            std::uint64_t seed, bool smoke) {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = kBrs;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = kApsPerAg;
  spec.config.hierarchy.mhs_per_ap = mhs / (kBrs * kApsPerAg);
  // Zero-loss channels: the sweep measures engine throughput, not ARQ.
  spec.config.hierarchy.wan = net::ChannelModel::wired_wan(0.0);
  spec.config.hierarchy.lan = net::ChannelModel::wired_lan(0.0);
  spec.config.hierarchy.wireless = net::ChannelModel::wireless(0.0);
  spec.config.num_sources = 32;
  spec.config.source.rate_hz = smoke ? 10.0 : 4.0;
  spec.config.source.pattern = core::TrafficPattern::Constant;
  // Acks every 100ms instead of 10ms: at 1M members the default cadence
  // would drown the delivery fan-out this sweep is sized around.
  spec.config.options.ack_period = sim::msecs(100);
  // A per-delivery log over populations this size is O(GB): off.
  spec.config.record_deliveries = false;
  spec.warmup = sim::SimTime::zero();
  spec.run = smoke ? sim::secs(0.1) : sim::secs(0.25);
  spec.drain = sim::secs(0.05);
  spec.seed = seed;
  spec.shard = true;
  spec.shard_threads = threads;
  return spec;
}

SweepResult run_point(const SweepPoint& p, std::uint64_t seed, bool smoke) {
  const auto spec = make_spec(p.mhs, p.threads, seed, smoke);
  const core::ProtocolConfig cfg = baseline::effective_config(spec);
  sim::Simulation sim(spec.seed, baseline::shard_plan(spec, cfg));
  core::RingNetProtocol proto(sim, cfg);
  proto.start();

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_for(spec.run);
  proto.stop_sources();
  sim.run_for(spec.drain);
  const auto t1 = std::chrono::steady_clock::now();

  SweepResult r;
  r.point = p;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = sim.executed_events();
  r.delivered = sim.metrics().counter("mh.delivered");
  r.events_per_s =
      r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  return r;
}

void write_json(const std::string& path,
                const std::vector<SweepResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"num_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"library_build_type\": \"release\"\n  },\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"BM_ScaleSweep/mhs:%zu/threads:%zu\",\n",
                 r.point.mhs, r.point.threads);
    std::fprintf(f, "      \"run_type\": \"iteration\",\n");
    std::fprintf(f, "      \"iterations\": 1,\n");
    std::fprintf(f, "      \"real_time\": %.6e,\n", r.wall_s * 1e3);
    std::fprintf(f, "      \"cpu_time\": %.6e,\n", r.wall_s * 1e3);
    std::fprintf(f, "      \"time_unit\": \"ms\",\n");
    std::fprintf(f, "      \"events_per_second\": %.6e,\n", r.events_per_s);
    std::fprintf(f, "      \"speedup_vs_serial\": %.4f\n", r.speedup);
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seed N] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> populations;
  std::vector<std::size_t> threads{0, 1};  // oracle, then workers
  if (smoke) {
    populations = {10'000};
    if (hw >= 2) threads.push_back(2);
  } else {
    populations = {10'000, 100'000, 1'000'000};
    for (std::size_t t = 2; t <= hw; t *= 2) threads.push_back(t);
    if (threads.back() != hw) threads.push_back(hw);
  }

  std::printf(
      "# E13 scale sweep: %zu BR domains, zero loss, seed %llu%s\n"
      "# speedup is vs the single-heap oracle at the same population\n\n",
      kBrs, static_cast<unsigned long long>(seed), smoke ? " (smoke)" : "");
  std::printf("%10s %8s %12s %12s %14s %9s\n", "mhs", "threads", "wall_s",
              "events", "events/s", "speedup");

  std::vector<SweepResult> results;
  for (const std::size_t mhs : populations) {
    double serial_evps = 0.0;
    std::uint64_t serial_events = 0;
    for (const std::size_t t : threads) {
      SweepResult r = run_point(SweepPoint{mhs, t}, seed, smoke);
      if (t == 0) {
        serial_evps = r.events_per_s;
        serial_events = r.events;
      } else if (r.events != serial_events) {
        // The parallel engine must execute exactly the oracle's run.
        std::fprintf(stderr,
                     "FATAL: event count diverged at mhs=%zu threads=%zu "
                     "(%llu vs %llu)\n",
                     mhs, t, static_cast<unsigned long long>(r.events),
                     static_cast<unsigned long long>(serial_events));
        return 1;
      }
      r.speedup = serial_evps > 0.0 ? r.events_per_s / serial_evps : 1.0;
      std::printf("%10zu %8s %12.3f %12llu %14.3e %8.2fx\n", mhs,
                  t == 0 ? "oracle" : std::to_string(t).c_str(), r.wall_s,
                  static_cast<unsigned long long>(r.events), r.events_per_s,
                  r.speedup);
      results.push_back(r);
    }
  }

  if (!json_path.empty()) write_json(json_path, results);
  return 0;
}
