// E6 (§2 comparison with [16]): "Since all the control information has to
// be rotated along the ring, it may lead to large latency and require large
// buffers when the ring becomes large. Each logical ring within our
// proposed RingNet model functions in a similar way, but it deals with only
// a local scope of the whole group." Sweeps the number of access points and
// compares the single-logical-ring protocol, RingNet (same AP count spread
// over a hierarchy), and a fixed sequencer.

#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

int main() {
  bench::print_header(
      "E6 / related-work comparison — single logical ring vs RingNet vs "
      "sequencer",
      "the single ring's latency/buffers grow with member count; RingNet "
      "keeps its rings local and stays flat");

  stats::Table table("scaling with access-point count (2 sources, 100 msg/s "
                     "each; latency in ms)",
                     {"APs", "variant", "lat p50", "lat p99", "mq peak",
                      "thr/MH", "order ok"});

  for (const std::size_t aps : {4u, 8u, 16u, 32u, 64u}) {
    std::vector<baseline::RunSpec> specs;

    // Single logical ring over all APs.
    baseline::RunSpec ring;
    ring.variant = baseline::Variant::SingleRing;
    ring.flat_aps = aps;
    ring.flat_mhs_per_ap = 1;
    ring.config.num_sources = 2;
    ring.config.source.rate_hz = 100.0;
    // Measure the undelivered window, not the handoff retention lag.
    ring.config.options.mq_retention = 0;
    ring.run = sim::secs(2.0);
    specs.push_back(ring);

    // RingNet hierarchy with the same AP count: 4 BRs, 2 AGs each.
    baseline::RunSpec hier = ring;
    hier.variant = baseline::Variant::RingNet;
    hier.config.hierarchy.num_brs = 4;
    hier.config.hierarchy.ags_per_br = 2;
    hier.config.hierarchy.aps_per_ag = std::max<std::size_t>(1, aps / 8);
    hier.config.hierarchy.mhs_per_ap = 1;
    specs.push_back(hier);

    // Fixed sequencer star.
    baseline::RunSpec seq = ring;
    seq.variant = baseline::Variant::Sequencer;
    specs.push_back(seq);

    const auto results = bench::run_all(specs);
    const char* names[] = {"SingleRing", "RingNet", "Sequencer"};
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& r = results[i];
      table.row()
          .cell(static_cast<std::uint64_t>(aps))
          .cell(names[i])
          .cell(static_cast<double>(r.lat_p50_us) / 1e3, 2)
          .cell(static_cast<double>(r.lat_p99_us) / 1e3, 2)
          .cell(r.mq_peak, 0)
          .cell(r.throughput_per_mh_hz, 1)
          .cell(r.order_violation.has_value() ? "NO" : "yes");
    }
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: SingleRing latency and buffer peaks climb roughly\n"
      "linearly with the AP count (token rotation spans every AP); RingNet\n"
      "stays nearly flat because its top ring stays at 4 BRs regardless of\n"
      "how many APs hang below; the sequencer is flat but is a single\n"
      "bottleneck/failure point the paper's design avoids.\n");
  return 0;
}
