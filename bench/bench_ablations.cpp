// Design-choice ablations (DESIGN.md §5): quantifies the mechanisms the
// protocol adds around the paper's core algorithms.
//
//  A1  membership batching window (§3 "batched update scheme")
//  A2  DeliveryAck cadence: WT freshness vs control traffic vs buffers
//  A3  token holding time: ordering latency vs token overhead
//  A4  MQ retention (ValidFront lag): handoff recovery vs memory

#include <iostream>

#include "bench_util.hpp"
#include "core/protocol.hpp"

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 misreads std::optional<ScenarioSpec>'s engaged check once RunSpec's
// destructor is fully inlined here and flags the (never-constructed) payload
// as maybe-uninitialized. False positive; clang and newer GCC are clean.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

using namespace ringnet;

namespace {

struct NamedRun {
  baseline::RunSpec spec;
  sim::Simulation* sim = nullptr;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablations — membership batching, ack cadence, token hold, retention",
      "each mechanism trades control overhead against latency/robustness; "
      "the defaults sit at the knees of these curves");

  // --- A1: membership batching window ---------------------------------------
  {
    stats::Table table(
        "A1: membership batch window (3s run, 1 handoff/s per MH)",
        {"batch ms", "membership msgs", "events applied", "view lag ok"});
    for (const int batch_ms : {10, 50, 100, 250, 500}) {
      sim::Simulation sim(21);
      core::ProtocolConfig cfg;
      cfg.hierarchy.num_brs = 3;
      cfg.hierarchy.ags_per_br = 2;
      cfg.hierarchy.aps_per_ag = 2;
      cfg.hierarchy.mhs_per_ap = 2;
      cfg.num_sources = 1;
      cfg.source.rate_hz = 50.0;
      cfg.options.membership_batch = sim::msecs(batch_ms);
      cfg.mobility.handoff_rate_hz = 1.0;
      core::RingNetProtocol proto(sim, cfg);
      proto.start();
      sim.run_for(sim::secs(3.0));
      proto.stop_sources();
      proto.mobility().stop();
      sim.run_for(sim::secs(1.0));
      const auto& view =
          proto.node(proto.topology().top_ring.front()).group_view();
      table.row()
          .cell(static_cast<std::int64_t>(batch_ms))
          .cell(sim.metrics().counter("membership.relayed"))
          .cell(sim.metrics().counter("membership.applied"))
          .cell(view.member_count() == proto.topology().mhs.size() ? "yes"
                                                                   : "NO");
    }
    table.print(std::cout);
    std::printf(
        "Shape: wider batching cuts relay traffic with no effect on the\n"
        "eventual view (the paper's motivation for batched updates).\n\n");
  }

  // --- A2: DeliveryAck cadence -----------------------------------------------
  {
    stats::Table table("A2: DeliveryAck period (WT freshness)",
                       {"ack ms", "acks sent", "mq peak", "delivery"});
    for (const int ack_ms : {2, 5, 10, 25, 50}) {
      baseline::RunSpec spec;
      spec.config.hierarchy.num_brs = 3;
      spec.config.hierarchy.mhs_per_ap = 1;
      spec.config.num_sources = 2;
      spec.config.source.rate_hz = 200.0;
      spec.config.options.ack_period = sim::msecs(ack_ms);
      spec.config.options.mq_retention = 0;
      spec.config.record_deliveries = false;
      spec.seed = 22;
      sim::Simulation sim(spec.seed);
      core::RingNetProtocol proto(sim, spec.config);
      proto.start();
      sim.run_for(sim::secs(2.0));
      proto.stop_sources();
      sim.run_for(sim::secs(1.0));
      const double delivered =
          static_cast<double>(sim.metrics().counter("mh.delivered"));
      const double expected = static_cast<double>(proto.total_sent()) *
                              static_cast<double>(proto.topology().mhs.size());
      table.row()
          .cell(static_cast<std::int64_t>(ack_ms))
          .cell(sim.metrics().counter("arq.acks_sent"))
          .cell(sim.metrics().gauge("buf.mq.peak"), 0)
          .cell(delivered / expected, 4);
    }
    table.print(std::cout);
    std::printf(
        "Shape: slower acks inflate MQ occupancy linearly (Delivered tags\n"
        "lag by the ack period) while delivery stays complete.\n\n");
  }

  // --- A3: token holding time -----------------------------------------------
  {
    stats::Table table("A3: token holding time (r=4, s=2, 100 msg/s)",
                       {"hold us", "tokens held/s", "order p99 ms",
                        "e2e p99 ms"});
    std::vector<baseline::RunSpec> specs;
    const std::vector<int> holds_us = {50, 100, 500, 2000, 5000};
    for (const int hold : holds_us) {
      baseline::RunSpec spec;
      spec.config.hierarchy.num_brs = 4;
      spec.config.hierarchy.mhs_per_ap = 1;
      spec.config.num_sources = 2;
      spec.config.source.rate_hz = 100.0;
      spec.config.options.token_hold = sim::usecs(hold);
      spec.config.record_deliveries = false;
      specs.push_back(spec);
    }
    const auto results = bench::run_all(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& r = results[i];
      const double span =
          (specs[i].warmup + specs[i].run + specs[i].drain).seconds();
      table.row()
          .cell(static_cast<std::int64_t>(holds_us[i]))
          .cell(static_cast<double>(r.tokens_held) / span, 1)
          .cell(static_cast<double>(r.assign_p99_us) / 1e3, 2)
          .cell(static_cast<double>(r.lat_p99_us) / 1e3, 2);
    }
    table.print(std::cout);
    std::printf(
        "Shape: longer holds slow the rotation (fewer holds/s) and push\n"
        "ordering latency up roughly linearly in r*hold.\n\n");
  }

  // --- A4: MQ retention vs handoff recovery ----------------------------------
  {
    stats::Table table("A4: MQ retention (ValidFront lag) under 1 handoff/s",
                       {"retention", "gaps skipped", "delivery", "order ok"});
    for (const int retention : {0, 16, 128, 1024, 4096}) {
      baseline::RunSpec spec;
      spec.config.hierarchy.num_brs = 2;
      spec.config.hierarchy.ags_per_br = 1;
      spec.config.hierarchy.aps_per_ag = 6;
      spec.config.hierarchy.mhs_per_ap = 1;
      spec.config.num_sources = 1;
      spec.config.source.rate_hz = 200.0;
      spec.config.options.mq_retention = static_cast<std::size_t>(retention);
      spec.config.mobility.handoff_rate_hz = 1.0;
      spec.config.mobility.detach_gap = sim::msecs(50);
      spec.run = sim::secs(3.0);
      spec.seed = 23;
      const auto r = run_experiment(spec);
      table.row()
          .cell(static_cast<std::int64_t>(retention))
          .cell(r.mh_gaps_skipped)
          .cell(r.min_delivery_ratio, 4)
          .cell(r.order_violation.has_value() ? "NO" : "yes");
    }
    table.print(std::cout);
    std::printf(
        "Shape: with little retention, a handed-off MH's resume point is\n"
        "often already reclaimed => GapSkips (counted as really lost) and\n"
        "lower delivery; deep retention makes handoffs lossless at the cost\n"
        "of memory. Order holds regardless.\n");
  }
  return 0;
}
