// E1 (Figure 1): the RingNet hierarchy. Builds the paper's four-tier
// distribution vehicle at several scales, validates every structural
// invariant, and prints the tier inventory — the textual equivalent of
// Figure 1 — plus construction cost.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "topo/hierarchy.hpp"

using namespace ringnet;

namespace {

void print_figure1(const topo::Topology& topo) {
  std::printf("RingNet hierarchy (Figure 1 rendering)\n");
  std::printf("  BRT   : 1 logical ring  [");
  for (NodeId br : topo.top_ring) std::printf(" %s", to_string(br).c_str());
  std::printf(" ]   leader=%s\n",
              to_string(topo.desc(topo.top_ring.front()).nbrs.leader).c_str());
  std::printf("  AGT   : %zu logical rings\n", topo.ag_rings.size());
  for (std::size_t i = 0; i < topo.ag_rings.size(); ++i) {
    std::printf("          ring %zu under %s: [", i,
                to_string(topo.top_ring[i]).c_str());
    for (NodeId ag : topo.ag_rings[i]) std::printf(" %s", to_string(ag).c_str());
    std::printf(" ]\n");
  }
  std::printf("  APT   : %zu access proxies (tree children of AGs)\n",
              topo.aps.size());
  std::printf("  MHT   : %zu mobile hosts\n", topo.mhs.size());
  std::printf("  links : %zu (WAN ring + LAN tree + wireless cells)\n\n",
              topo.links.size());
}

}  // namespace

int main() {
  bench::print_header(
      "E1 / Figure 1 — RingNet hierarchy construction",
      "the 4-tier BRT/AGT/APT/MHT hierarchy with logical rings on the upper "
      "two tiers is constructible, self-describing and valid");

  {
    topo::HierarchyConfig cfg;  // the Figure 1 shape: 3 BRs, 3 AG rings
    cfg.num_brs = 3;
    cfg.ags_per_br = 3;
    cfg.aps_per_ag = 2;
    cfg.mhs_per_ap = 2;
    print_figure1(topo::build_hierarchy(cfg));
  }

  stats::Table table("hierarchy shapes",
                     {"BRs", "AGs/BR", "APs/AG", "MHs/AP", "entities", "MHs",
                      "links", "valid", "build_us"});
  for (const auto& [brs, ags, aps, mhs] :
       {std::tuple{2, 1, 1, 1}, std::tuple{3, 3, 2, 2},
        std::tuple{4, 4, 4, 2}, std::tuple{8, 4, 4, 4},
        std::tuple{16, 8, 4, 4}, std::tuple{32, 8, 8, 4}}) {
    topo::HierarchyConfig cfg;
    cfg.num_brs = static_cast<std::size_t>(brs);
    cfg.ags_per_br = static_cast<std::size_t>(ags);
    cfg.aps_per_ag = static_cast<std::size_t>(aps);
    cfg.mhs_per_ap = static_cast<std::size_t>(mhs);
    const auto t0 = std::chrono::steady_clock::now();
    const auto topo = topo::build_hierarchy(cfg);
    const auto problem = topo.validate();
    const auto t1 = std::chrono::steady_clock::now();
    table.row()
        .cell(static_cast<std::int64_t>(brs))
        .cell(static_cast<std::int64_t>(ags))
        .cell(static_cast<std::int64_t>(aps))
        .cell(static_cast<std::int64_t>(mhs))
        .cell(static_cast<std::uint64_t>(topo.entity_count()))
        .cell(static_cast<std::uint64_t>(topo.mhs.size()))
        .cell(static_cast<std::uint64_t>(topo.links.size()))
        .cell(problem.has_value() ? ("NO: " + *problem) : std::string("yes"))
        .cell(static_cast<std::int64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
  }
  table.print(std::cout);
  return 0;
}
