// E8 (§5 closing note): "retransmission will occur in unreliable
// communications environment ... buffer sizes of WQ and MQ of each node may
// be larger and message latency may be larger to accommodate
// retransmission." The paper defers this analysis to future work; this
// bench performs it on the scenario engine: wired-loss and wireless-loss
// sweeps under both smooth (constant-rate) and bursty (MMPP on/off)
// traffic, reporting latency growth, buffer growth, ARQ effort, and
// best-effort delivery completeness.

#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

namespace {

scenario::ScenarioSpec mmpp_traffic() {
  scenario::ScenarioSpec sc;
  sc.name = "mmpp-bursts";
  sc.has_traffic = true;
  sc.traffic.pattern = core::TrafficPattern::Mmpp;
  sc.traffic.rate_hz = 25.0;
  sc.traffic.burst_rate_hz = 400.0;
  sc.traffic.on_mean = sim::msecs(100);
  sc.traffic.off_mean = sim::msecs(400);
  return sc;
}

/// Apply the bursty arm (or honor a --scenario override, which replaces
/// the whole traffic sweep). Returns the row label, or nullopt when this
/// (loss, bursty) point collapses into the override's single arm.
std::optional<std::string> traffic_arm(bool bursty,
                                       baseline::RunSpec& spec) {
  if (spec.scenario) {
    if (bursty) return std::nullopt;
    return spec.scenario->name;
  }
  if (bursty) spec.scenario = mmpp_traffic();
  return std::string(bursty ? "mmpp" : "constant");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_cli(argc, argv);
  bench::print_header(
      "E8 / retransmission analysis (the paper's future work)",
      "under loss, latency and buffers grow to accommodate retransmission "
      "while best-effort delivery stays near-complete — for smooth and "
      "bursty arrivals alike");

  {
    stats::Table table("wired loss sweep (all overlay links; latency in ms)",
                       {"loss %", "traffic", "lat mean", "lat p99", "wq peak",
                        "mq peak", "retx", "really lost", "delivery",
                        "order ok"});
    std::vector<baseline::RunSpec> specs;
    std::vector<double> row_loss;
    std::vector<std::string> row_traffic;
    for (const double loss : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
      for (const bool bursty : {false, true}) {
        baseline::RunSpec spec;
        spec.config.hierarchy.num_brs = 3;
        spec.config.hierarchy.ags_per_br = 2;
        spec.config.hierarchy.aps_per_ag = 2;
        spec.config.hierarchy.mhs_per_ap = 1;
        spec.config.hierarchy.wan = net::ChannelModel::wired_wan(loss);
        spec.config.hierarchy.lan = net::ChannelModel::wired_lan(loss);
        spec.config.num_sources = 2;
        spec.config.source.rate_hz = 100.0;
        spec.config.options.heartbeat_miss_limit =
            6 + static_cast<int>(loss * 40);
        // No mobility here: measure the undelivered window, not the
        // handoff retention lag.
        spec.config.options.mq_retention = 0;
        spec.run = sim::secs(2.0);
        spec.drain = sim::secs(2.0 + loss * 20.0);
        bench::apply_cli(opts, spec);
        const auto label = traffic_arm(bursty, spec);
        if (!label) continue;
        row_traffic.push_back(*label);
        row_loss.push_back(loss);
        specs.push_back(spec);
      }
    }
    const auto results = bench::run_all(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& r = results[i];
      table.row()
          .cell(row_loss[i] * 100.0, 0)
          .cell(row_traffic[i])
          .cell(r.lat_mean_us / 1e3, 2)
          .cell(static_cast<double>(r.lat_p99_us) / 1e3, 2)
          .cell(r.wq_peak, 0)
          .cell(r.mq_peak, 0)
          .cell(r.retransmits)
          .cell(r.really_lost)
          .cell(r.min_delivery_ratio, 3)
          .cell(r.order_violation.has_value() ? "NO" : "yes");
    }
    table.print(std::cout);
  }

  {
    stats::Table table(
        "wireless (Gilbert-Elliott burst) loss sweep on AP<->MH cells",
        {"loss %", "traffic", "lat mean ms", "lat p99 ms", "retx",
         "really lost", "delivery", "order ok"});
    std::vector<baseline::RunSpec> specs;
    std::vector<double> row_loss;
    std::vector<std::string> row_traffic;
    for (const double loss : {0.0, 0.01, 0.05, 0.10, 0.20}) {
      for (const bool bursty : {false, true}) {
        baseline::RunSpec spec;
        spec.config.hierarchy.num_brs = 3;
        spec.config.hierarchy.mhs_per_ap = 2;
        spec.config.hierarchy.wireless = net::ChannelModel::wireless(loss);
        spec.config.num_sources = 2;
        spec.config.source.rate_hz = 100.0;
        spec.config.options.mq_retention = 0;
        spec.run = sim::secs(2.0);
        spec.drain = sim::secs(2.0 + loss * 10.0);
        bench::apply_cli(opts, spec);
        const auto label = traffic_arm(bursty, spec);
        if (!label) continue;
        row_traffic.push_back(*label);
        row_loss.push_back(loss);
        specs.push_back(spec);
      }
    }
    const auto results = bench::run_all(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& r = results[i];
      table.row()
          .cell(row_loss[i] * 100.0, 0)
          .cell(row_traffic[i])
          .cell(r.lat_mean_us / 1e3, 2)
          .cell(static_cast<double>(r.lat_p99_us) / 1e3, 2)
          .cell(r.retransmits)
          .cell(r.really_lost)
          .cell(r.min_delivery_ratio, 3)
          .cell(r.order_violation.has_value() ? "NO" : "yes");
    }
    table.print(std::cout);
  }

  std::printf(
      "\nExpected shape: latency percentiles and buffer peaks grow\n"
      "monotonically with the loss rate (retransmission work), delivery\n"
      "stays ~1.0 (best-effort reliability with local-scope ARQ), and the\n"
      "total order is never violated. MMPP bursts raise the percentile\n"
      "tails and WQ peaks over constant-rate at the same average load:\n"
      "burst arrivals pile into the tau staging window.\n");
  return 0;
}
