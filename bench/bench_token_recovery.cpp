// E9 (§4.2.1 Token-Loss / Multiple-Token): after the token holder crashes,
// topology maintenance repairs the ring and signals Token-Loss; the
// Token-Regeneration algorithm restarts Message-Ordering from the best
// surviving NewOrderingToken. This bench measures the ordering stall
// (last token hold before the crash -> first hold after) as a function of
// ring size, and verifies Multiple-Token elimination.

#include <iostream>

#include "bench_util.hpp"
#include "core/protocol.hpp"

using namespace ringnet;

namespace {

struct RecoveryResult {
  std::size_t ring_size;
  double stall_ms = 0;
  std::uint64_t regenerations = 0;
  std::uint64_t epochs_after = 0;
  bool order_ok = false;
  double post_crash_throughput = 0;
};

RecoveryResult measure_recovery(std::size_t num_brs) {
  sim::Simulation sim(1234 + num_brs);
  sim.trace().enable();

  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = num_brs;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 1;
  cfg.hierarchy.mhs_per_ap = 1;
  cfg.num_sources = 2;
  cfg.source.rate_hz = 100.0;

  core::RingNetProtocol proto(sim, cfg);
  proto.start();

  const auto crash_at = sim::secs(1.0);
  const NodeId victim = proto.topology().top_ring[1];
  sim.after(crash_at, [&proto, victim] { proto.crash_node(victim); });

  sim.run_for(sim::secs(4.0));
  proto.stop_sources();
  sim.run_for(sim::secs(1.0));

  RecoveryResult out;
  out.ring_size = num_brs;

  // Ordering stall: gap in TokenPass events around the crash instant.
  const auto passes = sim.trace().filter(sim::TraceKind::TokenPass);
  sim::SimTime last_before = sim::SimTime::zero();
  sim::SimTime first_after = sim::SimTime::max();
  const sim::SimTime crash_time = sim::SimTime::zero() + crash_at;
  for (const auto& ev : passes) {
    if (ev.at <= crash_time && ev.at > last_before) last_before = ev.at;
    if (ev.at > crash_time && ev.at < first_after) first_after = ev.at;
  }
  if (first_after != sim::SimTime::max()) {
    out.stall_ms = (first_after - last_before).seconds() * 1e3;
  }
  out.regenerations = sim.metrics().counter("token.regenerated");
  // Highest epoch observed in token passes after the crash.
  for (const auto& ev : passes) {
    if (ev.at > crash_time) out.epochs_after = std::max(out.epochs_after, ev.a);
  }
  out.order_ok = !proto.deliveries().check_total_order().has_value();

  // Post-crash throughput at a surviving MH (first MH not under the
  // victim's subtree: MH index num_brs-1 is under the last BR).
  const auto& mh = proto.mhs().back();
  out.post_crash_throughput =
      mh.last_delivery_at() > crash_time ? 1.0 : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "E9 / Token-Loss recovery and Multiple-Token elimination",
      "ordering resumes after the holder crashes (regenerated token, fresh "
      "epoch); ring merges leave exactly one token alive");

  {
    stats::Table table("token-loss recovery vs top-ring size",
                       {"r", "stall ms", "regens", "epoch after", "order ok",
                        "survivors deliver"});
    for (const std::size_t r : {3u, 4u, 6u, 8u, 12u}) {
      const auto res = measure_recovery(r);
      table.row()
          .cell(static_cast<std::uint64_t>(res.ring_size))
          .cell(res.stall_ms, 1)
          .cell(res.regenerations)
          .cell(res.epochs_after)
          .cell(res.order_ok ? "yes" : "NO")
          .cell(res.post_crash_throughput > 0 ? "yes" : "NO");
    }
    table.print(std::cout);
  }

  {
    stats::Table table("Multiple-Token elimination (duplicate injected at t=1s)",
                       {"r", "duplicates destroyed", "order ok",
                        "delivery ratio"});
    for (const std::size_t r : {3u, 6u}) {
      baseline::RunSpec spec;
      spec.config.hierarchy.num_brs = r;
      spec.config.hierarchy.mhs_per_ap = 1;
      spec.config.num_sources = 2;
      spec.config.source.rate_hz = 100.0;
      spec.run = sim::secs(2.0);
      const auto res = baseline::run_experiment(
          spec, [](core::RingNetProtocol& proto, sim::Simulation& sim) {
            sim.after(sim::secs(1.0), [&proto] {
              proto.inject_duplicate_token(proto.topology().top_ring[1], 1);
            });
          });
      table.row()
          .cell(static_cast<std::uint64_t>(r))
          .cell(res.duplicate_tokens_destroyed)
          .cell(res.order_violation.has_value() ? "NO" : "yes")
          .cell(res.min_delivery_ratio, 3);
    }
    table.print(std::cout);
  }

  std::printf(
      "\nExpected shape: the stall is dominated by failure detection\n"
      "(heartbeat budget) plus one repair round plus one regeneration round,\n"
      "so it grows mildly with r; exactly one token survives a duplicate\n"
      "injection and ordering continues violation-free.\n");
  return 0;
}
