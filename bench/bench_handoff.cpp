// E7 (§3 smooth handoff): "In most cases, when an MH handoffs, it can
// immediately receive multicast messages because either some other members
// have already been there, or some reserved path has already been set up in
// advance." Runs on the scenario engine: a random-waypoint mobility model
// sweeps the per-MH step rate with the reservation scheme on and off
// (ablation), then a commuter model checks the claim under structured
// (periodic, cross-domain) movement. Reports hot-vs-cold attach ratios,
// delivery completeness and ordering health. A user-supplied --scenario
// replaces the swept mobility model (rows are labeled with its name).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec sparse_spec(bool smooth, const bench::Options& opts) {
  baseline::RunSpec spec;
  // One MH per cell over 12 cells: under mobility, cells empty out
  // regularly, so an arriving MH often finds an AP with no other member —
  // exactly the case where reservations decide between a hot and a cold
  // attach.
  spec.config.hierarchy.num_brs = 2;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 6;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 1;
  spec.config.source.rate_hz = 200.0;
  spec.config.options.smooth_handoff = smooth;
  spec.config.mobility.detach_gap = sim::msecs(20);
  spec.run = sim::secs(3.0);
  spec.seed = 99;
  bench::apply_cli(opts, spec);
  return spec;
}

struct SweepPoint {
  std::string label;  // swept parameter (or the overriding scenario name)
  bool smooth;
};

std::string fmt1(double v) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%.1f", v);
  if (len < 0) return "nan";  // encoding error: cannot happen for %f
  const auto n = std::min(sizeof(buf) - 1, static_cast<std::size_t>(len));
  return std::string(buf, n);
}

void emit_rows(stats::Table& table, const std::vector<SweepPoint>& points,
               const std::vector<baseline::RunResult>& results) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = results[i];
    const double hot_pct =
        r.hot_attaches + r.cold_attaches == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.hot_attaches) /
                  static_cast<double>(r.hot_attaches + r.cold_attaches);
    table.row()
        .cell(points[i].label)
        .cell(points[i].smooth ? "on" : "off")
        .cell(r.handoffs)
        .cell(r.hot_attaches)
        .cell(r.cold_attaches)
        .cell(hot_pct, 1)
        .cell(r.min_delivery_ratio, 3)
        .cell(r.order_violation.has_value() ? "NO" : "yes");
  }
}

const std::vector<std::string> kColumns = {
    "sweep",   "smooth",         "handoffs", "hot",
    "cold",    "hot %",          "delivery ratio", "order ok"};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_cli(argc, argv);
  bench::print_header(
      "E7 / smooth handoff — reservation ablation (scenario engine)",
      "with path reservation, most handoffs land on an AP that is already "
      "receiving (hot attach) and service continues immediately");

  {
    stats::Table table(
        "random-waypoint mobility, step/s sweep (sparse: 1 MH / cell)",
        kColumns);
    std::vector<SweepPoint> points;
    std::vector<baseline::RunSpec> specs;
    // A --scenario override replaces the swept model: one point per
    // ablation arm instead of identical runs under every sweep value.
    const std::vector<double> rates =
        opts.scenario ? std::vector<double>{0.0}
                      : std::vector<double>{0.5, 1.0, 2.0, 4.0};
    for (const double rate : rates) {
      for (const bool smooth : {true, false}) {
        auto spec = sparse_spec(smooth, opts);
        if (!spec.scenario) {
          scenario::ScenarioSpec sc;
          sc.name = "waypoint-sweep";
          sc.mobility.model = scenario::MobilityModel::RandomWaypoint;
          sc.mobility.rate_hz = rate;
          spec.scenario = sc;
          points.push_back({fmt1(rate), smooth});
        } else {
          points.push_back({spec.scenario->name, smooth});
        }
        specs.push_back(spec);
      }
    }
    emit_rows(table, points, bench::run_all(specs));
    table.print(std::cout);
  }

  // With --scenario both sweeps would run the same override: one table
  // carries all the information, so the commuter block only runs unswept.
  if (!opts.scenario) {
    stats::Table table(
        "commuter mobility, period-seconds sweep (cross-domain shuttling)",
        kColumns);
    std::vector<SweepPoint> points;
    std::vector<baseline::RunSpec> specs;
    for (const double period : {0.4, 0.8, 1.6}) {
      for (const bool smooth : {true, false}) {
        auto spec = sparse_spec(smooth, opts);
        scenario::ScenarioSpec sc;
        sc.name = "commute-sweep";
        sc.mobility.model = scenario::MobilityModel::Commuter;
        sc.mobility.commute_period = sim::secs(period);
        spec.scenario = sc;
        points.push_back({fmt1(period), smooth});
        specs.push_back(spec);
      }
    }
    emit_rows(table, points, bench::run_all(specs));
    table.print(std::cout);
  }

  std::printf(
      "\nExpected shape: with reservations ON the hot-attach share is high\n"
      "(most arrivals find a live or reserved path: 'immediately receive');\n"
      "with reservations OFF cold attaches dominate in sparse membership\n"
      "and delivery dips during path building. Commuter shuttling is\n"
      "periodic rather than Poisson, but the ablation splits the same way.\n"
      "Total order holds in every cell of both tables.\n");
  return 0;
}
