// E7 (§3 smooth handoff): "In most cases, when an MH handoffs, it can
// immediately receive multicast messages because either some other members
// have already been there, or some reserved path has already been set up in
// advance." Sweeps the per-MH handoff rate with the reservation scheme on
// and off (ablation) and reports hot-vs-cold attach ratios, delivery
// completeness and the reservation overhead.

#include <iostream>

#include "bench_util.hpp"

using namespace ringnet;

int main() {
  bench::print_header(
      "E7 / smooth handoff — reservation ablation",
      "with path reservation, most handoffs land on an AP that is already "
      "receiving (hot attach) and service continues immediately");

  stats::Table table(
      "handoff service continuity (3s run; sparse membership: 1 MH / 4 APs)",
      {"handoff/s", "smooth", "handoffs", "hot", "cold", "hot %",
       "delivery ratio", "order ok"});

  for (const double rate : {0.5, 1.0, 2.0, 4.0}) {
    for (const bool smooth : {true, false}) {
      baseline::RunSpec spec;
      // One MH per cell over 12 cells: under mobility, cells empty out
      // regularly, so an arriving MH often finds an AP with no other
      // member — exactly the case where reservations decide between a hot
      // and a cold attach.
      spec.config.hierarchy.num_brs = 2;
      spec.config.hierarchy.ags_per_br = 1;
      spec.config.hierarchy.aps_per_ag = 6;
      spec.config.hierarchy.mhs_per_ap = 1;
      spec.config.num_sources = 1;
      spec.config.source.rate_hz = 200.0;
      spec.config.options.smooth_handoff = smooth;
      spec.config.mobility.handoff_rate_hz = rate;
      spec.config.mobility.detach_gap = sim::msecs(20);
      spec.run = sim::secs(3.0);
      spec.seed = 99;

      const auto r = run_experiment(spec);
      const double hot_pct =
          r.hot_attaches + r.cold_attaches == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.hot_attaches) /
                    static_cast<double>(r.hot_attaches + r.cold_attaches);
      table.row()
          .cell(rate, 1)
          .cell(smooth ? "on" : "off")
          .cell(r.handoffs)
          .cell(r.hot_attaches)
          .cell(r.cold_attaches)
          .cell(hot_pct, 1)
          .cell(r.min_delivery_ratio, 3)
          .cell(r.order_violation.has_value() ? "NO" : "yes");
    }
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: with reservations ON the hot-attach share is high\n"
      "(most arrivals find a live or reserved path: 'immediately receive');\n"
      "with reservations OFF cold attaches dominate in sparse membership and\n"
      "delivery dips during path building. Total order holds either way.\n");
  return 0;
}
