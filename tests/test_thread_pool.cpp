// ThreadPool lifecycle and stress coverage: enqueue/drain under contention,
// wait_idle() blocking semantics, exception latching and rethrow, reuse
// after a failure, drain-on-shutdown ordering, and submit-after-shutdown
// rejection. Run under TSan in CI, this is the dynamic check that the
// RN_GUARDED_BY discipline on the pool internals is not just decorative.

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ringnet_test.hpp"
#include "util/thread_pool.hpp"

using namespace ringnet;

TEST(pool_runs_every_task) {
  std::atomic<std::uint64_t> sum{0};
  {
    util::ThreadPool pool(4);
    for (std::uint64_t i = 1; i <= 1000; ++i) {
      CHECK(pool.submit([&sum, i] {
        sum.fetch_add(i, std::memory_order_relaxed);
      }));
    }
    pool.wait_idle();
    CHECK_EQ(sum.load(), std::uint64_t{500500});  // sum 1..1000
  }
}

TEST(pool_worker_count_and_default_sizing) {
  util::ThreadPool pool(3);
  CHECK_EQ(pool.worker_count(), std::size_t{3});
  util::ThreadPool defaulted;
  CHECK(defaulted.worker_count() >= 1);
}

// Multi-producer enqueue racing the consumers: every task must run exactly
// once regardless of which side wins each queue transition.
TEST(pool_stress_concurrent_producers) {
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = 500;
  std::atomic<std::size_t> ran{0};
  util::ThreadPool pool(4);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        CHECK(pool.submit([&ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
        }));
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  CHECK_EQ(ran.load(), kProducers * kPerProducer);
}

// wait_idle() must observe the whole drain, including tasks submitted by
// other tasks while the wait is already in progress.
TEST(pool_wait_idle_sees_nested_submissions) {
  std::atomic<std::size_t> ran{0};
  util::ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  CHECK_EQ(ran.load(), std::size_t{100});
}

TEST(pool_latches_and_rethrows_first_exception) {
  std::atomic<std::size_t> ran{0};
  util::ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 10 == 3) throw std::runtime_error("task failure");
    });
  }
  bool threw = false;
  try {
    pool.wait_idle();
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);
  // A failure does not cancel the rest of the queue.
  CHECK_EQ(ran.load(), std::size_t{100});

  // The latch resets on rethrow: the pool stays usable and a clean batch
  // waits idle without error.
  std::atomic<std::size_t> second{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&second] { second.fetch_add(1, std::memory_order_relaxed); });
  }
  bool second_threw = false;
  try {
    pool.wait_idle();
  } catch (...) {
    second_threw = true;
  }
  CHECK(!second_threw);
  CHECK_EQ(second.load(), std::size_t{20});
}

// Shutdown ordering: the destructor drains — every task already queued when
// shutdown begins still runs before the workers exit.
TEST(pool_destructor_drains_queue) {
  std::atomic<std::size_t> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): destruction must finish the work itself.
  }
  CHECK_EQ(ran.load(), std::size_t{200});
}

TEST(pool_rejects_after_shutdown_began) {
  // A task that outlives the submitting scope observes rejection: the pool
  // is destroyed first, then submit() on the dangling handle is not
  // reachable — so model it with a task racing shutdown instead: the task
  // itself tries to resubmit while the destructor may already be draining.
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&pool, &accepted, &rejected] {
        if (pool.submit([] {})) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  // All 50 outer tasks ran (drain guarantee); resubmissions before the
  // destructor flipped stopping_ were accepted, later ones rejected — in
  // either case nothing deadlocked and the counts add up.
  CHECK_EQ(accepted.load() + rejected.load(), 50);
}

TEST_MAIN()
