// Satellite regression: the Gilbert-Elliott loss process used to be keyed
// by origin node only, so one bursty WAN link correlated loss and ARQ
// delay across every destination a BR multicast to. Processes are now
// keyed per (src, dst) link: delay bursts toward one destination must be
// statistically independent of bursts toward another.

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/protocol.hpp"
#include "ringnet_test.hpp"
#include "sim/simulation.hpp"

using namespace ringnet;

TEST(wan_burst_delay_is_independent_per_destination_link) {
  sim::Simulation sim(17);
  sim.trace().enable();
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 3;  // BR0 (origin + local MH0), BR1/MH1, BR2/MH2
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 1;
  cfg.hierarchy.mhs_per_ap = 1;
  cfg.hierarchy.wan = net::ChannelModel::wired_wan(0.3);
  cfg.hierarchy.wan.burst_loss = true;
  cfg.hierarchy.wan.burst_mean_len = 6.0;
  auto wireless = net::ChannelModel::wireless(0.0);
  wireless.burst_loss = false;
  cfg.hierarchy.wireless = wireless;
  cfg.num_sources = 1;  // lives on MH0, so every batch originates at BR0
  cfg.source.rate_hz = 800.0;
  // Short ARQ turnaround keeps token rotations fast (many batches = tight
  // statistics); a huge miss budget rules out false ejections so the only
  // stochastic process left on the WAN is the loss chain under test.
  cfg.options.retx_timeout = sim::msecs(5);
  cfg.options.heartbeat_miss_limit = 1000;
  cfg.record_deliveries = false;
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  sim.run_for(sim::secs(10.0));
  proto.stop_sources();
  sim.run_for(sim::secs(1.0));

  // Per-MH delivery time of each gseq. MH0 hangs off the origin BR, so
  // deliveries there carry the assignment timestamp; one distribution
  // frame per destination makes every message of a batch share it.
  std::unordered_map<NodeId, std::unordered_map<std::uint64_t, sim::SimTime>>
      at;
  for (const auto& ev : sim.trace().filter(sim::TraceKind::Deliver)) {
    at[ev.node].emplace(ev.a, ev.at);
  }
  const NodeId mh0 = proto.topology().mhs[0];
  const NodeId mh1 = proto.topology().mhs[1];
  const NodeId mh2 = proto.topology().mhs[2];

  std::map<std::int64_t, std::vector<std::uint64_t>> batches;
  for (const auto& [gseq, t] : at[mh0]) batches[t.us].push_back(gseq);

  // Per batch and destination link: earliest delivery minus assignment
  // time minus the batch's serialization share = WAN residual (ARQ work).
  std::vector<std::int64_t> d1, d2;
  for (const auto& [t0, gs] : batches) {
    std::int64_t m1 = -1, m2 = -1;
    bool complete = true;
    for (const std::uint64_t g : gs) {
      const auto i1 = at[mh1].find(g);
      const auto i2 = at[mh2].find(g);
      if (i1 == at[mh1].end() || i2 == at[mh2].end()) {
        complete = false;
        break;
      }
      if (m1 < 0 || i1->second.us < m1) m1 = i1->second.us;
      if (m2 < 0 || i2->second.us < m2) m2 = i2->second.us;
    }
    if (!complete) continue;
    // 297-byte messages over the 100 Mb/s WAN: 23.76 us each.
    const std::int64_t tx = static_cast<std::int64_t>(gs.size()) * 2376 / 100;
    d1.push_back(m1 - t0 - tx);
    d2.push_back(m2 - t0 - tx);
  }
  CHECK(d1.size() > 150);

  // A batch is "burst-delayed" on a link once its residual sits half an
  // ARQ timeout above that link's floor.
  const std::int64_t floor1 = *std::min_element(d1.begin(), d1.end());
  const std::int64_t floor2 = *std::min_element(d2.begin(), d2.end());
  const std::int64_t thresh = cfg.options.retx_timeout.us / 2;
  double n1 = 0, n2 = 0, n12 = 0;
  const double n = static_cast<double>(d1.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    const bool b1 = d1[i] - floor1 > thresh;
    const bool b2 = d2[i] - floor2 > thresh;
    n1 += b1 ? 1 : 0;
    n2 += b2 ? 1 : 0;
    n12 += (b1 && b2) ? 1 : 0;
  }
  CHECK(n1 > 20);
  CHECK(n2 > 20);
  // Joint lift n12*n/(n1*n2) is ~1.0-1.25 for independent per-link chains;
  // the shared origin-keyed process measured 2.1-3.2 across seeds.
  CHECK(n12 * n < 1.7 * n1 * n2);
}

TEST_MAIN()
