// Failure handling: token-holder crash -> heartbeat detection -> ring
// repair -> Token-Regeneration with a fresh epoch; duplicate tokens are
// eliminated; total order survives both.

#include "baseline/harness.hpp"
#include "core/protocol.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

core::ProtocolConfig small_cfg(std::size_t brs) {
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = brs;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 1;
  cfg.hierarchy.mhs_per_ap = 1;
  cfg.num_sources = 2;
  cfg.source.rate_hz = 100.0;
  return cfg;
}

}  // namespace

TEST(crash_triggers_regeneration_with_fresh_epoch) {
  sim::Simulation sim(99);
  sim.trace().enable();
  core::RingNetProtocol proto(sim, small_cfg(4));
  proto.start();
  const NodeId victim = proto.topology().top_ring[1];
  sim.after(sim::secs(0.5), [&proto, victim] { proto.crash_node(victim); });
  sim.run_for(sim::secs(2.0));
  proto.stop_sources();
  sim.run_for(sim::secs(1.0));

  CHECK_EQ(sim.metrics().counter("token.regenerated"), std::uint64_t{1});
  CHECK_EQ(sim.metrics().counter("ring.repairs"), std::uint64_t{1});
  // The post-crash token carries epoch 2 and never visits the dead node.
  const sim::SimTime crash_at = sim::secs(0.5);
  std::uint64_t max_epoch = 0;
  bool visited_victim_late = false;
  for (const auto& ev : sim.trace().filter(sim::TraceKind::TokenPass)) {
    if (ev.at > crash_at + sim::secs(0.5)) {
      max_epoch = std::max(max_epoch, ev.a);
      visited_victim_late = visited_victim_late || ev.node == victim;
    }
  }
  CHECK_EQ(max_epoch, std::uint64_t{2});
  CHECK(!visited_victim_late);
  // Order holds and survivors keep delivering after the crash.
  CHECK(!proto.deliveries().check_total_order().has_value());
  CHECK(proto.mhs().back().last_delivery_at() > crash_at);
}

TEST(duplicate_token_is_destroyed) {
  baseline::RunSpec spec;
  spec.config = small_cfg(3);
  spec.warmup = sim::secs(0.25);
  spec.run = sim::secs(1.0);
  spec.drain = sim::secs(0.5);
  const auto r = baseline::run_experiment(
      spec, [](core::RingNetProtocol& proto, sim::Simulation& sim) {
        sim.after(sim::secs(0.6), [&proto] {
          proto.inject_duplicate_token(proto.topology().top_ring[1], 1);
        });
      });
  CHECK_EQ(r.duplicate_tokens_destroyed, std::uint64_t{1});
  CHECK(!r.order_violation.has_value());
  CHECK(r.min_delivery_ratio > 0.999);
}

TEST(false_ejection_heals_via_rejoin) {
  // Heartbeats ride the lossy WAN without ARQ; with heavy loss and a
  // one-miss budget, healthy BRs get ejected spuriously. They must merge
  // back into the ring and their members must recover every message
  // (hole repair from a peer's MQ), preserving total order.
  baseline::RunSpec spec;
  spec.config = small_cfg(4);
  spec.config.hierarchy.wan = net::ChannelModel::wired_wan(0.25);
  spec.config.options.heartbeat_miss_limit = 1;
  spec.warmup = sim::secs(0.25);
  spec.run = sim::secs(2.0);
  spec.drain = sim::secs(2.0);
  spec.seed = 3;

  sim::Simulation sim(spec.seed);
  core::RingNetProtocol proto(sim, baseline::effective_config(spec));
  proto.start();
  sim.run_for(spec.warmup + spec.run);
  proto.stop_sources();
  sim.run_for(spec.drain);

  CHECK(sim.metrics().counter("ring.repairs") > 0);   // false positives fired
  CHECK(sim.metrics().counter("ring.rejoins") > 0);   // and healed
  CHECK(!proto.deliveries().check_total_order().has_value());
  for (const auto& mh : proto.mhs()) {
    CHECK(static_cast<double>(mh.delivered_count()) >=
          0.99 * static_cast<double>(proto.total_sent()));
  }
}

TEST(no_spurious_failure_handling_in_healthy_runs) {
  baseline::RunSpec spec;
  spec.config = small_cfg(6);
  spec.warmup = sim::secs(0.25);
  spec.run = sim::secs(1.5);
  spec.drain = sim::secs(0.5);
  const auto r = baseline::run_experiment(spec);
  CHECK_EQ(r.token_regenerations, std::uint64_t{0});
  CHECK_EQ(r.duplicate_tokens_destroyed, std::uint64_t{0});
  CHECK(!r.order_violation.has_value());
}

TEST_MAIN()
