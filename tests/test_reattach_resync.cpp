// Satellite regression: when a BR's last member handed off, mark_acked()
// used to declare everything up to max_seen() delivered. That poisoned the
// MQ against in-flight stragglers (store() rejects gseqs at or below the
// delivered watermark), so a member re-attaching moments later either
// stalled forever behind an unfillable hole or could only gap-skip. The
// empty-BR path now acks only what falls out of the retention window.

#include "core/protocol.hpp"
#include "ringnet_test.hpp"
#include "sim/simulation.hpp"

using namespace ringnet;

TEST(reattach_after_empty_br_resyncs_without_skips) {
  sim::Simulation sim(21);
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 2;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 1;
  cfg.hierarchy.mhs_per_ap = 1;  // MH0 @ BR0 (the source), MH1 @ BR1
  // A bursty-free but lossy WAN: ARQ stragglers arrive at BR1 well after
  // newer gseqs, exactly while BR1 sits empty.
  cfg.hierarchy.wan = net::ChannelModel::wired_wan(0.15);
  auto wireless = net::ChannelModel::wireless(0.0);
  wireless.burst_loss = false;
  cfg.hierarchy.wireless = wireless;
  cfg.num_sources = 1;
  cfg.source.rate_hz = 500.0;
  cfg.options.mq_retention = 64;  // covers the 100 ms detach windows
  cfg.mobility.detach_gap = sim::msecs(100);
  core::RingNetProtocol proto(sim, cfg);
  proto.start();

  // MH1 repeatedly drops radio and re-attaches into its own cell: BR1 is
  // memberless for each 100 ms window while traffic keeps flowing.
  const NodeId roamer = proto.topology().mhs[1];
  const NodeId cell = proto.topology().desc(roamer).parent;
  for (int i = 1; i <= 4; ++i) {
    sim.after(sim::msecs(500 * i), [&proto, roamer, cell] {
      proto.force_handoff(roamer, cell);
    });
  }
  sim.run_for(sim::secs(3.0));
  proto.stop_sources();
  sim.run_for(sim::secs(2.0));

  CHECK_EQ(sim.metrics().counter("handoff.count"), std::uint64_t{4});
  // The returnee resynchronizes from BR1's retained MQ window: no skips,
  // no losses, order intact.
  CHECK_EQ(sim.metrics().counter("mh.gaps_skipped"), std::uint64_t{0});
  CHECK(!proto.deliveries().check_total_order().has_value());
  for (const auto& mh : proto.mhs()) {
    CHECK_EQ(mh.delivered_count(), proto.total_sent());
  }
}

TEST_MAIN()
