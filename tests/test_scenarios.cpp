// Scenario engine: the spec parser round-trips, the canned catalogue runs
// deterministically with zero order violations, and each workload class
// demonstrably exercises its machinery — mobility-driven handoffs, churn
// past MQ retention (gap-skipped and counted lost, never a wedge), MMPP
// bursts, cell blackouts with post-window resync, and a scripted BR crash
// with Token-Regeneration.

#include <string>

#include "baseline/harness.hpp"
#include "ringnet_test.hpp"
#include "scenario/catalogue.hpp"
#include "scenario/engine.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec scenario_spec(const std::string& name) {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 3;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 4;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 2;
  spec.seed = 7;
  const auto parsed = scenario::find_scenario(name);
  CHECK(parsed.has_value());
  if (parsed) spec.scenario = *parsed;
  return spec;
}

std::string result_fingerprint(const baseline::RunResult& r) {
  return std::to_string(r.lat_p99_us) + ":" + std::to_string(r.handoffs) +
         ":" + std::to_string(r.churn_leaves) + ":" +
         std::to_string(r.really_lost) + ":" +
         std::to_string(r.retransmits) + ":" +
         std::to_string(static_cast<std::uint64_t>(
             r.min_delivery_ratio * 1e6));
}

}  // namespace

TEST(parser_round_trips_every_canned_scenario) {
  for (const auto& c : scenario::catalogue()) {
    std::string error;
    const auto spec = scenario::parse_scenario(c.text, &error);
    CHECK(spec.has_value());
    if (!spec) {
      std::printf("  '%s': %s\n", c.name.c_str(), error.c_str());
      continue;
    }
    CHECK_EQ(spec->name, c.name);
    // Canonical describe -> parse is the identity on the described form.
    const std::string canon = scenario::describe_scenario(*spec);
    const auto reparsed = scenario::parse_scenario(canon, &error);
    CHECK(reparsed.has_value());
    if (reparsed) CHECK_EQ(scenario::describe_scenario(*reparsed), canon);
  }
}

TEST(parser_rejects_malformed_text) {
  std::string error;
  CHECK(!scenario::parse_scenario("mobility=warp,rate=2", &error));
  CHECK(!error.empty());
  CHECK(!scenario::parse_scenario("churn=poisson,leave=fast", &error));
  CHECK(!scenario::parse_scenario("fault=crash,br=one", &error));
  CHECK(!scenario::parse_scenario("bogus=1", &error));
  CHECK(!scenario::find_scenario("no-such-scenario").has_value());
}

TEST(catalogue_covers_whole_workload_space) {
  CHECK(scenario::catalogue().size() >= 8);
  bool mobility = false, churn = false, mmpp = false, crash = false,
       blackout = false, tokenloss = false;
  for (const auto& c : scenario::catalogue()) {
    const auto s = scenario::find_scenario(c.name);
    CHECK(s.has_value());
    if (!s) continue;
    mobility |= s->mobility.model != scenario::MobilityModel::None;
    churn |= s->churn.leave_rate_hz > 0.0 ||
             s->churn.mass_leave_at > sim::SimTime::zero();
    mmpp |= s->has_traffic &&
            s->traffic.pattern == core::TrafficPattern::Mmpp;
    for (const auto& f : s->faults) {
      crash |= f.kind == scenario::FaultEvent::Kind::BrCrash;
      blackout |= f.kind == scenario::FaultEvent::Kind::CellBlackout;
      tokenloss |= f.kind == scenario::FaultEvent::Kind::TokenLoss;
    }
  }
  CHECK(mobility);
  CHECK(churn);
  CHECK(mmpp);
  CHECK(crash);
  CHECK(blackout);
  CHECK(tokenloss);
}

TEST(catalogue_smoke_no_order_violations) {
  // Every canned scenario, both variants: the engine may delay and drop
  // but must never reorder. The measured window must still cover the
  // latest canned fault time (token-storm's 1.5s) with live traffic, or
  // the gate would be vacuous for the fault scenarios.
  for (const auto& c : scenario::catalogue()) {
    for (const auto variant :
         {baseline::Variant::RingNet, baseline::Variant::RingNetUnordered}) {
      auto spec = scenario_spec(c.name);
      spec.variant = variant;
      spec.warmup = sim::secs(0.2);
      spec.run = sim::secs(1.6);
      spec.drain = sim::secs(0.75);
      const auto r = baseline::run_experiment(spec);
      if (r.order_violation) {
        std::printf("  '%s': %s\n", c.name.c_str(),
                    r.order_violation->c_str());
      }
      CHECK(!r.order_violation.has_value());
    }
  }
}

TEST(same_seed_replays_identical_scenario_runs) {
  for (const std::string name : {"waypoint-roam", "flash-crowd",
                                 "long-absence", "token-storm"}) {
    const auto a = baseline::run_experiment(scenario_spec(name));
    const auto b = baseline::run_experiment(scenario_spec(name));
    CHECK_EQ(result_fingerprint(a), result_fingerprint(b));
    auto reseeded = scenario_spec(name);
    reseeded.seed = 8;
    const auto c = baseline::run_experiment(reseeded);
    CHECK(result_fingerprint(a) != result_fingerprint(c));
  }
}

TEST(mobility_models_drive_handoffs) {
  for (const std::string name :
       {"waypoint-roam", "commuter-rush", "flash-crowd"}) {
    const auto r = baseline::run_experiment(scenario_spec(name));
    CHECK(r.handoffs > 10);
    CHECK_EQ(r.handoffs, r.hot_attaches + r.cold_attaches);
    CHECK(!r.order_violation.has_value());
    CHECK(r.min_delivery_ratio > 0.95);  // MQ retention covers the moves
  }
}

TEST(churn_past_retention_skips_and_counts_lost) {
  const auto r = baseline::run_experiment(scenario_spec("long-absence"));
  CHECK(r.churn_leaves > 0);
  CHECK(r.churn_rejoins > 0);
  // Absences outlast the (overridden, tiny) MQ retention: rejoiners must
  // gap-skip and the missed range counts as really lost — not a wedge.
  CHECK(r.mh_gaps_skipped > 0);
  CHECK(r.really_lost > 0);
  CHECK(r.min_delivery_ratio < 1.0);
  CHECK(!r.order_violation.has_value());
  // Members that never churned keep delivering: the run is not wedged.
  CHECK(r.throughput_per_mh_hz > 0.0);
}

TEST(short_absence_churn_recovers_fully) {
  const auto r = baseline::run_experiment(scenario_spec("churn-mill"));
  CHECK(r.churn_leaves > 0);
  CHECK(r.churn_rejoins > 0);
  CHECK_EQ(r.really_lost, std::uint64_t{0});  // retention covers absences
  CHECK(r.min_delivery_ratio > 0.99);
  CHECK(!r.order_violation.has_value());
}

TEST(br_crash_regenerates_token_and_survivors_continue) {
  auto spec = scenario_spec("br-failover");
  sim::Simulation sim(spec.seed);
  core::RingNetProtocol proto(sim, baseline::effective_config(spec));
  proto.start();
  scenario::Engine engine(*spec.scenario, proto, sim);
  engine.arm();
  sim.run_for(spec.warmup + spec.run);
  proto.stop_sources();
  engine.stop();
  sim.run_for(spec.drain);

  CHECK_EQ(sim.metrics().counter("token.regenerated"), std::uint64_t{1});
  CHECK(sim.metrics().counter("ring.repairs") > 0);
  CHECK(!proto.deliveries().check_total_order().has_value());
  // Members outside the dead domain keep delivering after the crash.
  const sim::SimTime crash_at = sim::secs(1.0);
  bool survivor_delivered_late = false;
  for (const auto& mh : proto.mhs()) {
    survivor_delivered_late |= mh.last_delivery_at() > crash_at;
  }
  CHECK(survivor_delivered_late);
}

TEST(token_loss_in_transit_recovers_via_regeneration) {
  const auto r = baseline::run_experiment(scenario_spec("token-storm"));
  CHECK_EQ(r.token_regenerations, std::uint64_t{2});
  CHECK(r.tokens_dropped > 0);  // the lost frames really vanished
  CHECK(r.min_delivery_ratio > 0.99);  // archive repair refills the gap
  CHECK(!r.order_violation.has_value());
}

TEST(blackout_window_drops_then_resyncs) {
  const auto r = baseline::run_experiment(scenario_spec("dark-cells"));
  CHECK(r.blackout_drops > 0);
  CHECK(!r.order_violation.has_value());
  CHECK(r.retransmits > 0);
  // Downlink drops are repaired by within-retention resync once the
  // window lifts; only uplink submissions from a dark cell are gone for
  // good (no end-to-end source ARQ), so they bound the delivery deficit.
  CHECK(r.uplink_lost > 0);
  CHECK(r.min_delivery_ratio > 0.75);
  CHECK_EQ(r.really_lost, std::uint64_t{0});  // no gap ever wedges or skips
}

TEST(permanent_churn_bounds_parked_submissions) {
  // Members that leave and never rejoin must not grow O(total): sources on
  // departed MHs keep submitting, so the parked outbox is capped (oldest
  // dropped, submit-log prefix released) — the PR-2 bounded-memory
  // invariant holds under every churn law the engine can express.
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 2;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 3;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 2;
  spec.config.options.source_park_cap = 32;
  spec.run = sim::secs(3.0);
  spec.seed = 7;
  const auto parsed = scenario::parse_scenario(
      "name=ghost-town;churn=poisson,leave=3,rejoin=0;"
      "traffic=poisson,rate=400");
  CHECK(parsed.has_value());
  spec.scenario = *parsed;
  const auto r = baseline::run_experiment(spec);
  CHECK(r.churn_leaves > 0);
  CHECK_EQ(r.churn_rejoins, std::uint64_t{0});
  // ~1200 submissions per source against a 32-entry park cap: retained
  // submit-log state stays near the cap instead of tracking total volume.
  CHECK(r.submitlog_peak < 200.0);
  CHECK(!r.order_violation.has_value());
}

TEST(mass_exodus_rejoins_and_recovers) {
  const auto r = baseline::run_experiment(scenario_spec("mass-exodus"));
  CHECK(r.churn_leaves >= 5);
  CHECK_EQ(r.churn_leaves, r.churn_rejoins);
  CHECK(r.min_delivery_ratio > 0.99);
  CHECK(!r.order_violation.has_value());
}

TEST_MAIN()
