// Threaded runtime over the in-process transport twin: a tiny Figure-1
// deployment must boot through the supervisor handshake, deliver the whole
// scripted workload in total order, and survive scripted token loss (the
// per-hop ARQ and, when that is exhausted, the leader's regeneration
// watchdog). Plus direct single-threaded MhRuntime unit coverage for the
// reordering buffer and gap-skip accounting.

#include <atomic>
#include <memory>

#include "proto/messages.hpp"
#include "ringnet_test.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/node.hpp"
#include "runtime/orchestrator.hpp"

using namespace ringnet;
using namespace ringnet::runtime;

namespace {

LoopbackSpec tiny_spec() {
  LoopbackSpec spec;
  spec.num_brs = 1;
  spec.aps_per_br = 1;
  spec.mhs_per_ap = 2;
  spec.rate_hz = 100.0;
  spec.msgs_per_source = 8;
  spec.use_udp = false;
  return spec;
}

bool is_token_frame(const Datagram& d) {
  if (d.kind != FrameKind::Proto) return false;
  const auto msg = proto::decode(d.payload.data(), d.payload.size());
  return msg && msg->type() == proto::MsgType::Token;
}

proto::DataMsg ordered_data(GlobalSeq gseq, NodeId source, LocalSeq lseq) {
  proto::DataMsg m;
  m.gid = kRuntimeGroup;
  m.source = source;
  m.lseq = lseq;
  m.ordering_node = NodeId::make(Tier::BR, 0);
  m.gseq = gseq;
  m.epoch = 1;
  m.payload_size = 32;
  return m;
}

Datagram proto_datagram(const proto::Message& msg) {
  Datagram d;
  d.src = NodeId::make(Tier::BR, 0);
  d.kind = FrameKind::Proto;
  d.payload = proto::encode(msg);
  return d;
}

proto::DataMsg chain_data(GlobalSeq gseq, GlobalSeq prev, NodeId source,
                          LocalSeq lseq) {
  proto::DataMsg m = ordered_data(gseq, source, lseq);
  m.groups.insert(GroupId{1});
  m.group_seqs[0] = lseq;
  m.prev_chain = prev;
  return m;
}

MhConfig chain_cfg(NodeId self) {
  MhConfig cfg;
  cfg.self = self;
  cfg.source_id = NodeId{2};
  cfg.ap = NodeId::make(Tier::AP, 0);
  cfg.ss = NodeId{0x00FFFFFEu};
  cfg.msgs_to_send = 0;
  cfg.groups.count = 4;
  cfg.groups.groups_per_mh = 1;
  cfg.groups.dest_groups = 1;
  return cfg;
}

}  // namespace

// --- full deployment over InProc + NodeLoop --------------------------------

TEST(inproc_tiny_hierarchy_completes_in_order) {
  const auto spec = tiny_spec();
  const auto res = run_loopback(scaled(spec));
  CHECK(res.completed);
  CHECK(!res.order_violation.has_value());
  CHECK_EQ(res.n_mh, spec.n_mhs());
  for (const auto count : res.delivered_counts) {
    CHECK_EQ(count, spec.expected_total());
  }
  CHECK_EQ(res.counters.really_lost, 0u);
  CHECK_EQ(res.frames_malformed, 0u);
  CHECK(res.counters.tokens_held > 0);
}

TEST(token_loss_recovers_via_arq) {
  auto spec = tiny_spec();
  spec.num_brs = 2;  // a real ring: token frames cross between BRs
  // Lose the first two inter-BR token transmissions; the per-hop ARQ
  // must retransmit until one lands, with no order or loss impact.
  auto dropped = std::make_shared<std::atomic<int>>(0);
  spec.drop_hook = [dropped](NodeId from, NodeId to, const Datagram& d) {
    if (from.tier() == Tier::BR && to.tier() == Tier::BR &&
        is_token_frame(d) && dropped->load() < 2) {
      ++*dropped;
      return true;
    }
    return false;
  };
  const auto res = run_loopback(scaled(spec));
  CHECK(res.completed);
  CHECK(!res.order_violation.has_value());
  CHECK(dropped->load() >= 2);
  CHECK(res.counters.token_retx >= 2);
  CHECK_EQ(res.counters.really_lost, 0u);
  for (const auto count : res.delivered_counts) {
    CHECK_EQ(count, spec.expected_total());
  }
}

TEST(token_destroyed_recovers_via_leader_regeneration) {
  auto spec = tiny_spec();
  spec.num_brs = 2;
  // Shrink the watchdogs so exhausting the ARQ (max_retx attempts) and the
  // subsequent regeneration fit comfortably in a test budget.
  spec.opts.retx_timeout_us = 5'000;
  spec.opts.max_retx = 3;
  spec.opts.heartbeat_period_us = 10'000;
  // Swallow every inter-BR token frame until the sender has burned through
  // all ARQ attempts: the token dies on the wire, and only the leader's
  // regeneration watchdog can revive the ring.
  auto dropped = std::make_shared<std::atomic<int>>(0);
  const int kill_budget = 2 * (spec.opts.max_retx + 1);
  spec.drop_hook = [dropped, kill_budget](NodeId from, NodeId to,
                                          const Datagram& d) {
    if (from.tier() == Tier::BR && to.tier() == Tier::BR &&
        is_token_frame(d) && dropped->load() < kill_budget) {
      ++*dropped;
      return true;
    }
    return false;
  };
  const auto res = run_loopback(scaled(spec));
  CHECK(res.completed);
  CHECK(!res.order_violation.has_value());
  CHECK(res.counters.token_regenerated >= 1);
  CHECK_EQ(res.counters.really_lost, 0u);
  for (const auto count : res.delivered_counts) {
    CHECK_EQ(count, spec.expected_total());
  }
}

// --- MhRuntime unit coverage (single-threaded, no loop) --------------------

TEST(mh_reorders_out_of_order_gseq) {
  InProcNet net;
  auto mh_id = NodeId::make(Tier::MH, 0);
  auto tr = net.attach(mh_id);
  (void)net.attach(NodeId::make(Tier::AP, 0));  // ack sink

  MhConfig cfg;
  cfg.self = mh_id;
  cfg.source_id = NodeId{0};
  cfg.ap = NodeId::make(Tier::AP, 0);
  cfg.ss = NodeId{0x00FFFFFEu};
  cfg.msgs_to_send = 0;
  MhRuntime mh(cfg, *tr);
  mh.on_start(0);

  const auto src = NodeId{3};
  mh.on_datagram(proto_datagram(proto::Message(ordered_data(1, src, 11))), 10);
  CHECK_EQ(mh.delivered_count(), 0u);  // holding for gseq 0
  mh.on_datagram(proto_datagram(proto::Message(ordered_data(0, src, 10))), 20);
  CHECK_EQ(mh.delivered_count(), 2u);  // contiguous drain
  mh.on_datagram(proto_datagram(proto::Message(ordered_data(2, src, 12))), 30);
  CHECK_EQ(mh.delivered_count(), 3u);

  const auto& log = mh.deliveries();
  CHECK_EQ(log.size(), 3u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    CHECK_EQ(log[i].gseq, i);
  }

  // Replays of anything already delivered or buffered only bump the
  // duplicate counter.
  mh.on_datagram(proto_datagram(proto::Message(ordered_data(1, src, 11))), 40);
  CHECK_EQ(mh.delivered_count(), 3u);
  CHECK_EQ(mh.counters().duplicates, 1u);
}

TEST(mh_gap_skip_counts_really_lost) {
  InProcNet net;
  auto mh_id = NodeId::make(Tier::MH, 1);
  auto tr = net.attach(mh_id);
  (void)net.attach(NodeId::make(Tier::AP, 0));

  MhConfig cfg;
  cfg.self = mh_id;
  cfg.source_id = NodeId{1};
  cfg.ap = NodeId::make(Tier::AP, 0);
  cfg.ss = NodeId{0x00FFFFFEu};
  MhRuntime mh(cfg, *tr);
  mh.on_start(0);

  const auto src = NodeId{3};
  mh.on_datagram(proto_datagram(proto::Message(ordered_data(0, src, 0))), 10);
  // gseq 1,2 never arrive; 3 is buffered beyond the gap.
  mh.on_datagram(proto_datagram(proto::Message(ordered_data(3, src, 3))), 20);
  CHECK_EQ(mh.delivered_count(), 1u);

  // The ordering BR advances the floor past the pruned range: the MH must
  // account the two missing messages as really lost (one contiguous gap)
  // and then drain the buffered gseq 3.
  proto::DeliveryAckMsg floor_advance;
  floor_advance.gid = kRuntimeGroup;
  floor_advance.member = mh_id;
  floor_advance.watermark = 3;
  mh.on_datagram(proto_datagram(proto::Message(floor_advance)), 30);

  CHECK_EQ(mh.delivered_count(), 2u);
  CHECK_EQ(mh.counters().really_lost, 2u);
  CHECK_EQ(mh.counters().gaps_skipped, 1u);
  const auto& log = mh.deliveries();
  CHECK_EQ(log.back().gseq, 3u);
}

TEST(mh_chain_merges_repaired_link_on_resend) {
  // Chain-splice regression: when the BR finds a predecessor unrecoverable
  // it splices it out and resends the successor with a rewritten (lower)
  // prev_chain. The member already holds that successor from the original
  // transmission — dropping the resend as a duplicate would wedge the
  // chain forever.
  InProcNet net;
  auto mh_id = NodeId::make(Tier::MH, 2);
  auto tr = net.attach(mh_id);
  (void)net.attach(NodeId::make(Tier::AP, 0));
  MhRuntime mh(chain_cfg(mh_id), *tr);
  mh.on_start(0);

  const auto src = NodeId{3};
  // gseq 5 chained behind coordinate 3: its predecessor (gseq 2) was lost
  // on the downlink, so the frame is held undeliverable.
  mh.on_datagram(proto_datagram(proto::Message(chain_data(5, 3, src, 1))), 10);
  CHECK_EQ(mh.delivered_count(), 0u);
  // A byte-identical duplicate is dropped and changes nothing.
  mh.on_datagram(proto_datagram(proto::Message(chain_data(5, 3, src, 1))), 20);
  CHECK_EQ(mh.delivered_count(), 0u);
  CHECK_EQ(mh.counters().duplicates, 1u);
  // The splice resend carries the repaired link: the held copy must adopt
  // the lower link and drain.
  mh.on_datagram(proto_datagram(proto::Message(chain_data(5, 0, src, 1))), 30);
  CHECK_EQ(mh.delivered_count(), 1u);
  CHECK_EQ(mh.deliveries().back().gseq, 5u);
  // The chain continues from the new tail (coordinate 6).
  mh.on_datagram(proto_datagram(proto::Message(chain_data(9, 6, src, 2))), 40);
  CHECK_EQ(mh.delivered_count(), 2u);
  // A stale resend of the settled coordinate stays a plain duplicate.
  mh.on_datagram(proto_datagram(proto::Message(chain_data(5, 3, src, 1))), 50);
  CHECK_EQ(mh.delivered_count(), 2u);
  CHECK_EQ(mh.counters().duplicates, 2u);
}

TEST(mh_chain_hold_queue_is_bounded) {
  // A member wedged behind a missing head must not accrete unbounded held
  // frames: past the cap the farthest-future frame is shed (the BR's
  // ack-driven resend replays it once the tail catches up).
  InProcNet net;
  auto mh_id = NodeId::make(Tier::MH, 3);
  auto tr = net.attach(mh_id);
  (void)net.attach(NodeId::make(Tier::AP, 0));
  MhRuntime mh(chain_cfg(mh_id), *tr);
  mh.on_start(0);

  const auto src = NodeId{3};
  // gseq 1 (coordinate 2) never arrives; 4096 successors pile up held,
  // each linked to its immediate predecessor's coordinate.
  const GlobalSeq cap = 4096;
  for (GlobalSeq g = 2; g < 2 + cap; ++g) {
    mh.on_datagram(proto_datagram(proto::Message(chain_data(g, g, src, g))),
                   10);
  }
  CHECK_EQ(mh.delivered_count(), 0u);
  CHECK_EQ(mh.counters().duplicates, 0u);
  // One past the cap: shed instead of held.
  const GlobalSeq over = 2 + cap;
  mh.on_datagram(proto_datagram(proto::Message(chain_data(over, over, src,
                                                          over))), 20);
  CHECK_EQ(mh.counters().duplicates, 1u);
  // The missing head arrives: everything held drains in chain order; only
  // the shed frame is absent (a later resend would replay it).
  mh.on_datagram(proto_datagram(proto::Message(chain_data(1, 0, src, 1))), 30);
  CHECK_EQ(mh.delivered_count(), cap + 1);
  CHECK_EQ(mh.deliveries().back().gseq, 2 + cap - 1);
}

// --- flight recorder through the live roles --------------------------------

TEST(mh_flight_recorder_wraps_under_load) {
  InProcNet net;
  auto mh_id = NodeId::make(Tier::MH, 4);
  auto tr = net.attach(mh_id);
  (void)net.attach(NodeId::make(Tier::AP, 0));

  MhConfig cfg;
  cfg.self = mh_id;
  cfg.source_id = NodeId{4};
  cfg.ap = NodeId::make(Tier::AP, 0);
  cfg.ss = NodeId{0x00FFFFFEu};
  MhRuntime mh(cfg, *tr);
  mh.on_start(0);

  const auto src = NodeId{3};
  const std::uint64_t n = obs::FlightRecorder::kDefaultCapacity + 50;
  for (std::uint64_t g = 0; g < n; ++g) {
    mh.on_datagram(proto_datagram(proto::Message(ordered_data(g, src, g))),
                   static_cast<std::int64_t>(10 * g));
  }
  CHECK_EQ(mh.delivered_count(), n);
  const auto& fr = mh.flight_recorder();
  CHECK_EQ(fr.size(), fr.capacity());  // ring is full and wrapped
  CHECK(fr.total_recorded() >= n);     // every delivery was recorded
  const auto snap = mh.flight_recorder().snapshot();
  CHECK_EQ(snap.size(), fr.capacity());
  // Newest retained event is the last delivery; the oldest deliveries were
  // overwritten.
  CHECK(snap.back().kind == obs::FrEvent::Deliver);
  CHECK_EQ(snap.back().a, n - 1);
  // Routine traffic never arms an auto-dump, but an on-demand dump (the
  // daemon's SIGUSR1 path) renders the retained window as one JSON line.
  CHECK(!mh.flight_recorder().take_dump_request());
  const std::string json = fr.dump_json("mh[4]", "sigusr1");
  CHECK(json.find("\"reason\":\"sigusr1\"") != std::string::npos);
  CHECK(json.find("\"ev\":\"deliver\"") != std::string::npos);
}

TEST(mh_chain_regression_rejected_without_dump) {
  // The receive layer rejects any chain frame whose coordinate is at or
  // below the live tail, so a regressed gseq can never reach deliver()'s
  // order-violation arm from the wire — the auto-dump stays quiet and the
  // frame is accounted as a duplicate. (The arming semantics themselves
  // are unit-covered in test_obs; deliver()'s check is defense-in-depth
  // against a future receive-path bug.)
  InProcNet net;
  auto mh_id = NodeId::make(Tier::MH, 5);
  auto tr = net.attach(mh_id);
  (void)net.attach(NodeId::make(Tier::AP, 0));
  MhRuntime mh(chain_cfg(mh_id), *tr);
  mh.on_start(0);

  const auto src = NodeId{3};
  mh.on_datagram(proto_datagram(proto::Message(chain_data(5, 0, src, 1))), 10);
  CHECK_EQ(mh.delivered_count(), 1u);
  CHECK(!mh.flight_recorder().take_dump_request());
  // gseq 3 (coordinate 4, below the tail at 6): rejected, not delivered.
  mh.on_datagram(proto_datagram(proto::Message(chain_data(3, 6, src, 2))), 20);
  CHECK_EQ(mh.delivered_count(), 1u);
  CHECK_EQ(mh.counters().duplicates, 1u);
  CHECK(!mh.flight_recorder().take_dump_request());
  const std::string json = mh.flight_recorder().dump_json("mh[5]", "manual");
  CHECK(json.find("\"ev\":\"order_violation\"") == std::string::npos);
}

TEST(br_token_loss_arms_watchdog_dump) {
  // Scripted token loss at the BR: the peer BR never acks, the forward ARQ
  // burns its budget (token_dropped arms a dump), and the leader's
  // regeneration watchdog revives the ring (token_regen arms another).
  InProcNet net;
  const auto br0 = NodeId::make(Tier::BR, 0);
  const auto br1 = NodeId::make(Tier::BR, 1);
  const auto ss = NodeId{0x00FFFFFEu};
  auto tr = net.attach(br0);
  (void)net.attach(br1);  // silent peer: every token transmission is lost
  (void)net.attach(ss);

  BrConfig cfg;
  cfg.self = br0;
  cfg.ss = ss;
  cfg.ring = {br0, br1};
  cfg.opts.token_hold_us = 200;
  cfg.opts.retx_timeout_us = 1'000;
  cfg.opts.max_retx = 2;
  cfg.opts.heartbeat_period_us = 2'000;
  cfg.opts.heartbeat_miss_limit = 4;
  BrRuntime br(cfg, *tr);
  br.on_start(0);

  const std::int64_t horizon =
      cfg.opts.token_regen_timeout_us() + 5 * cfg.opts.retx_timeout_us;
  bool drop_dump_armed = false;
  for (std::int64_t t = 100; t <= horizon; t += 100) {
    br.on_tick(t);
    if (br.counters().token_dropped >= 1 && !drop_dump_armed) {
      // ARQ exhaustion armed the auto-dump before regeneration happened.
      drop_dump_armed = br.flight_recorder().take_dump_request();
    }
  }
  CHECK(drop_dump_armed);
  const auto c = br.counters();
  CHECK(c.token_retx >= 2);
  CHECK(c.token_dropped >= 1);
  CHECK(c.token_regenerated >= 1);
  CHECK_EQ(br.epoch(), 2u);
  // Regeneration re-armed the dump; its JSON names the watchdog event.
  CHECK(br.flight_recorder().take_dump_request());
  const std::string json = br.flight_recorder().dump_json("br[0]", "auto");
  CHECK(json.find("\"ev\":\"token_dropped\"") != std::string::npos);
  CHECK(json.find("\"ev\":\"token_regen\"") != std::string::npos);
  // The unified registry reports the same vocabulary the sim uses.
  CHECK_EQ(br.metrics().counter("token.dropped"), c.token_dropped);
  CHECK_EQ(br.metrics().counter("token.regenerated"), c.token_regenerated);
}

TEST(loopback_spans_capture_all_stages) {
  auto spec = tiny_spec();
  spec.opts.record_spans = true;
  const auto res = run_loopback(scaled(spec));
  CHECK(res.completed);
  CHECK(!res.spans.empty());
  const auto expected =
      static_cast<std::uint64_t>(spec.n_mhs()) * spec.expected_total();
  CHECK_EQ(res.spans.total().count(), expected);
  for (std::size_t i = 0; i < obs::kSpanStages; ++i) {
    CHECK_EQ(res.spans.stage(static_cast<obs::SpanStage>(i)).count(),
             expected);
  }
}

TEST_MAIN()
