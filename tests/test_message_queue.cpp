// MessageQueue (MQ) semantics: contiguous delivery, worst-case
// out-of-order gap windows, duplicate rejection, retention / ValidFront
// pruning, and gap skipping.

#include "core/message_queue.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

proto::DataMsg mk(GlobalSeq g) {
  proto::DataMsg m;
  m.gid = GroupId{1};
  m.source = NodeId{1};
  m.lseq = g;
  m.gseq = g;
  return m;
}

}  // namespace

TEST(in_order_delivery) {
  core::MessageQueue mq(8);
  for (GlobalSeq g = 0; g < 5; ++g) CHECK(mq.store(mk(g), sim::SimTime{0}));
  const auto batch = mq.deliverable();
  CHECK_EQ(batch.size(), std::size_t{5});
  for (GlobalSeq g = 0; g < 5; ++g) mq.mark_delivered(g);
  CHECK_EQ(mq.next_expected(), GlobalSeq{5});
  CHECK(mq.deliverable().empty());
}

TEST(worst_case_out_of_order_window) {
  // Reverse arrival inside a 512-wide window: nothing is deliverable until
  // gseq 0 lands, then the whole window opens at once.
  core::MessageQueue mq(16);
  const GlobalSeq window = 512;
  for (GlobalSeq i = window; i-- > 1;) {
    CHECK(mq.store(mk(i), sim::SimTime{0}));
    CHECK(mq.deliverable().empty());
  }
  CHECK_EQ(mq.size(), static_cast<std::size_t>(window - 1));
  CHECK(mq.store(mk(0), sim::SimTime{0}));
  CHECK_EQ(mq.deliverable().size(), static_cast<std::size_t>(window));
  for (GlobalSeq i = 0; i < window; ++i) mq.mark_delivered(i);
  CHECK_EQ(mq.next_expected(), window);
  // Retention bounds what survives delivery.
  CHECK_EQ(mq.size(), std::size_t{16});
  CHECK_EQ(mq.valid_front(), window - 16);
}

TEST(gap_list_and_max_seen) {
  core::MessageQueue mq(8);
  mq.store(mk(0), sim::SimTime{0});
  mq.store(mk(3), sim::SimTime{0});
  mq.store(mk(5), sim::SimTime{0});
  CHECK_EQ(mq.max_seen(), GlobalSeq{5});
  const auto missing = mq.missing_before(5);
  CHECK_EQ(missing.size(), std::size_t{3});
  CHECK_EQ(missing[0], GlobalSeq{1});
  CHECK_EQ(missing[1], GlobalSeq{2});
  CHECK_EQ(missing[2], GlobalSeq{4});
}

TEST(duplicates_rejected) {
  core::MessageQueue mq(4);
  CHECK(mq.store(mk(0), sim::SimTime{0}));
  CHECK(!mq.store(mk(0), sim::SimTime{1}));
  mq.mark_delivered(0);
  // Re-store of an already-delivered gseq is stale.
  CHECK(!mq.store(mk(0), sim::SimTime{2}));
}

TEST(zero_retention_prunes_immediately) {
  core::MessageQueue mq(0);
  for (GlobalSeq g = 0; g < 10; ++g) mq.store(mk(g), sim::SimTime{0});
  for (GlobalSeq g = 0; g < 10; ++g) mq.mark_delivered(g);
  CHECK(mq.empty());
  CHECK_EQ(mq.valid_front(), GlobalSeq{10});
}

TEST(valid_front_ignores_front_hole) {
  // An oldest entry above next_expected means the front is merely in
  // flight, not pruned: the queue must not claim it cannot serve it.
  core::MessageQueue mq(4);
  mq.store(mk(5), sim::SimTime{0});
  CHECK_EQ(mq.valid_front(), GlobalSeq{0});
  // Once 0..5 are delivered and pruned past, the front really moves.
  for (GlobalSeq g = 0; g < 5; ++g) mq.store(mk(g), sim::SimTime{0});
  for (GlobalSeq g = 0; g <= 5; ++g) mq.mark_delivered(g);
  CHECK_EQ(mq.valid_front(), GlobalSeq{2});  // retention 4 behind wm 5
}

TEST(skip_to_advances_cursor) {
  core::MessageQueue mq(4);
  mq.store(mk(100), sim::SimTime{0});
  CHECK(mq.deliverable().empty());
  mq.skip_to(100);
  CHECK_EQ(mq.next_expected(), GlobalSeq{100});
  CHECK_EQ(mq.deliverable().size(), std::size_t{1});
  // skip_to never rewinds.
  mq.skip_to(50);
  CHECK_EQ(mq.next_expected(), GlobalSeq{100});
}

TEST(stored_at_visible_until_pruned) {
  core::MessageQueue mq(0);
  mq.store(mk(0), sim::SimTime{42});
  CHECK(mq.stored_at(0).has_value());
  CHECK_EQ(mq.stored_at(0)->us, std::int64_t{42});
  mq.mark_delivered(0);
  CHECK(!mq.stored_at(0).has_value());
}

TEST_MAIN()
