// Codec round-trips for every message kind, plus malformed-input safety:
// decode() must reject truncation, trailing garbage and unknown tags
// rather than mis-parse.

#include "proto/messages.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

proto::DataMsg sample_data() {
  proto::DataMsg m;
  m.gid = GroupId{7};
  m.source = NodeId{42};
  m.lseq = 123456789ull;
  m.ordering_node = NodeId::make(Tier::BR, 3);
  m.gseq = 987654321ull;
  m.epoch = 5;
  m.payload_size = 1024;
  return m;
}

}  // namespace

TEST(data_round_trip) {
  const proto::Message msg = sample_data();
  const auto bytes = proto::encode(msg);
  const auto decoded = proto::decode(bytes);
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Data);
  const auto& d = decoded->data();
  const auto ref = sample_data();
  CHECK_EQ(d.gid.v, ref.gid.v);
  CHECK_EQ(d.source.v, ref.source.v);
  CHECK_EQ(d.lseq, ref.lseq);
  CHECK_EQ(d.ordering_node.v, ref.ordering_node.v);
  CHECK_EQ(d.gseq, ref.gseq);
  CHECK_EQ(d.epoch, ref.epoch);
  CHECK_EQ(d.payload_size, ref.payload_size);
}

TEST(ack_round_trip) {
  proto::DeliveryAckMsg a;
  a.gid = GroupId{1};
  a.member = NodeId::make(Tier::MH, 17);
  a.watermark = 5555;
  const auto decoded = proto::decode(proto::encode(proto::Message(a)));
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::DeliveryAck);
  CHECK_EQ(decoded->ack().member.v, a.member.v);
  CHECK_EQ(decoded->ack().watermark, a.watermark);
}

TEST(membership_round_trip) {
  proto::MembershipMsg m;
  m.gid = GroupId{1};
  m.origin = NodeId::make(Tier::BR, 0);
  m.events.push_back(
      {NodeId::make(Tier::MH, 1), NodeId::make(Tier::AP, 2)});
  m.events.push_back({NodeId::make(Tier::MH, 3), NodeId::invalid()});
  const auto decoded = proto::decode(proto::encode(proto::Message(m)));
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Membership);
  CHECK_EQ(decoded->membership().events.size(), std::size_t{2});
  CHECK_EQ(decoded->membership().events[0].ap.v,
           NodeId::make(Tier::AP, 2).v);
  CHECK(!decoded->membership().events[1].ap.valid());
}

TEST(heartbeat_round_trip) {
  proto::HeartbeatMsg h;
  h.from = NodeId::make(Tier::BR, 2);
  h.beat = 99;
  const auto decoded = proto::decode(proto::encode(proto::Message(h)));
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Heartbeat);
  CHECK_EQ(decoded->heartbeat().beat, std::uint64_t{99});
}

TEST(token_ack_round_trip) {
  proto::TokenAckMsg a;
  a.from = NodeId::make(Tier::BR, 1);
  a.serial = 314159;
  a.rotation = 27;
  const auto bytes = proto::encode(proto::Message(a));
  const auto decoded = proto::decode(bytes);
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::TokenAck);
  CHECK_EQ(decoded->token_ack().from.v, a.from.v);
  CHECK_EQ(decoded->token_ack().serial, a.serial);
  CHECK_EQ(decoded->token_ack().rotation, a.rotation);
  CHECK_EQ(proto::wire_size(proto::Message(a)), bytes.size());
  // Truncations at every prefix length must fail cleanly.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    CHECK(!proto::decode(prefix).has_value());
  }
}

TEST(malformed_rejected) {
  const auto bytes = proto::encode(proto::Message(sample_data()));
  // Truncations at every prefix length must fail cleanly.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    CHECK(!proto::decode(prefix).has_value());
  }
  // Trailing garbage is rejected too.
  auto padded = bytes;
  padded.push_back(0xAB);
  CHECK(!proto::decode(padded).has_value());
  // Unknown type tag.
  auto bogus = bytes;
  bogus[0] = 0x7F;
  CHECK(!proto::decode(bogus).has_value());
  CHECK(!proto::decode({}).has_value());
}

TEST(wire_size_matches_encode) {
  // wire_size() must agree byte-for-byte with the materialized encoding
  // (modulo the data payload, which rides outside the descriptor).
  proto::DataMsg d = sample_data();
  d.payload_size = 0;
  CHECK_EQ(proto::wire_size(proto::Message(d)),
           proto::encode(proto::Message(d)).size());
  d.payload_size = 256;
  CHECK_EQ(proto::wire_size(proto::Message(d)),
           proto::encode(proto::Message(d)).size() + 256);

  proto::DeliveryAckMsg a;
  CHECK_EQ(proto::wire_size(proto::Message(a)),
           proto::encode(proto::Message(a)).size());

  proto::MembershipMsg m;
  m.events.push_back({NodeId{1}, NodeId{2}});
  m.events.push_back({NodeId{3}, NodeId{4}});
  CHECK_EQ(proto::wire_size(proto::Message(m)),
           proto::encode(proto::Message(m)).size());

  proto::HeartbeatMsg h;
  CHECK_EQ(proto::wire_size(proto::Message(h)),
           proto::encode(proto::Message(h)).size());

  proto::OrderingToken t(GroupId{1}, 1);
  t.append_range(NodeId{1}, NodeId{2}, 0, 9);
  t.append_range(NodeId{2}, NodeId{3}, 0, 9);
  CHECK_EQ(proto::wire_size(proto::Message(t)),
           proto::encode(proto::Message(t)).size());
}

TEST(wire_primitives) {
  proto::WireWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDE);
  w.u64(0x1122334455667788ull);
  CHECK_EQ(w.size(), std::size_t{15});
  proto::WireReader r(w.bytes());
  CHECK_EQ(*r.u8(), 0x12);
  CHECK_EQ(*r.u16(), 0x3456);
  CHECK_EQ(*r.u32(), 0x789ABCDEu);
  CHECK_EQ(*r.u64(), 0x1122334455667788ull);
  CHECK(r.exhausted());
  CHECK(!r.u8().has_value());
}

TEST_MAIN()
