// Codec round-trips for every message kind, plus malformed-input safety:
// decode() must reject truncation, trailing garbage and unknown tags
// rather than mis-parse.

#include "proto/messages.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

proto::DataMsg sample_data() {
  proto::DataMsg m;
  m.gid = GroupId{7};
  m.source = NodeId{42};
  m.lseq = 123456789ull;
  m.ordering_node = NodeId::make(Tier::BR, 3);
  m.gseq = 987654321ull;
  m.epoch = 5;
  m.payload_size = 1024;
  return m;
}

}  // namespace

TEST(data_round_trip) {
  const proto::Message msg = sample_data();
  const auto bytes = proto::encode(msg);
  const auto decoded = proto::decode(bytes);
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Data);
  const auto& d = decoded->data();
  const auto ref = sample_data();
  CHECK_EQ(d.gid.v, ref.gid.v);
  CHECK_EQ(d.source.v, ref.source.v);
  CHECK_EQ(d.lseq, ref.lseq);
  CHECK_EQ(d.ordering_node.v, ref.ordering_node.v);
  CHECK_EQ(d.gseq, ref.gseq);
  CHECK_EQ(d.epoch, ref.epoch);
  CHECK_EQ(d.payload_size, ref.payload_size);
}

TEST(ack_round_trip) {
  proto::DeliveryAckMsg a;
  a.gid = GroupId{1};
  a.member = NodeId::make(Tier::MH, 17);
  a.watermark = 5555;
  const auto decoded = proto::decode(proto::encode(proto::Message(a)));
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::DeliveryAck);
  CHECK_EQ(decoded->ack().member.v, a.member.v);
  CHECK_EQ(decoded->ack().watermark, a.watermark);
}

TEST(membership_round_trip) {
  proto::MembershipMsg m;
  m.gid = GroupId{1};
  m.origin = NodeId::make(Tier::BR, 0);
  m.events.push_back(
      {NodeId::make(Tier::MH, 1), NodeId::make(Tier::AP, 2)});
  m.events.push_back({NodeId::make(Tier::MH, 3), NodeId::invalid()});
  const auto decoded = proto::decode(proto::encode(proto::Message(m)));
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Membership);
  CHECK_EQ(decoded->membership().events.size(), std::size_t{2});
  CHECK_EQ(decoded->membership().events[0].ap.v,
           NodeId::make(Tier::AP, 2).v);
  CHECK(!decoded->membership().events[1].ap.valid());
}

TEST(heartbeat_round_trip) {
  proto::HeartbeatMsg h;
  h.from = NodeId::make(Tier::BR, 2);
  h.beat = 99;
  const auto decoded = proto::decode(proto::encode(proto::Message(h)));
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Heartbeat);
  CHECK_EQ(decoded->heartbeat().beat, std::uint64_t{99});
}

TEST(token_ack_round_trip) {
  proto::TokenAckMsg a;
  a.from = NodeId::make(Tier::BR, 1);
  a.serial = 314159;
  a.rotation = 27;
  const auto bytes = proto::encode(proto::Message(a));
  const auto decoded = proto::decode(bytes);
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::TokenAck);
  CHECK_EQ(decoded->token_ack().from.v, a.from.v);
  CHECK_EQ(decoded->token_ack().serial, a.serial);
  CHECK_EQ(decoded->token_ack().rotation, a.rotation);
  CHECK_EQ(proto::wire_size(proto::Message(a)), bytes.size());
  // Truncations at every prefix length must fail cleanly.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    CHECK(!proto::decode(prefix).has_value());
  }
}

TEST(malformed_rejected) {
  const auto bytes = proto::encode(proto::Message(sample_data()));
  // Truncations at every prefix length must fail cleanly.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    CHECK(!proto::decode(prefix).has_value());
  }
  // Trailing garbage is rejected too.
  auto padded = bytes;
  padded.push_back(0xAB);
  CHECK(!proto::decode(padded).has_value());
  // Unknown type tag.
  auto bogus = bytes;
  bogus[0] = 0x7F;
  CHECK(!proto::decode(bogus).has_value());
  CHECK(!proto::decode({}).has_value());
}

TEST(wire_size_matches_encode) {
  // wire_size() must agree byte-for-byte with the materialized encoding
  // (modulo the data payload, which rides outside the descriptor).
  proto::DataMsg d = sample_data();
  d.payload_size = 0;
  CHECK_EQ(proto::wire_size(proto::Message(d)),
           proto::encode(proto::Message(d)).size());
  d.payload_size = 256;
  CHECK_EQ(proto::wire_size(proto::Message(d)),
           proto::encode(proto::Message(d)).size() + 256);

  proto::DeliveryAckMsg a;
  CHECK_EQ(proto::wire_size(proto::Message(a)),
           proto::encode(proto::Message(a)).size());

  proto::MembershipMsg m;
  m.events.push_back({NodeId{1}, NodeId{2}});
  m.events.push_back({NodeId{3}, NodeId{4}});
  CHECK_EQ(proto::wire_size(proto::Message(m)),
           proto::encode(proto::Message(m)).size());

  proto::HeartbeatMsg h;
  CHECK_EQ(proto::wire_size(proto::Message(h)),
           proto::encode(proto::Message(h)).size());

  proto::OrderingToken t(GroupId{1}, 1);
  t.append_range(NodeId{1}, NodeId{2}, 0, 9);
  t.append_range(NodeId{2}, NodeId{3}, 0, 9);
  CHECK_EQ(proto::wire_size(proto::Message(t)),
           proto::encode(proto::Message(t)).size());
}

TEST(wire_size_clamps_like_encode_on_oversized_group_sets) {
  // encode_body clamps the trailing section to kMaxDataGroups; wire_size
  // must apply the same clamp or a non-canonical DataMsg (a GroupSet wider
  // than the wire can name) would make the modeled frame size disagree
  // with the bytes actually emitted.
  proto::DataMsg m = sample_data();
  m.payload_size = 0;
  for (std::uint32_t g = 1; g <= 6; ++g) m.groups.insert(GroupId{g});
  for (std::size_t i = 0; i < proto::kMaxDataGroups; ++i) {
    m.group_seqs[i] = 100 + i;
  }
  m.prev_chain = 9;
  CHECK(m.groups.size() > proto::kMaxDataGroups);
  CHECK_EQ(proto::wire_size(proto::Message(m)),
           proto::encode(proto::Message(m)).size());
  // The emitted frame still decodes (to the clamped canonical prefix).
  const auto decoded = proto::decode(proto::encode(proto::Message(m)));
  CHECK(decoded.has_value());
  CHECK_EQ(decoded->data().groups.size(), proto::kMaxDataGroups);
}

TEST(wire_primitives) {
  proto::WireWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDE);
  w.u64(0x1122334455667788ull);
  CHECK_EQ(w.size(), std::size_t{15});
  proto::WireReader r(w.bytes());
  CHECK_EQ(*r.u8(), 0x12);
  CHECK_EQ(*r.u16(), 0x3456);
  CHECK_EQ(*r.u32(), 0x789ABCDEu);
  CHECK_EQ(*r.u64(), 0x1122334455667788ull);
  CHECK(r.exhausted());
  CHECK(!r.u8().has_value());
}

namespace {

proto::DataMsg sample_grouped(std::initializer_list<std::uint32_t> gids) {
  proto::DataMsg m = sample_data();
  std::size_t i = 0;
  for (const std::uint32_t g : gids) {
    m.groups.insert(GroupId{g});
    m.group_seqs[i++] = 1000 + g;
  }
  m.prev_chain = 777;
  return m;
}

}  // namespace

TEST(group_set_round_trip) {
  const proto::DataMsg ref = sample_grouped({1, 3, 9});
  const auto bytes = proto::encode(proto::Message(ref));
  const auto decoded = proto::decode(bytes);
  CHECK(decoded.has_value());
  const auto& d = decoded->data();
  CHECK_EQ(d.groups.size(), std::size_t{3});
  for (std::size_t i = 0; i < d.groups.size(); ++i) {
    CHECK_EQ(d.groups[i].v, ref.groups[i].v);
    CHECK_EQ(d.group_seqs[i], ref.group_seqs[i]);
  }
  CHECK_EQ(d.prev_chain, ref.prev_chain);
  CHECK_EQ(d.gseq, ref.gseq);
  // wire_size agrees on the extended layout too (payload rides outside).
  proto::DataMsg sized = ref;
  sized.payload_size = 0;
  CHECK_EQ(proto::wire_size(proto::Message(sized)),
           proto::encode(proto::Message(sized)).size());
}

TEST(group_set_singleton_and_full) {
  for (const auto& gids : {std::vector<std::uint32_t>{5},
                           std::vector<std::uint32_t>{2, 4, 6, 8}}) {
    proto::DataMsg ref = sample_data();
    std::size_t i = 0;
    for (const std::uint32_t g : gids) {
      ref.groups.insert(GroupId{g});
      ref.group_seqs[i++] = 50 + g;
    }
    ref.prev_chain = 42;
    const auto decoded = proto::decode(proto::encode(proto::Message(ref)));
    CHECK(decoded.has_value());
    const auto& d = decoded->data();
    CHECK_EQ(d.groups.size(), gids.size());
    for (std::size_t j = 0; j < gids.size(); ++j) {
      CHECK_EQ(d.groups[j].v, gids[j]);
      CHECK_EQ(d.group_seqs[j], std::uint64_t{50} + gids[j]);
    }
    CHECK_EQ(d.prev_chain, std::uint64_t{42});
  }
}

TEST(group_set_empty_is_legacy_layout) {
  // An empty destination set must encode byte-identically to the pre-group
  // wire layout: single-group deployments stay interoperable with old
  // frames, and the fixed 41-byte Data descriptor is load-bearing for that.
  const auto legacy = proto::encode(proto::Message(sample_data()));
  CHECK_EQ(legacy.size(), std::size_t{41});
  proto::DataMsg cleared = sample_grouped({1, 3});
  cleared.groups.clear();
  cleared.group_seqs = {};
  cleared.prev_chain = 0;
  CHECK(proto::encode(proto::Message(cleared)) == legacy);
  const auto decoded = proto::decode(legacy);
  CHECK(decoded.has_value());
  CHECK(decoded->data().groups.empty());
  CHECK_EQ(decoded->data().prev_chain, std::uint64_t{0});
}

TEST(group_set_malformed_rejected) {
  const auto bytes = proto::encode(proto::Message(sample_grouped({1, 3, 9})));
  // Truncation at every prefix of the extended frame fails cleanly — except
  // the one intentional boundary: cutting the whole group section leaves a
  // well-formed legacy frame (the section is optional by design).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    const auto decoded = proto::decode(prefix);
    if (cut == 41) {
      CHECK(decoded.has_value());
      if (decoded) CHECK(decoded->data().groups.empty());
      continue;
    }
    CHECK(!decoded.has_value());
  }
  // Trailing garbage after the chain link is rejected.
  auto padded = bytes;
  padded.push_back(0x00);
  CHECK(!proto::decode(padded).has_value());

  // The group section starts right after the 41-byte Data descriptor:
  // count byte at 41, first little-endian u32 gid at 42.
  const std::size_t kCount = 41;
  const std::size_t kFirstGid = 42;
  // Zero or oversized counts are invalid (present sections carry 1..4).
  auto zero_count = bytes;
  zero_count[kCount] = 0;
  CHECK(!proto::decode(zero_count).has_value());
  auto big_count = bytes;
  big_count[kCount] = 5;
  CHECK(!proto::decode(big_count).has_value());
  // Gids must be strictly increasing (canonical GroupSet order): raise the
  // first gid to equal, then exceed, the second.
  for (const std::uint8_t first : {std::uint8_t{3}, std::uint8_t{4}}) {
    auto unsorted = bytes;
    unsorted[kFirstGid] = first;
    CHECK(!proto::decode(unsorted).has_value());
  }
}

TEST(group_set_fuzz_mutation_safe) {
  const auto bytes = proto::encode(proto::Message(sample_grouped({2, 7, 11})));
  // Single-byte mutations anywhere in the frame must never crash the
  // decoder, and anything that still decodes must be structurally sane.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      auto mutated = bytes;
      mutated[pos] = static_cast<std::uint8_t>(mutated[pos] ^ mask);
      const auto decoded = proto::decode(mutated);
      if (!decoded.has_value()) continue;
      if (decoded->type() != proto::MsgType::Data) continue;
      const auto& d = decoded->data();
      CHECK(d.groups.size() <= proto::kMaxDataGroups);
      for (std::size_t i = 1; i < d.groups.size(); ++i) {
        CHECK(d.groups[i - 1].v < d.groups[i].v);
      }
    }
  }
}

TEST(token_group_counters_round_trip) {
  proto::OrderingToken t(GroupId{1}, 3);
  t.append_range(NodeId::make(Tier::BR, 0), NodeId{9}, 0, 4);
  t.set_group_seq(GroupId{5}, 42);
  t.set_group_seq(GroupId{2}, 10);
  CHECK_EQ(t.bump_group_seq(GroupId{2}), std::uint64_t{10});
  CHECK_EQ(t.group_seq(GroupId{2}), std::uint64_t{11});
  const auto bytes = proto::encode(proto::Message(t));
  CHECK_EQ(proto::wire_size(proto::Message(t)), bytes.size());
  const auto decoded = proto::decode(bytes);
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Token);
  const auto& rt = decoded->token();
  CHECK_EQ(rt.group_counters().size(), std::size_t{2});
  CHECK_EQ(rt.group_seq(GroupId{2}), std::uint64_t{11});
  CHECK_EQ(rt.group_seq(GroupId{5}), std::uint64_t{42});
  CHECK_EQ(rt.group_seq(GroupId{99}), std::uint64_t{0});
  // The zero-copy view reads the same counter section in place.
  const auto view = proto::TokenView::parse(bytes.data() + 1, bytes.size() - 1);
  CHECK(view.has_value());
  CHECK_EQ(view->group_counter_count(), std::size_t{2});
  CHECK_EQ(view->group_counter(0).first.v, std::uint32_t{2});
  CHECK_EQ(view->group_counter(0).second, std::uint64_t{11});
  CHECK_EQ(view->group_counter(1).first.v, std::uint32_t{5});
  CHECK_EQ(view->group_counter(1).second, std::uint64_t{42});
}

TEST_MAIN()
