#pragma once
// Minimal single-header test harness: CHECK/CHECK_EQ/CHECK_NEAR macros, a
// TEST() registry and a main() that runs every case. One executable per
// test file, registered with ctest — no external framework dependency.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace ringnet::test {

struct Case {
  std::string name;
  std::function<void()> fn;
};

inline std::vector<Case>& registry() {
  static std::vector<Case> cases;
  return cases;
}

inline int& failures() {
  static int n = 0;
  return n;
}

struct Registrar {
  Registrar(const char* name, std::function<void()> fn) {
    registry().push_back(Case{name, std::move(fn)});
  }
};

inline int run_all() {
  int failed_cases = 0;
  for (const auto& c : registry()) {
    const int before = failures();
    c.fn();
    if (failures() != before) {
      ++failed_cases;
      std::printf("[FAIL] %s\n", c.name.c_str());
    } else {
      std::printf("[ ok ] %s\n", c.name.c_str());
    }
  }
  if (failed_cases > 0) {
    std::printf("%d/%zu case(s) FAILED\n", failed_cases, registry().size());
    return 1;
  }
  std::printf("all %zu case(s) passed\n", registry().size());
  return 0;
}

}  // namespace ringnet::test

#define TEST(name)                                                       \
  static void test_fn_##name();                                          \
  static const ::ringnet::test::Registrar registrar_##name(#name,        \
                                                           test_fn_##name); \
  static void test_fn_##name()

#define CHECK(cond)                                                      \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ++::ringnet::test::failures();                                     \
      std::printf("  CHECK failed: %s (%s:%d)\n", #cond, __FILE__,       \
                  __LINE__);                                             \
    }                                                                    \
  } while (0)

#define CHECK_EQ(a, b)                                                   \
  do {                                                                   \
    if (!((a) == (b))) {                                                 \
      ++::ringnet::test::failures();                                     \
      std::printf("  CHECK_EQ failed: %s == %s (%s:%d)\n", #a, #b,       \
                  __FILE__, __LINE__);                                   \
    }                                                                    \
  } while (0)

#define CHECK_NEAR(a, b, eps)                                            \
  do {                                                                   \
    if (!(std::fabs((a) - (b)) <= (eps))) {                              \
      ++::ringnet::test::failures();                                     \
      std::printf("  CHECK_NEAR failed: %s ~ %s +/- %s (%s:%d)\n", #a,   \
                  #b, #eps, __FILE__, __LINE__);                         \
    }                                                                    \
  } while (0)

#define TEST_MAIN()                                                      \
  int main() { return ::ringnet::test::run_all(); }
