// Histogram quantile accuracy (log-bucketed: ~1.6% relative error) and
// Table formatting.

#include <sstream>

#include "ringnet_test.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"

using namespace ringnet;

TEST(histogram_basic_moments) {
  stats::Histogram h;
  CHECK_EQ(h.count(), std::uint64_t{0});
  CHECK_EQ(h.p99(), std::uint64_t{0});
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  CHECK_EQ(h.count(), std::uint64_t{100});
  CHECK_EQ(h.max(), std::uint64_t{100});
  CHECK_EQ(h.min(), std::uint64_t{1});
  CHECK_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(histogram_quantiles_within_bucket_error) {
  stats::Histogram h;
  for (std::uint64_t v = 0; v < 100000; ++v) h.record(v);
  const double tolerance = 0.02;  // 2% relative bucket error
  CHECK_NEAR(static_cast<double>(h.p50()), 50000.0, 50000.0 * tolerance);
  CHECK_NEAR(static_cast<double>(h.p90()), 90000.0, 90000.0 * tolerance);
  CHECK_NEAR(static_cast<double>(h.p99()), 99000.0, 99000.0 * tolerance);
  CHECK_EQ(h.percentile(1.0), std::uint64_t{99999});
}

TEST(histogram_small_values_exact) {
  stats::Histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  // Values below the sub-bucket count land in exact unit buckets.
  CHECK_EQ(h.percentile(0.0), std::uint64_t{0});
  CHECK_EQ(h.p50(), std::uint64_t{31});
}

TEST(histogram_quantile_empty_is_zero) {
  const stats::Histogram h;
  // quantile() is the canonical spelling of percentile(); both must agree
  // that an empty histogram reads 0 at every point.
  CHECK_EQ(h.quantile(0.0), std::uint64_t{0});
  CHECK_EQ(h.quantile(0.5), std::uint64_t{0});
  CHECK_EQ(h.quantile(1.0), std::uint64_t{0});
  CHECK_EQ(h.quantile(0.5), h.percentile(0.5));
}

TEST(histogram_quantile_single_sample_exact) {
  stats::Histogram h;
  h.record(37);
  // One sample: every quantile is that sample (37 < the sub-bucket count,
  // so the bucket is exact, not a log approximation).
  CHECK_EQ(h.quantile(0.0), std::uint64_t{37});
  CHECK_EQ(h.quantile(0.5), std::uint64_t{37});
  CHECK_EQ(h.quantile(0.99), std::uint64_t{37});
  CHECK_EQ(h.quantile(1.0), std::uint64_t{37});
  CHECK_EQ(h.count(), std::uint64_t{1});
  CHECK_EQ(h.max(), std::uint64_t{37});
}

TEST(histogram_merge_then_quantile_equals_pooled) {
  // Recording a stream into shards and merging must be quantile-equivalent
  // to recording the pooled stream into one histogram (the merge-on-read
  // contract obs::Metrics relies on for sharded histograms).
  stats::Histogram pooled;
  stats::Histogram shard_a;
  stats::Histogram shard_b;
  for (std::uint64_t v = 0; v < 50000; ++v) {
    pooled.record(v);
    (v % 2 == 0 ? shard_a : shard_b).record(v);
  }
  stats::Histogram merged;
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);
  CHECK_EQ(merged.count(), pooled.count());
  CHECK_EQ(merged.min(), pooled.min());
  CHECK_EQ(merged.max(), pooled.max());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    CHECK_EQ(merged.quantile(q), pooled.quantile(q));
  }
}

TEST(table_renders_rows) {
  stats::Table t("demo", {"name", "value", "ratio"});
  t.row().cell("alpha").cell(std::int64_t{42}).cell(0.51234, 3);
  t.row().cell("beta").cell(std::uint64_t{7}).cell(1.0, 3);
  CHECK_EQ(t.row_count(), std::size_t{2});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  CHECK(out.find("demo") != std::string::npos);
  CHECK(out.find("alpha") != std::string::npos);
  CHECK(out.find("42") != std::string::npos);
  CHECK(out.find("0.512") != std::string::npos);
  CHECK(out.find("ratio") != std::string::npos);
}

TEST(table_row_chaining_stays_valid_across_growth) {
  stats::Table t("growth", {"i"});
  // Rows live in a deque: earlier Row& references must survive appends.
  auto& first = t.row();
  for (int i = 0; i < 100; ++i) t.row().cell(std::int64_t{i});
  first.cell("still-here");
  std::ostringstream os;
  t.print(os);
  CHECK(os.str().find("still-here") != std::string::npos);
}

TEST_MAIN()
