// Data-race stress for the domain-sharded engine, meant to run under TSan
// (the CI tsan job builds every test with -fsanitize=thread). A wider ring
// than the equivalence test keeps several shard queues busy per window
// while churn migrates MHs between domains and faults exercise the
// token-regeneration and blackout paths — the cross-domain inbox,
// deferred submit-log releases, shared metrics registry and barrier-phase
// re-homing all see real concurrency here.

#include <cstdint>
#include <optional>
#include <string>

#include "baseline/harness.hpp"
#include "ringnet_test.hpp"
#include "scenario/spec.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec stress_spec() {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 6;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 3;
  spec.config.hierarchy.mhs_per_ap = 2;
  spec.config.num_sources = 6;
  spec.seed = 11;
  spec.warmup = sim::secs(0.2);
  spec.run = sim::secs(1.8);
  spec.drain = sim::secs(0.75);
  spec.shard = true;
  spec.shard_threads = 4;
  std::string error;
  const auto parsed = scenario::parse_scenario(
      "name=shard-stress;mobility=waypoint,rate=4;"
      "churn=poisson,leave=0.5,absence=0.3;"
      "traffic=poisson,rate=300;"
      "fault=tokenloss,at=0.9;fault=blackout,ap=2,at=1.2,dur=0.3",
      &error);
  CHECK(parsed.has_value());
  if (!parsed) std::printf("  parse error: %s\n", error.c_str());
  if (parsed) spec.scenario = *parsed;
  return spec;
}

}  // namespace

TEST(sharded_engine_survives_churn_and_faults) {
  const auto r = baseline::run_experiment(stress_spec());
  // The run must make real progress through the fault schedule...
  CHECK(r.throughput_per_mh_hz > 0.0);
  CHECK(r.handoffs > 0);
  CHECK_EQ(r.token_regenerations, std::uint64_t{1});
  CHECK(r.blackout_drops > 0);
  // ...and stay totally ordered while doing it.
  CHECK(!r.order_violation.has_value());
}

TEST(back_to_back_sharded_runs_are_deterministic) {
  // Thread scheduling must never leak into results: two runs of the same
  // stressed spec are bitwise-identical in everything we report.
  const auto a = baseline::run_experiment(stress_spec());
  const auto b = baseline::run_experiment(stress_spec());
  CHECK_EQ(a.lat_p99_us, b.lat_p99_us);
  CHECK_EQ(a.lat_max_us, b.lat_max_us);
  CHECK_EQ(a.retransmits, b.retransmits);
  CHECK_EQ(a.handoffs, b.handoffs);
  CHECK_EQ(a.churn_leaves, b.churn_leaves);
  CHECK_EQ(a.really_lost, b.really_lost);
  CHECK_NEAR(a.min_delivery_ratio, b.min_delivery_ratio, 1e-12);
}

TEST_MAIN()
