// Hierarchy construction: tier inventories, ring closure, parent/child
// symmetry, leader consistency, br_of path walking, and validate()'s
// ability to actually catch corruption.

#include "ringnet_test.hpp"
#include "topo/hierarchy.hpp"

using namespace ringnet;

TEST(shapes_and_counts) {
  for (const auto& [brs, ags, aps, mhs] :
       {std::tuple{2, 1, 1, 1}, std::tuple{3, 3, 2, 2},
        std::tuple{8, 4, 4, 4}}) {
    topo::HierarchyConfig cfg;
    cfg.num_brs = static_cast<std::size_t>(brs);
    cfg.ags_per_br = static_cast<std::size_t>(ags);
    cfg.aps_per_ag = static_cast<std::size_t>(aps);
    cfg.mhs_per_ap = static_cast<std::size_t>(mhs);
    const auto topo = topo::build_hierarchy(cfg);
    CHECK(!topo.validate().has_value());
    CHECK_EQ(topo.top_ring.size(), cfg.num_brs);
    CHECK_EQ(topo.ag_rings.size(), cfg.num_brs);
    CHECK_EQ(topo.aps.size(), cfg.num_brs * cfg.ags_per_br * cfg.aps_per_ag);
    CHECK_EQ(topo.mhs.size(), topo.aps.size() * cfg.mhs_per_ap);
    CHECK_EQ(topo.entity_count(),
             cfg.num_brs + cfg.num_brs * cfg.ags_per_br + topo.aps.size() +
                 topo.mhs.size());
  }
}

TEST(ring_closure_and_leader) {
  topo::HierarchyConfig cfg;
  cfg.num_brs = 5;
  const auto topo = topo::build_hierarchy(cfg);
  // Walking `next` from the leader returns to it in exactly num_brs hops.
  NodeId cur = topo.top_ring.front();
  for (std::size_t i = 0; i < cfg.num_brs; ++i) {
    CHECK_EQ(topo.desc(cur).nbrs.leader.v, topo.top_ring.front().v);
    cur = topo.desc(cur).nbrs.next;
  }
  CHECK_EQ(cur.v, topo.top_ring.front().v);
  // prev is the inverse of next.
  for (NodeId br : topo.top_ring) {
    CHECK_EQ(topo.desc(topo.desc(br).nbrs.next).nbrs.prev.v, br.v);
  }
}

TEST(br_of_walks_to_the_root) {
  topo::HierarchyConfig cfg;
  cfg.num_brs = 3;
  cfg.ags_per_br = 2;
  cfg.aps_per_ag = 2;
  cfg.mhs_per_ap = 2;
  const auto topo = topo::build_hierarchy(cfg);
  for (NodeId mh : topo.mhs) {
    const NodeId br = topo.br_of(mh);
    CHECK(br.valid());
    CHECK(br.tier() == Tier::BR);
    // The MH must be inside that BR's subtree: walk up explicitly.
    NodeId cur = mh;
    while (topo.desc(cur).parent.valid()) cur = topo.desc(cur).parent;
    CHECK_EQ(cur.v, br.v);
  }
  for (NodeId br : topo.top_ring) CHECK_EQ(topo.br_of(br).v, br.v);
}

TEST(validate_catches_corruption) {
  topo::HierarchyConfig cfg;
  cfg.num_brs = 3;
  auto topo = topo::build_hierarchy(cfg);
  CHECK(!topo.validate().has_value());
  // Break the ring.
  auto broken = topo;
  broken.desc(broken.top_ring[0]).nbrs.next = broken.top_ring[0];
  CHECK(broken.validate().has_value());
  // Break a parent link.
  auto orphaned = topo;
  orphaned.desc(orphaned.mhs[0]).parent = NodeId::invalid();
  CHECK(orphaned.validate().has_value());
  // Break the leader.
  auto misled = topo;
  misled.desc(misled.top_ring[1]).nbrs.leader = misled.top_ring[1];
  CHECK(misled.validate().has_value());
}

TEST(node_id_tiers_and_names) {
  const NodeId br = NodeId::make(Tier::BR, 7);
  CHECK(br.tier() == Tier::BR);
  CHECK_EQ(br.index(), std::uint32_t{7});
  CHECK(to_string(br) == "BR7");
  CHECK(to_string(NodeId::make(Tier::MH, 12)) == "MH12");
  CHECK(to_string(NodeId{5}) == "N5");
  CHECK(!NodeId::invalid().valid());
}

TEST_MAIN()
