// Observability layer: the unified metrics registry (concurrent intern vs
// hot-path mutation, chunked slot growth, sharded histograms), the span
// breakdown, and the flight recorder (ring wrap, auto-dump arming, JSON
// dump shape). The concurrent cases are the TSan regression net for the
// registry's lock-free read path.

#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

TEST(metrics_intern_is_idempotent) {
  obs::Metrics m;
  const auto a = m.intern("x.alpha");
  const auto b = m.intern("x.beta");
  CHECK(a != b);
  CHECK_EQ(m.intern("x.alpha"), a);
  m.incr(a, 3);
  m.incr("x.alpha");
  CHECK_EQ(m.counter(a), std::uint64_t{4});
  CHECK_EQ(m.counter("x.alpha"), std::uint64_t{4});
  CHECK_EQ(m.counter("x.never-interned"), std::uint64_t{0});
}

TEST(metrics_gauge_keeps_maximum) {
  obs::Metrics m;
  const auto g = m.intern("x.peak");
  m.gauge_max(g, 4.0);
  m.gauge_max(g, 9.0);
  m.gauge_max(g, 2.0);
  CHECK_NEAR(m.gauge(g), 9.0, 1e-12);
}

TEST(metrics_slots_survive_chunk_growth) {
  // Handles must stay valid while intern crosses chunk boundaries (64
  // slots per chunk): write through early handles after 300 later interns.
  obs::Metrics m;
  const auto first = m.intern("grow.first");
  m.incr(first);
  std::vector<obs::Metrics::MetricId> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(m.intern("grow." + std::to_string(i)));
  }
  for (const auto id : ids) m.incr(id);
  m.incr(first);
  CHECK_EQ(m.counter(first), std::uint64_t{2});
  for (const auto id : ids) CHECK_EQ(m.counter(id), std::uint64_t{1});
  std::size_t seen = 0;
  std::uint64_t sum = 0;
  m.for_each_counter([&](const std::string&, std::uint64_t c, double) {
    ++seen;
    sum += c;
  });
  CHECK_EQ(seen, std::size_t{301});
  CHECK_EQ(sum, std::uint64_t{302});
}

TEST(metrics_concurrent_intern_vs_incr) {
  // The TSan net: writer threads hammer held handles while intern threads
  // force chunk publications. Any growth on the read path is a data race
  // the sanitizer leg catches; the count check catches lost updates.
  obs::Metrics m;
  const auto hot = m.intern("race.hot");
  constexpr int kWriters = 4;
  constexpr int kIncrsPerWriter = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&m, hot] {
      for (int i = 0; i < kIncrsPerWriter; ++i) m.incr(hot);
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < 200; ++i) {
        const auto id =
            m.intern("race.t" + std::to_string(t) + "." + std::to_string(i));
        m.incr(id);
        // Same-name interning from both threads must converge on one slot.
        m.incr(m.intern("race.shared." + std::to_string(i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  CHECK_EQ(m.counter(hot),
           std::uint64_t{kWriters} * std::uint64_t{kIncrsPerWriter});
  CHECK_EQ(m.counter("race.shared.0"), std::uint64_t{2});
}

TEST(metrics_sharded_hist_merges_on_read) {
  obs::Metrics m(4);
  CHECK_EQ(m.hist_shards(), std::size_t{4});
  const auto h = m.intern_hist(obs::names::kMhLatencyUs);
  for (std::uint64_t v = 0; v < 400; ++v) m.hist_record(h, v % 4, v);
  const auto merged = m.hist(h);
  CHECK_EQ(merged.count(), std::uint64_t{400});
  CHECK_EQ(merged.max(), std::uint64_t{399});
  CHECK_EQ(m.hist(obs::names::kMhLatencyUs).count(), std::uint64_t{400});
  CHECK_EQ(m.hist("obs.no-such-hist").count(), std::uint64_t{0});
  std::size_t hists = 0;
  m.for_each_hist([&](const std::string&, const stats::Histogram& hist) {
    ++hists;
    CHECK_EQ(hist.count(), std::uint64_t{400});
  });
  CHECK_EQ(hists, std::size_t{1});
}

TEST(span_breakdown_records_and_renders) {
  obs::SpanBreakdown b;
  CHECK(b.empty());
  for (std::uint64_t i = 1; i <= 10; ++i) {
    b.record(obs::SpanStage::Submit, i);
    b.record(obs::SpanStage::Assign, 10 * i);
    b.record(obs::SpanStage::Relay, 100 * i);
    b.record(obs::SpanStage::Deliver, i);
    b.record_total(111 * i + i);
  }
  CHECK(!b.empty());
  CHECK_EQ(b.stage(obs::SpanStage::Assign).count(), std::uint64_t{10});
  CHECK_EQ(b.total().count(), std::uint64_t{10});

  obs::SpanBreakdown other;
  other.record(obs::SpanStage::Submit, 7);
  other.record_total(7);
  b.merge_from(other);
  CHECK_EQ(b.stage(obs::SpanStage::Submit).count(), std::uint64_t{11});
  CHECK_EQ(b.total().count(), std::uint64_t{11});

  const std::string t = b.table("unit");
  CHECK(t.find("unit") != std::string::npos);
  for (std::size_t i = 0; i < obs::kSpanStages; ++i) {
    CHECK(t.find(obs::stage_name(static_cast<obs::SpanStage>(i))) !=
          std::string::npos);
  }
  CHECK(t.find("total") != std::string::npos);
}

TEST(flight_recorder_ring_wraps) {
  obs::FlightRecorder fr(8);
  CHECK_EQ(fr.capacity(), std::size_t{8});
  for (std::uint64_t i = 0; i < 20; ++i) {
    fr.record(obs::FrEvent::Deliver, static_cast<std::int64_t>(i), i);
  }
  CHECK_EQ(fr.size(), std::size_t{8});
  CHECK_EQ(fr.total_recorded(), std::uint64_t{20});
  const auto snap = fr.snapshot();
  CHECK_EQ(snap.size(), std::size_t{8});
  // Oldest-to-newest: the retained window is exactly the last 8 records.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    CHECK_EQ(snap[i].a, std::uint64_t{12 + i});
    CHECK(snap[i].kind == obs::FrEvent::Deliver);
  }
}

TEST(flight_recorder_auto_dump_arming) {
  obs::FlightRecorder fr;
  CHECK(!fr.take_dump_request());
  fr.record(obs::FrEvent::TokenRx, 1, 5);
  fr.record(obs::FrEvent::Deliver, 2, 9);
  CHECK(!fr.take_dump_request());  // routine events never arm a dump
  fr.record(obs::FrEvent::TokenRegen, 3, 2);
  CHECK(fr.take_dump_request());
  CHECK(!fr.take_dump_request());  // take clears it
  fr.record(obs::FrEvent::OrderViolation, 4, 11, 10);
  fr.record(obs::FrEvent::TokenDropped, 5, 7);
  CHECK(fr.take_dump_request());
  CHECK(!fr.take_dump_request());
}

TEST(flight_recorder_dump_json_shape) {
  obs::FlightRecorder fr(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    fr.record(obs::FrEvent::TokenTx, static_cast<std::int64_t>(100 + i), i,
              i + 1);
  }
  const std::string json = fr.dump_json("br[0]", "sigusr1");
  CHECK(json.find("\"flight_recorder\"") != std::string::npos);
  CHECK(json.find("\"node\":\"br[0]\"") != std::string::npos);
  CHECK(json.find("\"reason\":\"sigusr1\"") != std::string::npos);
  CHECK(json.find("\"recorded\":6") != std::string::npos);
  CHECK(json.find("\"retained\":4") != std::string::npos);
  CHECK(json.find("\"ev\":\"token_tx\"") != std::string::npos);
  CHECK(json.find('\n') == std::string::npos);  // single line for the daemon
  // Balanced braces/brackets: a cheap well-formedness proxy the CI soak
  // backs with a real json.loads parse.
  int depth = 0;
  bool ok = true;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) ok = false;
  }
  CHECK(ok);
  CHECK_EQ(depth, 0);
  // An empty recorder still dumps well-formed JSON (quiet AP nodes).
  const obs::FlightRecorder empty;
  const std::string ej = empty.dump_json("ap[1]", "auto");
  CHECK(ej.find("\"retained\":0") != std::string::npos);
  CHECK(ej.find("\"events\":[]") != std::string::npos);
}

TEST(names_constants_are_namespaced) {
  // The RN008 lint forces core/runtime call sites through these constants;
  // sanity-pin a few so a rename cannot silently decouple sim and runtime.
  const std::string held = obs::names::kTokenHeld;
  const std::string delivered = obs::names::kMhDelivered;
  CHECK_EQ(held, std::string{"token.held"});
  CHECK_EQ(delivered, std::string{"mh.delivered"});
  CHECK_EQ(std::string{obs::names::kMhLatencyUs},
           std::string{"mh.latency_us"});
  CHECK_EQ(std::string{obs::stage_name(obs::SpanStage::Submit)},
           std::string{obs::names::kStageSubmit});
}

TEST_MAIN()
