// Rng determinism/distribution sanity and parallel_map ordering,
// correctness and exception propagation.

#include <stdexcept>

#include "ringnet_test.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace ringnet;

TEST(rng_deterministic_per_seed) {
  util::Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    all_equal = all_equal && (va == b.next());
    any_diff = any_diff || (va != c.next());
  }
  CHECK(all_equal);
  CHECK(any_diff);
}

TEST(rng_uniform_range_and_mean) {
  util::Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    CHECK(u >= 0.0);
    CHECK(u < 1.0);
    sum += u;
  }
  CHECK_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(rng_exponential_mean) {
  util::Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  CHECK_NEAR(sum / 20000.0, 0.25, 0.02);
}

TEST(parallel_map_preserves_order) {
  const auto out = util::parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; });
  CHECK_EQ(out.size(), std::size_t{1000});
  bool ok = true;
  for (std::size_t i = 0; i < out.size(); ++i) ok = ok && out[i] == i * i;
  CHECK(ok);
}

TEST(parallel_map_edge_sizes) {
  CHECK(util::parallel_map<int>(0, [](std::size_t) { return 1; }).empty());
  const auto one =
      util::parallel_map<int>(1, [](std::size_t) { return 5; });
  CHECK_EQ(one.size(), std::size_t{1});
  CHECK_EQ(one[0], 5);
  // More workers requested than items.
  const auto few = util::parallel_map<int>(
      3, [](std::size_t i) { return static_cast<int>(i); }, 16);
  CHECK_EQ(few.size(), std::size_t{3});
  CHECK_EQ(few[2], 2);
}

TEST(parallel_map_propagates_exceptions) {
  bool threw = false;
  try {
    util::parallel_map<int>(100, [](std::size_t i) -> int {
      if (i == 57) throw std::runtime_error("boom");
      return 0;
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);
}

TEST_MAIN()
