// Rng determinism/distribution sanity and parallel_map ordering,
// correctness and exception propagation.

#include <cstdint>
#include <stdexcept>

#include "ringnet_test.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace ringnet;

// Golden draws pinned to exact values: every stochastic choice in the
// simulator flows through Rng, so (seed, config) replay being bit-identical
// across compilers and platforms rests on these staying fixed. next() and
// uniform() are pure integer/exact-double arithmetic and must match
// bit-for-bit; exponential() goes through libm's log, so it gets a
// tight-epsilon check instead of exact equality.
TEST(rng_golden_draws_cross_compiler) {
  util::Rng r(42);
  const std::uint64_t expected[] = {
      0x28efe333b266f103ull, 0x47526757130f9f52ull, 0x581ce1ff0e4ae394ull,
      0x09bc585a244823f2ull};
  for (const std::uint64_t want : expected) CHECK_EQ(r.next(), want);

  util::Rng u(7);
  CHECK_EQ(u.uniform(), 0.016788294528156111);
  CHECK_EQ(u.uniform(), 0.90076068060688341);
  CHECK_EQ(u.uniform(), 0.58293029302807808);

  util::Rng b(99);
  CHECK_EQ(b.bounded(1000), std::uint64_t{564});
  CHECK_EQ(b.bounded(1000), std::uint64_t{627});
  CHECK_EQ(b.bounded(1000), std::uint64_t{807});
  CHECK_EQ(b.bounded(1000), std::uint64_t{76});

  util::Rng e(5);
  CHECK_NEAR(e.exponential(2.0), 0.69778263341051661, 1e-15);
  CHECK_NEAR(e.exponential(2.0), 0.13244468261671341, 1e-15);
  CHECK_NEAR(e.exponential(2.0), 0.052313398739983238, 1e-15);
}

TEST(rng_deterministic_per_seed) {
  util::Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    all_equal = all_equal && (va == b.next());
    any_diff = any_diff || (va != c.next());
  }
  CHECK(all_equal);
  CHECK(any_diff);
}

TEST(rng_uniform_range_and_mean) {
  util::Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    CHECK(u >= 0.0);
    CHECK(u < 1.0);
    sum += u;
  }
  CHECK_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(rng_exponential_mean) {
  util::Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  CHECK_NEAR(sum / 20000.0, 0.25, 0.02);
}

TEST(parallel_map_preserves_order) {
  const auto out = util::parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; });
  CHECK_EQ(out.size(), std::size_t{1000});
  bool ok = true;
  for (std::size_t i = 0; i < out.size(); ++i) ok = ok && out[i] == i * i;
  CHECK(ok);
}

TEST(parallel_map_edge_sizes) {
  CHECK(util::parallel_map<int>(0, [](std::size_t) { return 1; }).empty());
  const auto one =
      util::parallel_map<int>(1, [](std::size_t) { return 5; });
  CHECK_EQ(one.size(), std::size_t{1});
  CHECK_EQ(one[0], 5);
  // More workers requested than items.
  const auto few = util::parallel_map<int>(
      3, [](std::size_t i) { return static_cast<int>(i); }, 16);
  CHECK_EQ(few.size(), std::size_t{3});
  CHECK_EQ(few[2], 2);
}

// Regression: parallel_map<bool> used to write results straight into a
// std::vector<bool>, whose packed representation stores 64 elements per
// word — concurrent workers writing adjacent indexes raced on the shared
// words (a TSan-reported data race, and lost updates under contention).
// Results now land in individually-addressable slots. The busy loop widens
// each worker's in-flight window so the workers genuinely overlap; on the
// old implementation this case trips TSan reliably.
TEST(parallel_map_bool_results) {
  const auto out = util::parallel_map<bool>(
      200000,
      [](std::size_t i) {
        volatile unsigned sink = 0;  // local: busy-work, not shared state
        for (unsigned k = 0; k < 50; ++k) sink = sink + 1;
        return i % 3 == 0;
      },
      8);
  CHECK_EQ(out.size(), std::size_t{200000});
  bool ok = true;
  for (std::size_t i = 0; i < out.size(); ++i) {
    ok = ok && out[i] == (i % 3 == 0);
  }
  CHECK(ok);
}

TEST(parallel_map_propagates_exceptions) {
  bool threw = false;
  try {
    util::parallel_map<int>(100, [](std::size_t i) -> int {
      if (i == 57) throw std::runtime_error("boom");
      return 0;
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);
}

TEST_MAIN()
