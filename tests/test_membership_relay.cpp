// Satellite regression: the batched membership relay used to freeze the
// hop budget (alive_ring_.size() - 1) at flush time, so a BR that rejoined
// the ring mid-relay never saw the batch and kept a stale view forever.
// The batch now carries its visited set and keeps walking the *current*
// ring until it closes on itself.

#include "core/protocol.hpp"
#include "ringnet_test.hpp"
#include "sim/simulation.hpp"

using namespace ringnet;

TEST(relay_reaches_br_that_rejoins_mid_relay) {
  sim::Simulation sim(13);
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 4;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 2;  // two cells under BR0 for the handoff
  cfg.hierarchy.mhs_per_ap = 1;
  cfg.num_sources = 0;  // membership machinery only
  core::RingNetProtocol proto(sim, cfg);
  proto.start();

  const NodeId mh = proto.topology().mhs[0];
  const NodeId old_ap = proto.topology().desc(mh).parent;
  // The sibling cell under the same AG (both route membership via BR0).
  const NodeId ag = proto.topology().desc(old_ap).parent;
  const NodeId new_ap = proto.topology().desc(ag).children[1];
  CHECK(new_ap != old_ap);
  const NodeId ejected = proto.topology().top_ring[3];

  // t=10ms: handoff queues detach+attach events at BR0, pending for the
  // t=50ms membership flush. t=40ms: BR3 is falsely ejected; its t=50ms
  // heartbeat merges it back — after the flush captured the shrunken ring
  // but before the relay finishes walking it.
  sim.after(sim::msecs(10), [&] { proto.force_handoff(mh, new_ap); });
  sim.after(sim::msecs(40), [&] { proto.eject_br(ejected); });
  sim.run_for(sim::msecs(300));

  CHECK_EQ(sim.metrics().counter("ring.repairs"), std::uint64_t{1});
  CHECK_EQ(sim.metrics().counter("ring.rejoins"), std::uint64_t{1});
  // Every BR — including the one that rejoined mid-relay — converged on
  // the MH's new cell.
  for (NodeId br : proto.topology().top_ring) {
    const auto ap = proto.node(br).group_view().ap_of(mh);
    CHECK(ap.has_value());
    if (ap) CHECK_EQ(*ap, new_ap);
  }
}

TEST_MAIN()
