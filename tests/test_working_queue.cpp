// WorkingQueue (WQ) semantics: FIFO assignment order, in-place mutation by
// the ordering functor, rejection counting, and drain-on-assign.

#include "core/working_queue.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

proto::DataMsg mk(std::uint32_t source, LocalSeq lseq) {
  proto::DataMsg m;
  m.source = NodeId{source};
  m.lseq = lseq;
  return m;
}

}  // namespace

TEST(fifo_assignment) {
  core::WorkingQueue wq;
  wq.add(mk(1, 0));
  wq.add(mk(2, 0));
  wq.add(mk(1, 1));
  CHECK_EQ(wq.size(), std::size_t{3});

  GlobalSeq next = 100;
  std::size_t dropped = 0;
  const auto out = wq.assign(
      [&next](proto::DataMsg& m) {
        m.gseq = next++;
        return true;
      },
      dropped);
  CHECK_EQ(out.size(), std::size_t{3});
  CHECK_EQ(dropped, std::size_t{0});
  CHECK(wq.empty());
  // FIFO: arrival order defines gseq order.
  CHECK_EQ(out[0].gseq, GlobalSeq{100});
  CHECK_EQ(out[0].source.v, std::uint32_t{1});
  CHECK_EQ(out[1].gseq, GlobalSeq{101});
  CHECK_EQ(out[1].source.v, std::uint32_t{2});
  CHECK_EQ(out[2].gseq, GlobalSeq{102});
  CHECK_EQ(out[2].lseq, LocalSeq{1});
}

TEST(rejections_are_dropped_and_counted) {
  core::WorkingQueue wq;
  for (LocalSeq i = 0; i < 6; ++i) wq.add(mk(1, i));
  std::size_t dropped = 0;
  const auto out = wq.assign(
      [](proto::DataMsg& m) { return m.lseq % 2 == 0; }, dropped);
  CHECK_EQ(out.size(), std::size_t{3});
  CHECK_EQ(dropped, std::size_t{3});
  // Rejected messages are not retried on the next assignment pass.
  std::size_t dropped2 = 0;
  CHECK(wq.assign([](proto::DataMsg&) { return true; }, dropped2).empty());
  CHECK_EQ(dropped2, std::size_t{0});
}

TEST(empty_assign_is_noop) {
  core::WorkingQueue wq;
  std::size_t dropped = 0;
  CHECK(wq.assign([](proto::DataMsg&) { return true; }, dropped).empty());
  CHECK_EQ(dropped, std::size_t{0});
}

TEST_MAIN()
