// baseline::effective_config: the variant resolver's degenerate
// hierarchies are shaped exactly as documented — SingleRing is one logical
// ring with one cell per ring node, Sequencer is a star around a single
// ordering node, RingNetUnordered only flips the ordering pass off — and
// scenario traffic/retention overrides land in the resolved config.

#include "baseline/harness.hpp"
#include "ringnet_test.hpp"
#include "scenario/spec.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec base_spec() {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 3;
  spec.config.hierarchy.ags_per_br = 2;
  spec.config.hierarchy.aps_per_ag = 2;
  spec.config.hierarchy.mhs_per_ap = 2;
  spec.flat_aps = 6;
  spec.flat_mhs_per_ap = 2;
  return spec;
}

}  // namespace

TEST(ringnet_keeps_hierarchy_and_orders) {
  auto spec = base_spec();
  spec.variant = baseline::Variant::RingNet;
  const auto cfg = baseline::effective_config(spec);
  CHECK(cfg.options.ordered);
  CHECK_EQ(cfg.hierarchy.num_brs, std::size_t{3});
  CHECK_EQ(cfg.hierarchy.ags_per_br, std::size_t{2});
  CHECK_EQ(cfg.hierarchy.aps_per_ag, std::size_t{2});
  CHECK_EQ(cfg.hierarchy.mhs_per_ap, std::size_t{2});
}

TEST(unordered_only_flips_ordering_off) {
  auto spec = base_spec();
  spec.variant = baseline::Variant::RingNetUnordered;
  const auto cfg = baseline::effective_config(spec);
  CHECK(!cfg.options.ordered);
  // Same distribution vehicle: the hierarchy is untouched.
  CHECK_EQ(cfg.hierarchy.num_brs, spec.config.hierarchy.num_brs);
  CHECK_EQ(cfg.hierarchy.ags_per_br, spec.config.hierarchy.ags_per_br);
  CHECK_EQ(cfg.hierarchy.aps_per_ag, spec.config.hierarchy.aps_per_ag);
  CHECK_EQ(cfg.hierarchy.mhs_per_ap, spec.config.hierarchy.mhs_per_ap);
}

TEST(single_ring_is_one_flat_ring_of_cells) {
  auto spec = base_spec();
  spec.variant = baseline::Variant::SingleRing;
  const auto cfg = baseline::effective_config(spec);
  CHECK(cfg.options.ordered);
  // One ring node per cell: every AP hangs off its own BR through a
  // degenerate one-AG, one-AP chain.
  CHECK_EQ(cfg.hierarchy.num_brs, spec.flat_aps);
  CHECK_EQ(cfg.hierarchy.ags_per_br, std::size_t{1});
  CHECK_EQ(cfg.hierarchy.aps_per_ag, std::size_t{1});
  CHECK_EQ(cfg.hierarchy.mhs_per_ap, spec.flat_mhs_per_ap);
  // The ring must close even when the flat shape degenerates.
  auto tiny = spec;
  tiny.flat_aps = 1;
  CHECK_EQ(baseline::effective_config(tiny).hierarchy.num_brs,
           std::size_t{2});
}

TEST(sequencer_is_a_star_around_one_ordering_node) {
  auto spec = base_spec();
  spec.variant = baseline::Variant::Sequencer;
  const auto cfg = baseline::effective_config(spec);
  CHECK(cfg.options.ordered);
  CHECK_EQ(cfg.hierarchy.num_brs, std::size_t{1});
  CHECK_EQ(cfg.hierarchy.ags_per_br, std::size_t{1});
  CHECK_EQ(cfg.hierarchy.aps_per_ag, spec.flat_aps);
  CHECK_EQ(cfg.hierarchy.mhs_per_ap, spec.flat_mhs_per_ap);
}

TEST(scenario_traffic_and_retention_override) {
  auto spec = base_spec();
  scenario::ScenarioSpec sc;
  sc.has_traffic = true;
  sc.traffic.pattern = core::TrafficPattern::Mmpp;
  sc.traffic.rate_hz = 42.0;
  sc.traffic.burst_rate_hz = 777.0;
  sc.traffic.sender_skew = 1.5;
  sc.mq_retention = 64;
  spec.scenario = sc;
  const auto cfg = baseline::effective_config(spec);
  CHECK(cfg.source.pattern == core::TrafficPattern::Mmpp);
  CHECK_NEAR(cfg.source.rate_hz, 42.0, 1e-12);
  CHECK_NEAR(cfg.source.burst_rate_hz, 777.0, 1e-12);
  CHECK_NEAR(cfg.source.sender_skew, 1.5, 1e-12);
  CHECK_EQ(cfg.options.mq_retention, std::size_t{64});
  // The payload size is deployment config, not workload: untouched.
  CHECK_EQ(cfg.source.payload_size, spec.config.source.payload_size);
}

TEST(scenario_without_traffic_leaves_sources_alone) {
  auto spec = base_spec();
  spec.config.source.rate_hz = 123.0;
  scenario::ScenarioSpec sc;
  sc.mobility.model = scenario::MobilityModel::RandomWaypoint;
  spec.scenario = sc;
  const auto cfg = baseline::effective_config(spec);
  CHECK_NEAR(cfg.source.rate_hz, 123.0, 1e-12);
  CHECK(cfg.source.pattern == core::TrafficPattern::Constant);
  CHECK_EQ(cfg.options.mq_retention, spec.config.options.mq_retention);
}

TEST_MAIN()
