// Mobility: handoffs under the smooth-handoff reservation scheme keep
// service continuous (hot attaches dominate in sparse membership), the
// batched membership views reconverge, and total order is mobility-proof.

#include "baseline/harness.hpp"
#include "core/protocol.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec mobile_spec(bool smooth) {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 2;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 6;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 1;
  spec.config.source.rate_hz = 100.0;
  spec.config.options.smooth_handoff = smooth;
  spec.config.mobility.handoff_rate_hz = 2.0;
  spec.config.mobility.detach_gap = sim::msecs(20);
  spec.warmup = sim::secs(0.25);
  spec.run = sim::secs(2.0);
  spec.drain = sim::secs(1.0);
  spec.seed = 5;
  return spec;
}

}  // namespace

TEST(order_holds_under_mobility) {
  const auto r = baseline::run_experiment(mobile_spec(true));
  CHECK(r.handoffs > 20);
  CHECK_EQ(r.handoffs, r.hot_attaches + r.cold_attaches);
  CHECK(!r.order_violation.has_value());
  // Default retention covers the detach gaps: no data loss.
  CHECK(r.min_delivery_ratio > 0.99);
}

TEST(reservations_raise_hot_attach_share) {
  const auto on = baseline::run_experiment(mobile_spec(true));
  const auto off = baseline::run_experiment(mobile_spec(false));
  const double hot_on = static_cast<double>(on.hot_attaches) /
                        static_cast<double>(on.handoffs);
  const double hot_off = static_cast<double>(off.hot_attaches) /
                         static_cast<double>(off.handoffs);
  CHECK(hot_on > hot_off);
  CHECK(hot_on > 0.8);  // sparse membership, neighbors reserved
}

TEST(zero_retention_causes_gap_skips) {
  auto spec = mobile_spec(true);
  spec.config.options.mq_retention = 0;
  spec.config.source.rate_hz = 200.0;
  spec.config.mobility.detach_gap = sim::msecs(50);
  const auto r = baseline::run_experiment(spec);
  // With nothing retained past the subtree ack, a handed-off MH's resume
  // point is gone: it must skip, and the skipped range counts as lost.
  CHECK(r.mh_gaps_skipped > 0);
  CHECK(r.really_lost > 0);
  CHECK(r.min_delivery_ratio < 1.0);
  CHECK(!r.order_violation.has_value());  // gaps, never reordering
}

TEST(membership_views_reconverge) {
  auto spec = mobile_spec(true);
  sim::Simulation sim(spec.seed);
  core::RingNetProtocol proto(sim, baseline::effective_config(spec));
  proto.start();
  sim.run_for(sim::secs(2.0));
  proto.stop_sources();
  proto.mobility().stop();
  sim.run_for(sim::secs(1.5));  // drain reattachments + batched relays
  CHECK(sim.metrics().counter("membership.applied") > 0);
  CHECK(sim.metrics().counter("membership.relayed") > 0);
  for (NodeId br : proto.topology().top_ring) {
    CHECK_EQ(proto.node(br).group_view().member_count(),
             proto.topology().mhs.size());
  }
}

TEST_MAIN()
