// The shared bench CLI helpers (bench/bench_util.hpp): scenario resolution
// through the one hoisted path every bench now uses, and the spec overrides
// apply_cli layers on a sweep point. Exit-on-error paths (usage_and_exit,
// the --scenario failure inside apply_cli) are covered by resolving first,
// the way the benches do.

#include "../bench/bench_util.hpp"
#include "ringnet_test.hpp"
#include "scenario/catalogue.hpp"

using namespace ringnet;

TEST(resolve_scenario_accepts_canned_names) {
  const auto parsed = bench::resolve_scenario("waypoint-roam");
  CHECK(parsed.has_value());
  if (parsed) CHECK_EQ(parsed->name, std::string("waypoint-roam"));
}

TEST(resolve_scenario_accepts_adhoc_text) {
  const auto parsed = bench::resolve_scenario(
      "name=adhoc;groups=8,per_mh=2,dest=2;traffic=poisson,rate=100");
  CHECK(parsed.has_value());
  if (!parsed) return;
  CHECK_EQ(parsed->name, std::string("adhoc"));
  CHECK(parsed->groups.has_value());
  CHECK_EQ(parsed->groups->count, std::size_t{8});
  CHECK_EQ(parsed->groups->groups_per_mh, std::size_t{2});
  CHECK_EQ(parsed->groups->dest_groups, std::size_t{2});
}

TEST(resolve_scenario_rejects_unknown) {
  CHECK(!bench::resolve_scenario("no-such-scenario").has_value());
  CHECK(!bench::resolve_scenario("mobility=warp,rate=2").has_value());
}

TEST(every_catalogue_entry_resolves) {
  // The canned entries (including the multi-group ones) must always pass
  // through the shared resolver: the benches iterate the catalogue with it.
  bool saw_group_mesh = false;
  for (const auto& c : scenario::catalogue()) {
    const auto by_name = bench::resolve_scenario(c.name);
    const auto by_text = bench::resolve_scenario(c.text);
    CHECK(by_name.has_value());
    CHECK(by_text.has_value());
    if (by_name && by_text) CHECK_EQ(by_name->name, by_text->name);
    saw_group_mesh |= c.name == "group-mesh";
  }
  CHECK(saw_group_mesh);
}

TEST(apply_cli_layers_overrides) {
  bench::Options opts;
  opts.seed = 99;
  opts.smoke = true;
  opts.shard_threads = 3;
  baseline::RunSpec spec;
  bench::apply_cli(opts, spec);
  CHECK_EQ(spec.seed, std::uint64_t{99});
  CHECK(spec.shard);
  CHECK_EQ(spec.shard_threads, std::size_t{3});
  // The smoke preset still covers the latest canned fault time (1.5s).
  CHECK(spec.warmup == sim::secs(0.2));
  CHECK(spec.run == sim::secs(1.6));
  CHECK(spec.drain == sim::secs(0.75));
  // --run wins over the smoke preset's window.
  opts.run_secs = 3.5;
  bench::apply_cli(opts, spec);
  CHECK(spec.run == sim::secs(3.5));
  // A resolvable --scenario lands in the spec.
  opts.scenario = "group-flash";
  bench::apply_cli(opts, spec);
  CHECK(spec.scenario.has_value());
  if (spec.scenario) {
    CHECK_EQ(spec.scenario->name, std::string("group-flash"));
    CHECK(spec.scenario->groups.has_value());
  }
}

TEST_MAIN()
