// Sharded-engine equivalence: for every canned scenario, the domain-sharded
// parallel engine must produce exactly the run the single-heap oracle
// produces over the same domain plan — identical per-MH delivery traces
// (gseq and timestamp), identical protocol counters, identical acked floor.
// Both modes share event keys (at, source domain, source seq) and
// per-context RNG streams; the conservative-lookahead windows only change
// *which thread* executes an event, never its order within a context.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baseline/harness.hpp"
#include "ringnet_test.hpp"
#include "scenario/catalogue.hpp"
#include "scenario/engine.hpp"

using namespace ringnet;

namespace {

struct DeliverRec {
  std::uint32_t node = 0;
  std::uint64_t gseq = 0;
  std::int64_t at_us = 0;

  bool operator==(const DeliverRec&) const = default;
  bool operator<(const DeliverRec& o) const {
    if (node != o.node) return node < o.node;
    if (gseq != o.gseq) return gseq < o.gseq;
    return at_us < o.at_us;
  }
};

struct ModeResult {
  std::vector<DeliverRec> deliveries;
  std::string counters;
  GlobalSeq acked_floor = 0;
  std::uint64_t total_sent = 0;
};

ModeResult run_mode(baseline::RunSpec spec, std::size_t threads) {
  spec.shard = true;
  spec.shard_threads = threads;
  const core::ProtocolConfig cfg = baseline::effective_config(spec);
  sim::Simulation sim(spec.seed, baseline::shard_plan(spec, cfg));
  sim.enable_trace();
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  std::optional<scenario::Engine> engine;
  if (spec.scenario) {
    engine.emplace(*spec.scenario, proto, sim);
    engine->arm();
  }
  sim.run_for(spec.warmup + spec.run);
  proto.stop_sources();
  proto.mobility().stop();
  if (engine) engine->stop();
  sim.run_for(spec.drain);

  ModeResult out;
  // An MH's deliveries land in whichever context owned it at the time, so
  // gather from every per-context trace and canonicalize the order.
  for (const auto& tr : sim.traces()) {
    tr.for_each(sim::TraceKind::Deliver, [&out](const sim::TraceEvent& ev) {
      out.deliveries.push_back(DeliverRec{ev.node.v, ev.a, ev.at.us});
    });
  }
  std::sort(out.deliveries.begin(), out.deliveries.end());
  const auto& mx = sim.metrics();
  for (const char* name :
       {"mh.delivered", "token.held", "arq.acks_sent", "arq.retransmits",
        "handoff.count", "handoff.hot", "churn.leaves", "churn.rejoins",
        "mh.gaps_skipped", "mh.gap_skipped_msgs", "blackout.dropped",
        "blackout.uplink_lost", "token.regenerated", "token.dropped",
        "membership.applied", "ring.repairs"}) {
    out.counters += std::string(name) + "=" +
                    std::to_string(mx.counter(name)) + ";";
  }
  out.acked_floor = proto.global_acked_floor();
  out.total_sent = proto.total_sent();
  return out;
}

baseline::RunSpec scenario_spec(const std::string& name) {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 3;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 4;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 2;
  spec.seed = 7;
  spec.warmup = sim::secs(0.2);
  spec.run = sim::secs(1.6);
  spec.drain = sim::secs(0.75);
  const auto parsed = scenario::find_scenario(name);
  CHECK(parsed.has_value());
  if (parsed) spec.scenario = *parsed;
  return spec;
}

}  // namespace

TEST(every_canned_scenario_matches_the_oracle) {
  for (const auto& c : scenario::catalogue()) {
    const auto spec = scenario_spec(c.name);
    const ModeResult oracle = run_mode(spec, 0);
    const ModeResult sharded = run_mode(spec, 4);
    if (oracle.deliveries != sharded.deliveries) {
      std::printf("  '%s': delivery traces diverge (%zu vs %zu records)\n",
                  c.name.c_str(), oracle.deliveries.size(),
                  sharded.deliveries.size());
      const std::size_t n =
          std::min(oracle.deliveries.size(), sharded.deliveries.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (oracle.deliveries[i] == sharded.deliveries[i]) continue;
        std::printf(
            "    first divergence at %zu: oracle(node=%u gseq=%llu "
            "at=%lldus) sharded(node=%u gseq=%llu at=%lldus)\n",
            i, oracle.deliveries[i].node,
            static_cast<unsigned long long>(oracle.deliveries[i].gseq),
            static_cast<long long>(oracle.deliveries[i].at_us),
            sharded.deliveries[i].node,
            static_cast<unsigned long long>(sharded.deliveries[i].gseq),
            static_cast<long long>(sharded.deliveries[i].at_us));
        break;
      }
    }
    CHECK(oracle.deliveries == sharded.deliveries);
    CHECK(!oracle.deliveries.empty());
    if (oracle.counters != sharded.counters) {
      std::printf("  '%s':\n    oracle  %s\n    sharded %s\n", c.name.c_str(),
                  oracle.counters.c_str(), sharded.counters.c_str());
    }
    CHECK_EQ(oracle.counters, sharded.counters);
    CHECK_EQ(oracle.acked_floor, sharded.acked_floor);
    CHECK_EQ(oracle.total_sent, sharded.total_sent);
  }
}

TEST(thread_count_does_not_change_the_run) {
  // The window schedule depends only on the event population, never on how
  // many workers drain a window: 1, 2 and 8 threads all replay the oracle.
  const auto spec = scenario_spec("waypoint-roam");
  const ModeResult oracle = run_mode(spec, 0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const ModeResult sharded = run_mode(spec, threads);
    CHECK(oracle.deliveries == sharded.deliveries);
    CHECK_EQ(oracle.counters, sharded.counters);
  }
}

TEST(harness_shard_spec_reports_same_results) {
  // The RunSpec plumbing end-to-end: run_experiment under the sharded plan
  // must report the same distilled results as the oracle plan.
  for (const std::string name : {"waypoint-roam", "token-storm"}) {
    auto spec = scenario_spec(name);
    spec.shard = true;
    spec.shard_threads = 0;
    const auto oracle = baseline::run_experiment(spec);
    spec.shard_threads = 4;
    const auto sharded = baseline::run_experiment(spec);
    CHECK_EQ(oracle.lat_p99_us, sharded.lat_p99_us);
    CHECK_EQ(oracle.lat_max_us, sharded.lat_max_us);
    CHECK_EQ(oracle.retransmits, sharded.retransmits);
    CHECK_EQ(oracle.handoffs, sharded.handoffs);
    CHECK_NEAR(oracle.min_delivery_ratio, sharded.min_delivery_ratio, 1e-12);
    CHECK(!oracle.order_violation.has_value());
    CHECK(!sharded.order_violation.has_value());
  }
}

TEST_MAIN()
