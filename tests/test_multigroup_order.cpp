// The multi-group ordering contract, end to end:
//   1. Single-group configs are BIT-IDENTICAL to the pre-group protocol —
//      golden delivery-trace fingerprints captured before the refactor must
//      reproduce exactly, with groups left at the default and with
//      groups.count=1 spelled out.
//   2. Multi-group runs are pairwise-consistent: any two members that both
//      deliver the same two messages deliver them in the same relative
//      order (core::check_pairwise_order), across the serial engine, the
//      domain-sharded engine (identical traces), and the in-process
//      runtime twin.
//   3. The satellite regression: the sharded lookahead floor derives from
//      the per-pair latency matrix and equals the configured WAN latency on
//      uniform deployments.

#include <string>
#include <vector>

#include "baseline/harness.hpp"
#include "core/analysis.hpp"
#include "core/groups.hpp"
#include "ringnet_test.hpp"
#include "runtime/orchestrator.hpp"
#include "scenario/catalogue.hpp"

using namespace ringnet;

namespace {

// FNV-1a over the distilled run: totals, latency percentiles, recovery
// counters, then every per-MH delivery record. Any behavioral drift in the
// single-group path — an extra RNG draw, a reordered event, one changed
// timestamp — lands in at least one of these.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fingerprint(const baseline::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, r.total_sent);
  h = fnv1a(h, r.lat_p50_us);
  h = fnv1a(h, r.lat_p99_us);
  h = fnv1a(h, r.lat_max_us);
  h = fnv1a(h, r.retransmits);
  h = fnv1a(h, r.tokens_held);
  h = fnv1a(h, r.handoffs);
  for (const auto off : r.deliveries_offsets) h = fnv1a(h, off);
  for (const auto& rec : r.deliveries_flat) {
    h = fnv1a(h, rec.gseq);
    h = fnv1a(h, rec.source.v);
    h = fnv1a(h, rec.lseq);
  }
  return h;
}

// Captured from the tree immediately before the multi-group refactor
// (same spec, same seed): the single-group protocol's exact behavior.
constexpr std::uint64_t kGoldenPlain = 0x59d7ba4e21237c25ull;
constexpr std::uint64_t kGoldenWaypoint = 0x6315be55d5b0c04bull;

baseline::RunSpec base_spec() {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 3;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 4;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 2;
  spec.config.source.rate_hz = 120.0;
  spec.config.record_deliveries = true;
  spec.warmup = sim::secs(0.2);
  spec.run = sim::secs(1.6);
  spec.drain = sim::secs(0.75);
  spec.seed = 7;
  spec.export_deliveries = true;
  return spec;
}

baseline::RunSpec waypoint_spec() {
  auto spec = base_spec();
  scenario::ScenarioSpec sc;
  sc.name = "golden-waypoint";
  sc.mobility.model = scenario::MobilityModel::RandomWaypoint;
  sc.mobility.rate_hz = 2.0;
  spec.scenario = sc;
  return spec;
}

baseline::RunSpec group_scenario_spec(const std::string& name) {
  auto spec = base_spec();
  const auto parsed = scenario::find_scenario(name);
  CHECK(parsed.has_value());
  if (parsed) spec.scenario = *parsed;
  return spec;
}

}  // namespace

TEST(single_group_reproduces_golden_traces) {
  // Default config (groups untouched) replays the pre-refactor protocol
  // bit for bit.
  const auto plain = baseline::run_experiment(base_spec());
  CHECK(!plain.order_violation.has_value());
  CHECK_EQ(fingerprint(plain), kGoldenPlain);

  const auto waypoint = baseline::run_experiment(waypoint_spec());
  CHECK(!waypoint.order_violation.has_value());
  CHECK_EQ(fingerprint(waypoint), kGoldenWaypoint);

  // groups.count = 1 spelled out is the same degenerate deployment, not a
  // third mode: same fingerprints, byte for byte.
  auto explicit1 = base_spec();
  explicit1.config.groups.count = 1;
  explicit1.config.groups.groups_per_mh = 1;
  explicit1.config.groups.dest_groups = 1;
  CHECK_EQ(fingerprint(baseline::run_experiment(explicit1)), kGoldenPlain);
  auto explicit1_wp = waypoint_spec();
  explicit1_wp.config.groups.count = 1;
  CHECK_EQ(fingerprint(baseline::run_experiment(explicit1_wp)),
           kGoldenWaypoint);
}

TEST(group_catalogue_is_pairwise_consistent) {
  // The three canned multi-group workloads (static mesh, membership churn,
  // per-group flash crowds): zero pairwise-order violations, and genuinely
  // multicast — total deliveries stay well below ordered-volume x
  // population because non-destination members never see the message.
  for (const std::string name : {"group-mesh", "group-churn", "group-flash"}) {
    const auto r = baseline::run_experiment(group_scenario_spec(name));
    if (r.order_violation) {
      std::printf("  '%s': %s\n", name.c_str(), r.order_violation->c_str());
    }
    CHECK(!r.order_violation.has_value());
    CHECK(r.total_sent > 0);
    CHECK(r.delivered_total > 0);
    const std::uint64_t broadcast_volume = r.total_sent * 12;  // 12 MHs
    CHECK(r.delivered_total < broadcast_volume / 2);
  }
}

TEST(sharded_engine_replays_the_serial_oracle_with_groups) {
  // Domain-sharded execution must not perturb multi-group runs: the
  // single-heap oracle over the sharded domain plan and the 4-thread
  // parallel engine produce identical per-MH delivery traces.
  for (const std::string name : {"group-mesh", "group-churn"}) {
    auto spec = group_scenario_spec(name);
    spec.shard = true;
    spec.shard_threads = 0;
    const auto oracle = baseline::run_experiment(spec);
    spec.shard_threads = 4;
    const auto sharded = baseline::run_experiment(spec);
    CHECK_EQ(oracle.total_sent, sharded.total_sent);
    CHECK(oracle.deliveries_offsets == sharded.deliveries_offsets);
    CHECK_EQ(oracle.deliveries_flat.size(), sharded.deliveries_flat.size());
    bool same = oracle.deliveries_flat.size() == sharded.deliveries_flat.size();
    for (std::size_t i = 0; same && i < oracle.deliveries_flat.size(); ++i) {
      const auto& a = oracle.deliveries_flat[i];
      const auto& b = sharded.deliveries_flat[i];
      same = a.gseq == b.gseq && a.source.v == b.source.v && a.lseq == b.lseq;
    }
    CHECK(same);
    CHECK(!oracle.order_violation.has_value());
    CHECK(!sharded.order_violation.has_value());
  }
}

TEST(pairwise_checker_accepts_holes_rejects_inversions) {
  std::vector<NodeId> mhs = {NodeId::make(Tier::MH, 0),
                             NodeId::make(Tier::MH, 1),
                             NodeId::make(Tier::MH, 2)};
  core::DeliveryLog log;
  log.reset(mhs);
  const NodeId src{9};
  // Genuine multicast leaves per-member holes; holes are fine as long as
  // the common subsequences agree.
  log.record(mhs[0], 1, src, 1);
  log.record(mhs[0], 3, src, 3);
  log.record(mhs[0], 7, src, 7);
  log.record(mhs[1], 3, src, 3);
  log.record(mhs[1], 5, src, 5);
  log.record(mhs[1], 7, src, 7);
  log.record(mhs[2], 1, src, 1);
  log.record(mhs[2], 5, src, 5);
  CHECK(!core::check_pairwise_order(log).has_value());

  // An inversion on a shared pair is a violation.
  core::DeliveryLog bad;
  bad.reset(mhs);
  bad.record(mhs[0], 1, src, 1);
  bad.record(mhs[0], 3, src, 3);
  bad.record(mhs[1], 3, src, 3);
  bad.record(mhs[1], 1, src, 1);
  CHECK(core::check_pairwise_order(bad).has_value());
}

TEST(lookahead_floor_tracks_the_latency_matrix) {
  // Satellite regression: on today's uniform deployments the per-pair
  // latency-matrix minimum reduces to the configured WAN one-way latency,
  // and the shard plan adopts it as its conservative window.
  auto spec = base_spec();
  const auto cfg = baseline::effective_config(spec);
  CHECK(baseline::min_interdomain_latency(cfg) == cfg.hierarchy.wan.latency);
  spec.shard = true;
  spec.shard_threads = 2;
  const auto plan = baseline::shard_plan(spec, cfg);
  CHECK(plan.lookahead == baseline::min_interdomain_latency(cfg));
  // A one-BR deployment has no inter-domain links; the floor stays at the
  // configured WAN latency (any positive window is safe).
  auto single = cfg;
  single.hierarchy.num_brs = 1;
  CHECK(baseline::min_interdomain_latency(single) ==
        single.hierarchy.wan.latency);
}

TEST(inprocess_runtime_delivers_multi_group_chains) {
  // The runtime twin over the deterministic in-process transport: per-MH
  // delivered counts match the derived expectation exactly and the pooled
  // log is pairwise-consistent — the chain links (prev_chain) let every
  // member separate intentional holes from losses.
  runtime::LoopbackSpec spec;
  spec.num_brs = 2;
  spec.aps_per_br = 2;
  spec.mhs_per_ap = 2;  // 8 MHs
  spec.rate_hz = 100.0;
  spec.msgs_per_source = 8;
  spec.groups.count = 4;
  spec.groups.groups_per_mh = 2;
  spec.groups.dest_groups = 2;
  spec.use_udp = false;
  const auto res = runtime::run_loopback(spec);
  CHECK(res.completed);
  if (res.order_violation) {
    std::printf("  %s\n", res.order_violation->c_str());
  }
  CHECK(!res.order_violation.has_value());
  std::uint64_t delivered = 0;
  for (std::size_t m = 0; m < res.n_mh; ++m) {
    CHECK_EQ(res.delivered_counts[m], spec.expected_at(m));
    delivered += res.delivered_counts[m];
  }
  CHECK_EQ(delivered, spec.expected_total());
  CHECK(delivered > 0);
  // Genuine: nobody got the full broadcast volume (64 messages total).
  const std::uint64_t broadcast = static_cast<std::uint64_t>(res.n_mh) *
                                  spec.n_mhs() * spec.msgs_per_source;
  CHECK(delivered < broadcast);
}

TEST_MAIN()
