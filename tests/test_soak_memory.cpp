// Tentpole regression: long soak runs must hold Theorem 5.1's bounded-buffer
// claim in the implementation, not just the analysis. Steady-state state at
// the ordering tier (assigned-message archive, per-source submit logs, MQs)
// must stay O(resend/retention window) — pruned by the global acked-floor
// watermark — instead of O(total messages sent).

#include <cstdlib>

#include "baseline/harness.hpp"
#include "core/protocol.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

core::ProtocolConfig soak_cfg(double rate_hz) {
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 2;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 1;
  cfg.hierarchy.mhs_per_ap = 1;
  auto wireless = net::ChannelModel::wireless(0.0);
  wireless.burst_loss = false;
  wireless.bandwidth_bps = 100e6;
  cfg.hierarchy.wireless = wireless;
  cfg.num_sources = 2;
  cfg.source.rate_hz = rate_hz;
  // The per-delivery order log is O(total deliveries) by design (a debug
  // artifact); a bounded-memory soak must run without it.
  cfg.record_deliveries = false;
  return cfg;
}

}  // namespace

// Quick watermark regression: the archive holds every assigned message
// until the global acked floor passes it, then only archive_retention
// entries plus the in-flight window remain materialized.
TEST(archive_prunes_to_retention_window) {
  sim::Simulation sim(7);
  auto cfg = soak_cfg(100.0);
  cfg.hierarchy.num_brs = 3;
  cfg.options.archive_retention = 32;
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  sim.run_for(sim::secs(3.0));
  proto.stop_sources();
  sim.run_for(sim::secs(1.0));

  CHECK(proto.total_sent() > 400);
  CHECK(sim.metrics().counter("archive.pruned") > 0);
  CHECK(proto.global_acked_floor() > 0);
  // Retained = archive_retention + the unacked in-flight window (well under
  // one second of traffic); before watermark pruning this equaled
  // total_sent.
  CHECK(proto.archive_retained() < 128);
  CHECK(proto.archive_retained() < proto.total_sent() / 2);
  // Submit logs drain in lockstep with the archive.
  CHECK(proto.submit_log_retained() < 256);
}

// The soak proper: >= 1M messages through a 2-BR ring. Peak archive, submit
// log, and MQ residency must stay O(window) — orders of magnitude below the
// total — and nothing may be lost.
TEST(soak_one_million_messages_bounded_memory) {
  std::uint64_t target = 1'000'000;
  // Single-threaded main; no concurrent setenv to race with.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("RINGNET_SOAK_MESSAGES")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      target = static_cast<std::uint64_t>(v);
    }
  }
  const double rate = 6500.0;
  const double seconds =
      static_cast<double>(target) / (2.0 * rate) + 1.0;

  sim::Simulation sim(42);
  const auto cfg = soak_cfg(rate);
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  sim.run_for(sim::secs(seconds));
  proto.stop_sources();
  sim.run_for(sim::secs(2.0));

  CHECK(proto.total_sent() >= target);
  // Theorem 5.1 bound: state is O(resend/retention window), not O(total).
  const std::size_t window =
      cfg.options.archive_retention + cfg.options.mq_retention + 8192;
  CHECK(proto.archive_peak() < window);
  CHECK(proto.submit_log_peak() < window);
  CHECK(sim.metrics().gauge("buf.mq.peak") < static_cast<double>(window));
  CHECK(proto.archive_peak() < proto.total_sent() / 50);
  // After the drain the floor has caught up: only the retention tails and
  // the final unacked residue remain.
  CHECK(proto.archive_retained() < window);
  CHECK(proto.submit_log_retained() < window);
  // Nothing lost, nothing skipped: every member saw every message.
  CHECK_EQ(sim.metrics().counter("mh.gaps_skipped"), std::uint64_t{0});
  for (const auto& mh : proto.mhs()) {
    CHECK_EQ(mh.delivered_count(), proto.total_sent());
  }
}

TEST_MAIN()
