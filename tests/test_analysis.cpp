// core::analyze: Theorem 5.1 bound structure — monotonicity in r / tau /
// s*lambda, the paper-vs-tight constant relationship, and unit sanity.

#include "core/analysis.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

core::ProtocolConfig base() {
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 4;
  cfg.num_sources = 2;
  cfg.source.rate_hz = 100.0;
  cfg.options.tau = sim::msecs(5);
  return cfg;
}

}  // namespace

TEST(torder_linear_in_ring_size) {
  auto cfg = base();
  const auto b4 = core::analyze(cfg);
  cfg.hierarchy.num_brs = 8;
  const auto b8 = core::analyze(cfg);
  CHECK_NEAR(b8.torder_s, 2.0 * b4.torder_s, 1e-12);
  CHECK(b8.tight_order_bound_s() > b4.tight_order_bound_s());
}

TEST(tau_additive_in_bounds) {
  auto cfg = base();
  const auto b5 = core::analyze(cfg);
  cfg.options.tau = sim::msecs(15);
  const auto b15 = core::analyze(cfg);
  CHECK_NEAR(b15.paper_order_bound_s() - b5.paper_order_bound_s(), 0.010,
             1e-9);
  CHECK_NEAR(b15.tight_order_bound_s() - b5.tight_order_bound_s(), 0.010,
             1e-9);
}

TEST(tight_bound_dominates_paper_bound) {
  // 2*Torder + tau >= Max(Torder, Ttransmit) + tau whenever
  // Torder >= Ttransmit, which holds for every ring of >= 1 hop.
  for (std::size_t r : {2u, 4u, 16u}) {
    auto cfg = base();
    cfg.hierarchy.num_brs = r;
    const auto b = core::analyze(cfg);
    CHECK(b.tight_order_bound_s() >= b.paper_order_bound_s());
    CHECK(b.tight_e2e_bound_s() > b.tight_order_bound_s());
    CHECK(b.tdeliver_s > 0.0);
  }
}

TEST(buffer_bounds_scale_with_load) {
  auto cfg = base();
  const auto b1 = core::analyze(cfg);
  cfg.num_sources = 4;
  const auto b2 = core::analyze(cfg);
  CHECK_NEAR(b2.wq_bound_msgs(), 2.0 * b1.wq_bound_msgs(), 1e-9);
  CHECK_NEAR(b2.mq_bound_msgs(), 2.0 * b1.mq_bound_msgs(), 1e-9);
  cfg.source.rate_hz = 200.0;
  const auto b3 = core::analyze(cfg);
  CHECK_NEAR(b3.wq_bound_msgs(), 2.0 * b2.wq_bound_msgs(), 1e-9);
  // Extra ack lag only grows the MQ budget.
  CHECK(b3.mq_bound_msgs(0.05) > b3.mq_bound_msgs(0.0));
}

TEST(token_hold_in_torder) {
  auto cfg = base();
  const auto fast = core::analyze(cfg);
  cfg.options.token_hold = sim::msecs(5);
  const auto slow = core::analyze(cfg);
  CHECK_NEAR(slow.torder_s - fast.torder_s,
             4.0 * (0.005 - 0.0001), 1e-9);
}

TEST_MAIN()
