// Event-heap scheduler: timestamp ordering, FIFO tie-breaking (the
// determinism keystone), run_until horizon semantics and re-entrant
// scheduling from inside handlers.

#include <vector>

#include "ringnet_test.hpp"
#include "sim/scheduler.hpp"

using namespace ringnet;

TEST(orders_by_timestamp) {
  sim::Scheduler s;
  std::vector<int> order;
  s.schedule_at(sim::SimTime{30}, [&] { order.push_back(3); });
  s.schedule_at(sim::SimTime{10}, [&] { order.push_back(1); });
  s.schedule_at(sim::SimTime{20}, [&] { order.push_back(2); });
  s.run_to_completion();
  CHECK_EQ(order.size(), std::size_t{3});
  CHECK_EQ(order[0], 1);
  CHECK_EQ(order[1], 2);
  CHECK_EQ(order[2], 3);
  CHECK_EQ(s.now().us, std::int64_t{30});
}

TEST(equal_timestamps_run_fifo) {
  sim::Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(sim::SimTime{5}, [&order, i] { order.push_back(i); });
  }
  s.run_to_completion();
  for (int i = 0; i < 100; ++i) CHECK_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(run_until_respects_horizon) {
  sim::Scheduler s;
  int fired = 0;
  s.schedule_at(sim::SimTime{10}, [&] { ++fired; });
  s.schedule_at(sim::SimTime{20}, [&] { ++fired; });
  s.schedule_at(sim::SimTime{30}, [&] { ++fired; });
  s.run_until(sim::SimTime{20});
  CHECK_EQ(fired, 2);
  CHECK_EQ(s.now().us, std::int64_t{20});
  CHECK_EQ(s.pending(), std::size_t{1});
  s.run_until(sim::SimTime{100});
  CHECK_EQ(fired, 3);
  CHECK_EQ(s.now().us, std::int64_t{100});  // advances past the last event
}

TEST(reentrant_scheduling) {
  sim::Scheduler s;
  std::vector<std::int64_t> at;
  // Each handler schedules its successor; the chain must run in-order
  // within a single run_to_completion.
  std::function<void()> chain = [&] {
    at.push_back(s.now().us);
    if (at.size() < 5) s.schedule_at(sim::SimTime{s.now().us + 7}, chain);
  };
  s.schedule_at(sim::SimTime{0}, chain);
  s.run_to_completion();
  CHECK_EQ(at.size(), std::size_t{5});
  for (std::size_t i = 0; i < at.size(); ++i) {
    CHECK_EQ(at[i], static_cast<std::int64_t>(7 * i));
  }
}

TEST(same_time_event_from_handler_still_runs) {
  sim::Scheduler s;
  bool inner = false;
  s.schedule_at(sim::SimTime{10}, [&] {
    s.schedule_at(sim::SimTime{10}, [&] { inner = true; });
  });
  s.run_until(sim::SimTime{10});
  CHECK(inner);
}

TEST_MAIN()
