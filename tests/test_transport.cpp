// Real-socket transport tests: framing round-trips over actual UDP
// loopback sockets, rejection of truncated/corrupted datagrams (the fuzz
// sweep must never crash or mis-parse), and port rebinding after a node
// restart. Ephemeral ports throughout so parallel ctest runs never collide.

#include <cstring>
#include <vector>

#include "proto/messages.hpp"
#include "ringnet_test.hpp"
#include "runtime/transport.hpp"
#include "runtime/udp_transport.hpp"
#include "util/rng.hpp"

using namespace ringnet;
using namespace ringnet::runtime;

namespace {

constexpr std::int64_t kRecvBudgetUs = 2'000'000;  // generous for slow CI

proto::DataMsg sample_data() {
  proto::DataMsg m;
  m.gid = GroupId{1};
  m.source = NodeId{9};
  m.lseq = 77;
  m.ordering_node = NodeId::make(Tier::BR, 0);
  m.gseq = 1234;
  m.epoch = 2;
  m.payload_size = 256;
  return m;
}

}  // namespace

// --- framing (no sockets) --------------------------------------------------

TEST(frame_unframe_round_trip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  const auto bytes = frame(NodeId::make(Tier::AP, 4), FrameKind::Proto,
                           payload, NodeId::make(Tier::MH, 6));
  CHECK_EQ(bytes.size(), kFrameHeaderBytes + payload.size());
  const auto d = unframe(bytes.data(), bytes.size());
  CHECK(d.has_value());
  CHECK_EQ(d->src.v, NodeId::make(Tier::AP, 4).v);
  CHECK_EQ(d->relay.v, NodeId::make(Tier::MH, 6).v);
  CHECK(d->kind == FrameKind::Proto);
  CHECK(d->payload == payload);
}

TEST(frame_truncations_rejected) {
  const auto bytes =
      frame(NodeId{1}, FrameKind::Control, std::vector<std::uint8_t>(32, 7));
  // Every strict prefix must be rejected: header cut short, payload cut
  // short, empty buffer.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    CHECK(!unframe(bytes.data(), n).has_value());
  }
  CHECK(unframe(bytes.data(), bytes.size()).has_value());
}

TEST(frame_fuzz_mutations_never_crash) {
  util::Rng rng(0xF2A2'2024u);
  const auto msg = proto::encode(proto::Message(sample_data()));
  const auto good = frame(NodeId{3}, FrameKind::Proto, msg);
  std::uint64_t survived = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    auto mutated = good;
    const std::size_t flips = 1 + rng.bounded(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.bounded(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    }
    // A mutated frame either fails validation or (checksum collision on
    // header-only flips) yields a payload the decoder must still bound.
    const auto d = unframe(mutated.data(), mutated.size());
    if (!d) continue;
    ++survived;
    (void)proto::decode(d->payload.data(), d->payload.size());
  }
  // The checksum only covers the payload, so pure header flips (src/relay
  // ids) can legitimately survive; corruption of payload bytes must not.
  CHECK(survived < 5000);
}

TEST(frame_random_garbage_rejected) {
  util::Rng rng(0xDEAD'BEEFu);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.bounded(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.bounded(256));
    const auto d = unframe(junk.data(), junk.size());
    // Random bytes essentially never produce the magic + matching FNV-1a
    // checksum; decode anything that slips through rather than crash.
    if (d) (void)proto::decode(d->payload.data(), d->payload.size());
  }
  CHECK(true);  // reaching here without UB/crash is the assertion
}

TEST(frame_oversize_rejected) {
  std::vector<std::uint8_t> big(kMaxDatagramBytes + 1, 0xAB);
  const auto bytes = frame(NodeId{1}, FrameKind::Proto, big);
  CHECK(!unframe(bytes.data(), bytes.size()).has_value());
}

// --- real UDP sockets ------------------------------------------------------

TEST(udp_round_trip_proto_and_control) {
  auto book = std::make_shared<AddressBook>();
  UdpTransport a(NodeId{1}, book);  // ephemeral ports
  UdpTransport b(NodeId{2}, book);
  book->set(NodeId{1}, a.local_endpoint());
  book->set(NodeId{2}, b.local_endpoint());

  CHECK(a.send_msg(NodeId{2}, proto::Message(sample_data()),
                   NodeId::make(Tier::MH, 5)));
  const auto d = b.recv(kRecvBudgetUs);
  CHECK(d.has_value());
  if (d) {
    CHECK_EQ(d->src.v, 1u);
    CHECK_EQ(d->relay.v, NodeId::make(Tier::MH, 5).v);
    CHECK(d->kind == FrameKind::Proto);
    const auto msg = proto::decode(d->payload.data(), d->payload.size());
    CHECK(msg.has_value());
    CHECK(msg->type() == proto::MsgType::Data);
    CHECK_EQ(msg->data().gseq, 1234u);
  }

  CHECK(b.send_control(NodeId{1}, ControlMsg{ControlOp::Done, 42}));
  const auto c = a.recv(kRecvBudgetUs);
  CHECK(c.has_value());
  if (c) {
    CHECK(c->kind == FrameKind::Control);
    const auto ctl = decode_control(c->payload.data(), c->payload.size());
    CHECK(ctl.has_value());
    CHECK(ctl->op == ControlOp::Done);
    CHECK_EQ(ctl->arg, 42u);
  }
  CHECK_EQ(a.sent(), 1u);
  CHECK_EQ(a.received(), 1u);
  CHECK_EQ(b.dropped_malformed(), 0u);
}

TEST(udp_corrupt_datagram_dropped_at_edge) {
  auto book = std::make_shared<AddressBook>();
  UdpTransport rx(NodeId{1}, book);
  UdpTransport tx(NodeId{2}, book);
  book->set(NodeId{1}, rx.local_endpoint());
  book->set(NodeId{2}, tx.local_endpoint());

  auto bytes = frame(NodeId{2}, FrameKind::Proto,
                     proto::encode(proto::Message(sample_data())));
  bytes[bytes.size() - 3] ^= 0xFF;  // flip a payload byte -> checksum fails
  CHECK(tx.send(NodeId{1}, bytes));
  CHECK(!rx.recv(200'000).has_value());
  CHECK_EQ(rx.dropped_malformed(), 1u);
  CHECK_EQ(rx.received(), 0u);

  // The transport still works after a drop.
  CHECK(tx.send_msg(NodeId{1}, proto::Message(sample_data())));
  CHECK(rx.recv(kRecvBudgetUs).has_value());
}

TEST(udp_unknown_destination_counts_send_failure) {
  auto book = std::make_shared<AddressBook>();
  UdpTransport t(NodeId{1}, book);
  CHECK(!t.send_msg(NodeId{99}, proto::Message(sample_data())));
  CHECK_EQ(t.send_failures(), 1u);
  CHECK_EQ(t.sent(), 0u);
}

TEST(udp_rebind_same_port_after_restart) {
  auto book = std::make_shared<AddressBook>();
  UdpTransport node(NodeId{1}, book);
  UdpTransport peer(NodeId{2}, book);
  book->set(NodeId{1}, node.local_endpoint());
  book->set(NodeId{2}, peer.local_endpoint());
  const auto before = node.local_endpoint();

  // Restart: close + re-bind the same port, so the peer's address book
  // entry stays valid and frames flow again without re-registration.
  node.rebind();
  CHECK_EQ(node.local_endpoint().port, before.port);
  CHECK(peer.send_control(NodeId{1}, ControlMsg{ControlOp::Ready, 0}));
  const auto d = node.recv(kRecvBudgetUs);
  CHECK(d.has_value());
  if (d) CHECK(d->kind == FrameKind::Control);
}

TEST_MAIN()
