// End-to-end integration: a full RingNet deployment (4 BRs, 2 sources,
// lossy wireless cells) must deliver every message to every MH in one
// agreed total order, within the analytic latency bound family, while
// pruning its buffers.

#include <set>

#include "baseline/harness.hpp"
#include "core/analysis.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec spec_4br() {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 4;
  spec.config.hierarchy.ags_per_br = 2;
  spec.config.hierarchy.aps_per_ag = 2;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 2;
  spec.config.source.rate_hz = 100.0;
  spec.warmup = sim::secs(0.25);
  spec.run = sim::secs(1.0);
  spec.drain = sim::secs(0.75);
  spec.seed = 7;
  return spec;
}

}  // namespace

TEST(total_order_holds_and_delivery_completes) {
  const auto spec = spec_4br();
  const auto r = baseline::run_experiment(spec);
  CHECK(!r.order_violation.has_value());
  if (r.order_violation) {
    std::printf("  violation: %s\n", r.order_violation->c_str());
  }
  // Every MH saw (essentially) every message after the drain.
  CHECK(r.min_delivery_ratio > 0.999);
  CHECK_EQ(r.really_lost, std::uint64_t{0});
  // Throughput tracks the offered load s*lambda.
  CHECK_NEAR(r.throughput_per_mh_hz, 200.0, 10.0);
}

TEST(latency_within_tight_bound) {
  const auto spec = spec_4br();
  const auto r = baseline::run_experiment(spec);
  const auto bounds = core::analyze(baseline::effective_config(spec));
  // Ordering latency: the paper's Max(Torder,Ttransmit)+tau constant is
  // too small (Proof 5.1 misses a rotation); the tight 2*Torder+tau bound
  // must hold with slack for ARQ jitter on the lossy cells.
  CHECK(static_cast<double>(r.assign_max_us) <=
        bounds.tight_order_bound_s() * 1.2e6);
  CHECK(static_cast<double>(r.lat_p99_us) <=
        bounds.tight_e2e_bound_s() * 1.2e6);
  CHECK(r.assign_p99_us > 0);
}

TEST(buffers_stay_bounded) {
  auto spec = spec_4br();
  spec.config.options.mq_retention = 0;  // measure the theorem's quantity
  spec.config.hierarchy.wireless = net::ChannelModel::wireless(0.0);
  const auto r = baseline::run_experiment(spec);
  const auto bounds = core::analyze(baseline::effective_config(spec));
  CHECK(r.wq_peak <=
        bounds.wq_bound_msgs() * 2.0 + 4.0);
  CHECK(r.mq_peak <=
        bounds.mq_bound_msgs(spec.config.options.ack_period.seconds()) * 2.0 +
            4.0);
  CHECK(r.wq_peak > 0.0);
  CHECK(r.mq_peak > 0.0);
}

TEST(token_rotates_continuously) {
  const auto spec = spec_4br();
  sim::Simulation sim(spec.seed);
  sim.trace().enable();
  core::RingNetProtocol proto(sim, baseline::effective_config(spec));
  proto.start();
  sim.run_for(sim::secs(1.0));
  const auto passes = sim.trace().filter(sim::TraceKind::TokenPass);
  // One hop every (wan one-way + hold) ~ 5.1ms: expect on the order of
  // 190 passes/s; allow generous slack.
  CHECK(passes.size() > 100);
  // All passes carry the initial epoch and visit every BR.
  bool epochs_ok = true;
  for (const auto& ev : passes) epochs_ok = epochs_ok && ev.a == 1;
  CHECK(epochs_ok);
  std::set<std::uint32_t> visited;
  for (const auto& ev : passes) visited.insert(ev.node.v);
  CHECK_EQ(visited.size(), std::size_t{4});
}

TEST_MAIN()
