// Baseline variants: the unordered hierarchy (Remark 3) trades the token
// wait for latency, the single ring pays rotation latency linear in its
// size, the sequencer stays flat — all at identical throughput.

#include <set>

#include "baseline/harness.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

namespace {

baseline::RunSpec small_spec() {
  baseline::RunSpec spec;
  spec.config.hierarchy.num_brs = 4;
  spec.config.hierarchy.ags_per_br = 1;
  spec.config.hierarchy.aps_per_ag = 1;
  spec.config.hierarchy.mhs_per_ap = 1;
  spec.config.num_sources = 2;
  spec.config.source.rate_hz = 100.0;
  spec.config.record_deliveries = false;
  spec.warmup = sim::secs(0.25);
  spec.run = sim::secs(1.0);
  spec.drain = sim::secs(0.75);
  spec.seed = 11;
  return spec;
}

}  // namespace

TEST(unordered_is_faster_same_throughput) {
  auto ordered = small_spec();
  auto unordered = small_spec();
  unordered.variant = baseline::Variant::RingNetUnordered;
  const auto ro = baseline::run_experiment(ordered);
  const auto ru = baseline::run_experiment(unordered);
  CHECK_NEAR(ro.throughput_per_mh_hz, ru.throughput_per_mh_hz, 10.0);
  CHECK(ru.lat_p99_us < ro.lat_p99_us);
  CHECK(ru.lat_mean_us < ro.lat_mean_us);
  // No ordering pass: nothing is ever assigned a gseq.
  CHECK_EQ(ru.assign_max_us, std::uint64_t{0});
  CHECK_EQ(ru.tokens_held, std::uint64_t{0});
}

TEST(single_ring_latency_grows_with_size) {
  auto small = small_spec();
  small.variant = baseline::Variant::SingleRing;
  small.flat_aps = 4;
  auto large = small;
  large.flat_aps = 32;
  const auto rs = baseline::run_experiment(small);
  const auto rl = baseline::run_experiment(large);
  CHECK(rl.lat_p50_us > rs.lat_p50_us);
  CHECK_NEAR(rs.throughput_per_mh_hz, 200.0, 10.0);
  CHECK_NEAR(rl.throughput_per_mh_hz, 200.0, 10.0);
}

TEST(sequencer_orders_with_one_node) {
  auto spec = small_spec();
  spec.variant = baseline::Variant::Sequencer;
  spec.flat_aps = 8;
  spec.config.record_deliveries = true;
  const auto r = baseline::run_experiment(spec);
  CHECK(!r.order_violation.has_value());
  CHECK_NEAR(r.throughput_per_mh_hz, 200.0, 10.0);
  CHECK(r.min_delivery_ratio > 0.999);
}

TEST(effective_config_resolves_variants) {
  auto spec = small_spec();
  spec.variant = baseline::Variant::SingleRing;
  spec.flat_aps = 16;
  spec.flat_mhs_per_ap = 2;
  const auto cfg = baseline::effective_config(spec);
  CHECK_EQ(cfg.hierarchy.num_brs, std::size_t{16});
  CHECK_EQ(cfg.hierarchy.aps_per_ag, std::size_t{1});
  CHECK_EQ(cfg.hierarchy.mhs_per_ap, std::size_t{2});
  CHECK(cfg.options.ordered);
  spec.variant = baseline::Variant::RingNetUnordered;
  CHECK(!baseline::effective_config(spec).options.ordered);
}

TEST_MAIN()
