// Simulation container: trace filtering, metrics counters / high-watermark
// gauges, and whole-run determinism — the same (seed, config) must replay
// an identical protocol trace, which is what makes every bench reproducible.

#include <string>

#include "baseline/harness.hpp"
#include "core/protocol.hpp"
#include "ringnet_test.hpp"
#include "sim/simulation.hpp"

using namespace ringnet;

TEST(metrics_counters_and_gauges) {
  sim::Simulation sim(1);
  sim.metrics().incr("a");
  sim.metrics().incr("a", 4);
  CHECK_EQ(sim.metrics().counter("a"), std::uint64_t{5});
  CHECK_EQ(sim.metrics().counter("missing"), std::uint64_t{0});
  sim.metrics().gauge_max("g", 3.0);
  sim.metrics().gauge_max("g", 7.0);
  sim.metrics().gauge_max("g", 5.0);
  CHECK_NEAR(sim.metrics().gauge("g"), 7.0, 1e-9);
}

TEST(trace_filter) {
  sim::Simulation sim(1);
  sim.trace().enable();
  sim.trace().record(sim::TraceKind::TokenPass, sim::SimTime{1}, NodeId{1}, 9);
  sim.trace().record(sim::TraceKind::Handoff, sim::SimTime{2}, NodeId{2});
  sim.trace().record(sim::TraceKind::TokenPass, sim::SimTime{3}, NodeId{3}, 9);
  const auto passes = sim.trace().filter(sim::TraceKind::TokenPass);
  CHECK_EQ(passes.size(), std::size_t{2});
  CHECK_EQ(passes[1].at.us, std::int64_t{3});
  CHECK_EQ(passes[1].a, std::uint64_t{9});
  // Disabled traces record nothing.
  sim::Simulation quiet(1);
  quiet.trace().record(sim::TraceKind::TokenPass, sim::SimTime{1}, NodeId{1});
  CHECK(quiet.trace().events().empty());
}

TEST(metrics_interned_handles_alias_string_keys) {
  sim::Metrics m;
  const auto id = m.intern("hot.counter");
  CHECK_EQ(m.intern("hot.counter"), id);  // idempotent
  m.incr(id, 3);
  m.incr("hot.counter", 2);
  CHECK_EQ(m.counter(id), std::uint64_t{5});
  CHECK_EQ(m.counter("hot.counter"), std::uint64_t{5});
  const auto g = m.intern("hot.gauge");
  m.gauge_max(g, 4.0);
  m.gauge_max("hot.gauge", 9.0);
  m.gauge_max(g, 6.0);
  CHECK_NEAR(m.gauge("hot.gauge"), 9.0, 1e-9);
  CHECK_NEAR(m.gauge(g), 9.0, 1e-9);
}

TEST(trace_ring_capacity_keeps_latest) {
  sim::Trace trace;
  trace.enable();
  trace.set_capacity(3);
  for (std::int64_t i = 0; i < 5; ++i) {
    trace.record(sim::TraceKind::Deliver, sim::SimTime{i}, NodeId{1},
                 static_cast<std::uint64_t>(i));
  }
  CHECK_EQ(trace.events().size(), std::size_t{3});
  CHECK_EQ(trace.dropped(), std::uint64_t{2});
  CHECK_EQ(trace.events().front().a, std::uint64_t{2});  // oldest kept
  CHECK_EQ(trace.events().back().a, std::uint64_t{4});
  // Shrinking the cap trims the front immediately.
  trace.set_capacity(1);
  CHECK_EQ(trace.events().size(), std::size_t{1});
  CHECK_EQ(trace.events().front().a, std::uint64_t{4});
  CHECK_EQ(trace.dropped(), std::uint64_t{4});
  // for_each visits without materializing; count matches filter.
  trace.record(sim::TraceKind::Handoff, sim::SimTime{9}, NodeId{2});
  CHECK_EQ(trace.count(sim::TraceKind::Handoff), std::size_t{1});
  CHECK_EQ(trace.filter(sim::TraceKind::Handoff).size(), std::size_t{1});
  std::uint64_t sum = 0;
  trace.for_each(sim::TraceKind::Handoff,
                 [&sum](const sim::TraceEvent& ev) { sum += ev.node.v; });
  CHECK_EQ(sum, std::uint64_t{2});
}

namespace {

std::string trace_fingerprint(std::uint64_t seed) {
  sim::Simulation sim(seed);
  sim.trace().enable();
  core::ProtocolConfig cfg;
  cfg.hierarchy.num_brs = 3;
  cfg.hierarchy.ags_per_br = 1;
  cfg.hierarchy.aps_per_ag = 2;
  cfg.hierarchy.mhs_per_ap = 1;
  cfg.hierarchy.wireless = net::ChannelModel::wireless(0.05);
  cfg.num_sources = 2;
  cfg.source.rate_hz = 200.0;
  cfg.mobility.handoff_rate_hz = 2.0;
  core::RingNetProtocol proto(sim, cfg);
  proto.start();
  sim.run_for(sim::secs(1.0));
  std::string fp;
  for (const auto& ev : sim.trace().events()) {
    fp += std::to_string(static_cast<int>(ev.kind)) + ":" +
          std::to_string(ev.at.us) + ":" + std::to_string(ev.node.v) + ":" +
          std::to_string(ev.a) + ";";
  }
  fp += "|delivered=" + std::to_string(sim.metrics().counter("mh.delivered"));
  fp += "|retx=" + std::to_string(sim.metrics().counter("arq.retransmits"));
  return fp;
}

}  // namespace

TEST(same_seed_same_trace) {
  const auto a = trace_fingerprint(42);
  const auto b = trace_fingerprint(42);
  CHECK(!a.empty());
  CHECK(a == b);
}

TEST(different_seed_different_trace) {
  // Loss sampling and mobility depend on the seed, so two seeds should
  // diverge somewhere in a 1-second lossy, mobile run.
  CHECK(trace_fingerprint(1) != trace_fingerprint(2));
}

TEST_MAIN()
