// OrderingToken / WTSNP semantics: global sequence allocation, lookup,
// per-ordering-node pruning (the rotation recycling rule), supersession,
// and serialization round-trip.

#include "proto/messages.hpp"
#include "ringnet_test.hpp"

using namespace ringnet;

TEST(append_assigns_contiguous_gseqs) {
  proto::OrderingToken t(GroupId{1}, 1);
  const auto g0 = t.append_range(NodeId{10}, NodeId{1}, 0, 4);
  const auto g1 = t.append_range(NodeId{11}, NodeId{2}, 0, 2);
  CHECK_EQ(g0, GlobalSeq{0});
  CHECK_EQ(g1, GlobalSeq{5});
  CHECK_EQ(t.next_gseq(), GlobalSeq{8});
  CHECK_EQ(*t.lookup(NodeId{1}, 3), GlobalSeq{3});
  CHECK_EQ(*t.lookup(NodeId{2}, 0), GlobalSeq{5});
  CHECK(!t.lookup(NodeId{1}, 5).has_value());
  CHECK(!t.lookup(NodeId{3}, 0).has_value());
}

TEST(prune_drops_only_that_node) {
  proto::OrderingToken t(GroupId{1}, 1);
  t.append_range(NodeId{10}, NodeId{1}, 0, 9);
  t.append_range(NodeId{11}, NodeId{2}, 0, 9);
  t.prune_entries_of(NodeId{10});
  CHECK_EQ(t.entries().size(), std::size_t{1});
  CHECK(!t.lookup(NodeId{1}, 5).has_value());
  CHECK(t.lookup(NodeId{2}, 5).has_value());
  // Pruning never rewinds the allocation cursor.
  CHECK_EQ(t.next_gseq(), GlobalSeq{20});
}

TEST(newer_range_supersedes) {
  proto::OrderingToken t(GroupId{1}, 1);
  t.append_range(NodeId{10}, NodeId{1}, 0, 9);   // gseq 0..9
  t.append_range(NodeId{10}, NodeId{1}, 5, 14);  // re-order 5.. as 10..19
  CHECK_EQ(*t.lookup(NodeId{1}, 5), GlobalSeq{10});
  CHECK_EQ(*t.lookup(NodeId{1}, 14), GlobalSeq{19});
  CHECK_EQ(*t.lookup(NodeId{1}, 4), GlobalSeq{4});
}

TEST(serialize_round_trip) {
  proto::OrderingToken t(GroupId{3}, 7);
  t.set_serial(2);
  t.set_next_gseq(100);
  for (std::uint32_t i = 0; i < 5; ++i) {
    t.append_range(NodeId{i}, NodeId{i + 100}, i * 10, i * 10 + 9);
  }
  proto::WireWriter w;
  t.serialize(w);
  proto::WireReader r(w.bytes());
  const auto back = proto::OrderingToken::deserialize(r);
  CHECK(back.has_value());
  CHECK_EQ(back->gid().v, std::uint32_t{3});
  CHECK_EQ(back->epoch(), std::uint64_t{7});
  CHECK_EQ(back->serial(), std::uint64_t{2});
  CHECK_EQ(back->next_gseq(), t.next_gseq());
  CHECK_EQ(back->entries().size(), std::size_t{5});
  CHECK_EQ(*back->lookup(NodeId{102}, 25), *t.lookup(NodeId{102}, 25));

  // Token rides inside the envelope codec too.
  const auto decoded = proto::decode(proto::encode(proto::Message(t)));
  CHECK(decoded.has_value());
  CHECK(decoded->type() == proto::MsgType::Token);
  CHECK_EQ(decoded->token().entries().size(), std::size_t{5});
}

TEST_MAIN()
